//! Abstractive summarization (the paper's PubMed/Pegasus scenario): a long
//! encoder pass followed by token-by-token generation through the decoder
//! dataflow of Section III-C, plus a numerical check that the distributed
//! decoder (balanced KV placement + reduction trees) matches the reference.
//!
//! ```bash
//! cargo run --release --example summarization
//! ```

use transpim_repro::baselines::gpu::PlatformModel;
use transpim_repro::transformer::model::{ModelConfig, ModelWeights};
use transpim_repro::transformer::softmax::SoftmaxKind;
use transpim_repro::transformer::workload::Workload;
use transpim_repro::transpim::functional::verify_token_dataflow;
use transpim_repro::transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};

fn main() {
    let workload = Workload::pubmed();
    println!(
        "summarization: {} on {} — {} input tokens, {} generated tokens",
        workload.name, workload.model.name, workload.seq_len, workload.decode_len
    );

    // How much of the work is the generative stage?
    let mut encoder_only = workload.clone();
    encoder_only.decode_len = 0;
    let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
    let full = acc.simulate(&workload, DataflowKind::Token);
    let enc = acc.simulate(&encoder_only, DataflowKind::Token);
    println!(
        "\nToken-TransPIM: encoder pass {:.1} ms + generation {:.1} ms = {:.1} ms",
        enc.latency_ms(),
        full.latency_ms() - enc.latency_ms(),
        full.latency_ms()
    );
    println!(
        "  per generated token: {:.2} ms across {} decoder layers",
        (full.latency_ms() - enc.latency_ms()) / workload.decode_len as f64,
        workload.model.decoder_layers
    );

    // The GPU reference recomputes the prefix every step (TF2 behavior).
    let gpu = PlatformModel::rtx_2080_ti();
    println!(
        "\n{}: {:.1} s per document → TransPIM speedup {:.1}x",
        gpu.name,
        gpu.batch_time_s(&workload),
        gpu.batch_time_s(&workload) / (full.latency_ms() * 1e-3)
    );

    // Compare dataflows and the no-buffer ablation on the full workload.
    println!();
    for (kind, df) in [
        (ArchKind::TransPim, DataflowKind::Token),
        (ArchKind::TransPim, DataflowKind::Layer),
        (ArchKind::TransPimNb, DataflowKind::Token),
        (ArchKind::OriginalPim, DataflowKind::Token),
    ] {
        let r = Accelerator::new(ArchConfig::new(kind)).simulate(&workload, df);
        println!("{}", r.summary());
    }

    // Functional check of the *decoder* path: an encoder-decoder model with
    // cross-attention, generated step by step over sharded caches.
    let cfg = ModelConfig::tiny_test();
    let weights = ModelWeights::random(&cfg, 7);
    let check = verify_token_dataflow(&cfg, &weights, 9, 6, 3, SoftmaxKind::HardwareTaylor);
    println!(
        "\ndistributed decoder vs reference (hardware softmax): max |Δ| = {:.2e}",
        check.decoder_max_diff
    );
    assert!(check.within(1e-3));
    println!("decoder dataflow ≡ reference ✔");
}
