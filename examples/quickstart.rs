//! Quickstart: simulate one Transformer workload on TransPIM and print the
//! report, then verify the token dataflow numerically against the
//! reference model.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use transpim_repro::transformer::model::{ModelConfig, ModelWeights};
use transpim_repro::transformer::softmax::SoftmaxKind;
use transpim_repro::transformer::workload::Workload;
use transpim_repro::transpim::functional::verify_token_dataflow;
use transpim_repro::transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};

fn main() {
    // 1. Pick a workload: RoBERTa text classification at L = 128, batched
    //    to fill the 2048 banks of an 8-stack HBM system.
    let workload = Workload::imdb();
    println!(
        "workload: {} on {} (L={}, batch={}, {:.1} GOP per batch)",
        workload.name,
        workload.model.name,
        workload.seq_len,
        workload.batch,
        workload.total_ops() as f64 * 1e-9
    );

    // 2. Simulate it on the full TransPIM architecture with the paper's
    //    token-based dataflow...
    let accelerator = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
    let token = accelerator.simulate(&workload, DataflowKind::Token);
    println!("\n{}", token.summary());

    // 3. ...and against the layer-based baseline dataflow.
    let layer = accelerator.simulate(&workload, DataflowKind::Layer);
    println!("{}", layer.summary());
    println!(
        "\ntoken-based dataflow speedup over layer-based: {:.2}x",
        layer.latency_ms() / token.latency_ms()
    );

    // 4. The timing model prices a dataflow that actually computes: verify
    //    the sharded execution against the monolithic reference on a small
    //    model (7 tokens, 3 decode steps, 4 banks).
    let cfg = ModelConfig::tiny_test();
    let weights = ModelWeights::random(&cfg, 42);
    let check = verify_token_dataflow(&cfg, &weights, 7, 3, 4, SoftmaxKind::Exact);
    println!(
        "\nfunctional check vs reference: encoder max |Δ| = {:.2e}, decoder max |Δ| = {:.2e}",
        check.encoder_max_diff, check.decoder_max_diff
    );
    assert!(check.within(1e-3), "sharded dataflow diverged from the reference");
    println!("token dataflow ≡ reference Transformer ✔");
}
