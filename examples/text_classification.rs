//! Text classification (the paper's IMDB/RoBERTa scenario): compare every
//! memory-based system and both dataflows on an encoder-only workload,
//! including the GPU/TPU reference points.
//!
//! ```bash
//! cargo run --release --example text_classification
//! ```

use transpim_repro::baselines::gpu::PlatformModel;
use transpim_repro::hbm::stats::Category;
use transpim_repro::transformer::workload::Workload;
use transpim_repro::transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};

fn main() {
    let workload = Workload::imdb();
    println!(
        "text classification: {} × {} tokens, batch {} ({} encoder layers, D={})",
        workload.name,
        workload.seq_len,
        workload.batch,
        workload.model.encoder_layers,
        workload.model.d_model
    );

    let gpu = PlatformModel::rtx_2080_ti();
    let tpu = PlatformModel::tpu_v3();
    println!(
        "\nreference platforms: {} {:.1} ms/batch | {} {:.1} ms/batch",
        gpu.name,
        gpu.batch_time_s(&workload) * 1e3,
        tpu.name,
        tpu.batch_time_s(&workload) * 1e3
    );

    println!("\nmemory-based systems:");
    let mut best: Option<(String, f64)> = None;
    for kind in ArchKind::ALL {
        for df in DataflowKind::ALL {
            let acc = Accelerator::new(ArchConfig::new(kind));
            let r = acc.simulate(&workload, df);
            println!("  {}", r.summary());
            if best.as_ref().is_none_or(|(_, ms)| r.latency_ms() < *ms) {
                best = Some((r.system.clone(), r.latency_ms()));
            }
        }
    }
    let (system, ms) = best.expect("at least one system");
    println!("\nfastest system: {system} at {ms:.2} ms per batch");

    // Where does the winner spend its time?
    let r = Accelerator::new(ArchConfig::new(ArchKind::TransPim))
        .simulate(&workload, DataflowKind::Token);
    println!("\nToken-TransPIM layer-kind breakdown:");
    for (scope, s) in r.scoped.iter() {
        println!(
            "  {:<14} {:>9.3} ms  (movement {:>5.1}%, compute {:>5.1}%)",
            scope,
            s.latency_ns * 1e-6,
            100.0 * s.time_fraction(Category::DataMovement),
            100.0 * (s.time_fraction(Category::Arithmetic) + s.time_fraction(Category::Reduction)),
        );
    }
}
