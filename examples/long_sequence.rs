//! Long-sequence scaling (the paper's Section V-F argument): memory-based
//! acceleration keeps scaling where GPUs run out of memory, because adding
//! HBM stacks adds bandwidth *and* compute.
//!
//! Sweeps sequence length at several stack counts and reports where the
//! GPU's activation footprint exceeds an 11 GB card.
//!
//! ```bash
//! cargo run --release --example long_sequence
//! ```

use transpim_repro::baselines::gpu::PlatformModel;
use transpim_repro::transformer::workload::Workload;
use transpim_repro::transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};

/// GPU attention activation footprint per layer: h · L² score matrices in
/// fp32, which is what kills long sequences on an 11 GB card.
fn gpu_scores_gb(w: &Workload) -> f64 {
    let h = w.model.heads as f64;
    let l = w.seq_len as f64;
    h * l * l * 4.0 / 1e9
}

fn main() {
    println!("long-sequence scaling (Pegasus encoder, token dataflow)");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>16}",
        "L", "GPU", "1 stack", "4 stacks", "8 stacks", "score matrix"
    );
    let gpu = PlatformModel::rtx_2080_ti();
    for l in [1024usize, 4096, 16384, 65536] {
        let mut w = Workload::synthetic_pegasus(l);
        w.decode_len = 0;
        let gpu_ms = gpu.batch_time_s(&w) * 1e3;
        let scores = gpu_scores_gb(&w);
        let gpu_cell =
            if scores > 11.0 { "OOM (est.)".to_string() } else { format!("{gpu_ms:.0} ms") };
        let mut cells = Vec::new();
        for stacks in [1u32, 4, 8] {
            let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim).with_stacks(stacks));
            let r = acc.simulate(&w, DataflowKind::Token);
            cells.push(format!("{:.0} ms", r.latency_ms()));
        }
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>12} {:>13.1} GB",
            l, gpu_cell, cells[0], cells[1], cells[2], scores
        );
    }

    println!(
        "\nThe GPU's per-layer score matrix passes its 11 GB memory around L≈16K, \
         while TransPIM keeps scaling: more stacks mean more banks, more ring links, \
         and more ACUs working on the same sequence."
    );

    // TransPIM has its own capacity wall: each bank must hold its shard's
    // score rows. More stacks push the wall outward — the capacity side of
    // the paper's scalability argument.
    use transpim_repro::dataflow::footprint::max_seq_len;
    use transpim_repro::dataflow::ir::Precision;
    println!("\nTransPIM capacity wall (largest L whose working set fits 32 MiB banks):");
    let cfg = transpim_repro::transformer::model::ModelConfig::pegasus_large();
    for stacks in [1u64, 2, 4, 8] {
        let banks = stacks * 256;
        let max = max_seq_len(&cfg, banks, 32 << 20, Precision::default());
        println!("  {stacks} stack(s) ({banks:>5} banks): L ≤ {max}");
    }
}
