//! Integration tests: end-to-end simulation invariants across
//! architectures, dataflows and workloads (the paper's headline orderings
//! must hold wherever the evaluation section asserts them).

use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::{DataflowKind, SimReport};
use transpim_hbm::stats::Category;
use transpim_transformer::workload::Workload;

fn simulate(kind: ArchKind, df: DataflowKind, w: &Workload, stacks: u32) -> SimReport {
    Accelerator::new(ArchConfig::new(kind).with_stacks(stacks)).simulate(w, df)
}

fn small_suite() -> Vec<Workload> {
    // Shrunken versions of the paper workloads to keep test time low while
    // preserving the shapes that drive the orderings.
    let mut imdb = Workload::imdb();
    imdb.model.encoder_layers = 2;
    let mut pubmed = Workload::pubmed();
    pubmed.model.encoder_layers = 2;
    pubmed.model.decoder_layers = 2;
    pubmed.decode_len = 4;
    pubmed.seq_len = 1024;
    vec![imdb, pubmed]
}

#[test]
fn transpim_wins_on_every_workload() {
    for w in small_suite() {
        let t = simulate(ArchKind::TransPim, DataflowKind::Token, &w, 8).stats.latency_ns;
        for kind in [ArchKind::OriginalPim, ArchKind::Nbp, ArchKind::TransPimNb] {
            let other = simulate(kind, DataflowKind::Token, &w, 8).stats.latency_ns;
            assert!(t < other, "{}: TransPIM {t} vs {kind} {other}", w.name);
        }
    }
}

#[test]
fn token_dataflow_never_loses_to_layer_dataflow_on_long_sequences() {
    let mut w = Workload::pubmed();
    w.model.encoder_layers = 2;
    w.model.decoder_layers = 0;
    w.decode_len = 0;
    for kind in ArchKind::ALL {
        let token = simulate(kind, DataflowKind::Token, &w, 8).stats.latency_ns;
        let layer = simulate(kind, DataflowKind::Layer, &w, 8).stats.latency_ns;
        assert!(token <= layer * 1.02, "{kind}: token {token} vs layer {layer}");
    }
}

#[test]
fn token_sharding_gain_grows_with_sequence_length() {
    // Section V-C: "the token-sharding works better in large workloads"
    // because layer-based loading grows quadratically.
    let gain = |l: usize| {
        let mut w = Workload::synthetic_roberta(l);
        w.model.encoder_layers = 2;
        let token = simulate(ArchKind::OriginalPim, DataflowKind::Token, &w, 8).stats.latency_ns;
        let layer = simulate(ArchKind::OriginalPim, DataflowKind::Layer, &w, 8).stats.latency_ns;
        layer / token
    };
    let short = gain(256);
    let long = gain(4096);
    assert!(long > short, "gain should grow: short {short}, long {long}");
}

#[test]
fn buffers_cut_movement_on_both_dataflows() {
    for w in small_suite() {
        for df in DataflowKind::ALL {
            let buf = simulate(ArchKind::TransPim, df, &w, 8).stats;
            let nb = simulate(ArchKind::TransPimNb, df, &w, 8).stats;
            let m_buf = buf.time_ns[Category::DataMovement.index()];
            let m_nb = nb.time_ns[Category::DataMovement.index()];
            assert!(
                m_buf < m_nb,
                "{} {df}: buffered movement {m_buf} vs unbuffered {m_nb}",
                w.name
            );
        }
    }
}

#[test]
fn acu_reduction_dominates_pim_only_reduction() {
    // Section V-C: TransPIM spends 35.3× less time on reduction than the
    // PIM-only system. We assert a large gap (>5×) on the small suite.
    for w in small_suite() {
        let t = simulate(ArchKind::TransPim, DataflowKind::Token, &w, 8).stats;
        let p = simulate(ArchKind::OriginalPim, DataflowKind::Token, &w, 8).stats;
        let rt = t.time_ns[Category::Reduction.index()];
        let rp = p.time_ns[Category::Reduction.index()];
        assert!(rp > 5.0 * rt, "{}: {rp} vs {rt}", w.name);
    }
}

#[test]
fn nbp_has_highest_utilization_but_loses_overall() {
    // Section V-C: Token-NBP shows 89.5% utilization — busy, but slow.
    let w = &small_suite()[0];
    let nbp = simulate(ArchKind::Nbp, DataflowKind::Token, w, 8);
    let tp = simulate(ArchKind::TransPim, DataflowKind::Token, w, 8);
    assert!(nbp.utilization() > tp.utilization());
    assert!(nbp.stats.latency_ns > tp.stats.latency_ns);
}

#[test]
fn stack_scaling_helps_long_sequences_more() {
    let speedup = |l: usize| {
        let mut w = Workload::synthetic_pegasus(l);
        w.model.encoder_layers = 2;
        w.model.decoder_layers = 0;
        w.decode_len = 0;
        let one = simulate(ArchKind::TransPim, DataflowKind::Token, &w, 1).stats.latency_ns;
        let eight = simulate(ArchKind::TransPim, DataflowKind::Token, &w, 8).stats.latency_ns;
        one / eight
    };
    let short = speedup(256);
    let long = speedup(16384);
    assert!(long > short, "long {long} should scale better than short {short}");
    assert!(long > 3.0, "long sequences should scale well, got {long}");
}

#[test]
fn energy_breakdown_and_bandwidth_are_consistent() {
    for w in small_suite() {
        for (df, kind) in
            [(DataflowKind::Token, ArchKind::TransPim), (DataflowKind::Layer, ArchKind::Nbp)]
        {
            let r = simulate(kind, df, &w, 8);
            let time_sum: f64 = r.stats.time_ns.iter().sum();
            assert!((time_sum - r.stats.latency_ns).abs() < 1e-6 * r.stats.latency_ns);
            assert!(r.stats.total_energy_pj() > 0.0);
            assert!(r.average_bandwidth_gbs() > 0.0);
            assert!(
                r.average_bandwidth_gbs() < 100_000.0,
                "bandwidth insane: {}",
                r.average_bandwidth_gbs()
            );
            assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
        }
    }
}

#[test]
fn reports_serialize_to_json() {
    let w = &small_suite()[0];
    let r = simulate(ArchKind::TransPim, DataflowKind::Token, w, 8);
    let json = r.to_json().expect("serialize");
    assert!(json.contains("Token-TransPIM"));
    let back: SimReport = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back.system, r.system);
}

#[test]
fn acu_design_knobs_trade_area_for_speed() {
    let mut w = Workload::triviaqa();
    w.model.encoder_layers = 2;
    let lat = |p_sub: u32, p_add: u32| {
        let arch = ArchConfig::new(ArchKind::TransPim).with_acu(p_sub, p_add);
        Accelerator::new(arch).simulate(&w, DataflowKind::Token).stats.latency_ns
    };
    // More adder trees and more ACUs never hurt latency.
    assert!(lat(16, 4) <= lat(16, 1));
    assert!(lat(16, 4) <= lat(4, 4));
    assert!(lat(64, 4) <= lat(16, 4));
}
