//! The fault subsystem must be invisible until used, and deterministic
//! when used:
//!
//! * **fault-free byte identity** — simulating with injection disabled
//!   (an empty scenario) produces a report, trace, and metrics document
//!   byte-identical to a plain simulation: the `Option<&mut FaultSession>`
//!   threading through the executor must not perturb a single f64 or emit
//!   a single extra event;
//! * **determinism under faults** — the same seed and scenario produce
//!   byte-identical degraded reports at any job count, because each cell
//!   builds its own session and the flip stream is a pure function of
//!   `(seed, lump sequence)`.

use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::fault::{EccScheme, Fault, FaultScenario};
use transpim::report::DataflowKind;
use transpim::{ChromeTraceSink, FanoutSink, MetricsSink, SinkHandle};
use transpim_transformer::workload::Workload;

fn small_workload() -> Workload {
    let mut w = Workload::imdb();
    w.model.encoder_layers = 1;
    w
}

/// Report + trace + metrics of one observed simulation, as one string:
/// equality means byte-identical files on disk.
fn render(acc: &Accelerator, w: &Workload, scenario: Option<&FaultScenario>) -> String {
    let chrome = ChromeTraceSink::shared();
    let metrics = MetricsSink::shared();
    let sink = SinkHandle::new(FanoutSink::new(vec![
        SinkHandle::from_shared(chrome.clone()),
        SinkHandle::from_shared(metrics.clone()),
    ]));
    let report = match scenario {
        Some(s) => acc
            .simulate_degraded_with_sink(w, DataflowKind::Token, s, sink)
            .expect("scenario is correctable"),
        None => acc.simulate_with_sink(w, DataflowKind::Token, sink),
    };
    let mut doc = report.to_json().expect("serialize report");
    doc.push('\n');
    doc.push_str(&chrome.borrow().to_json_string().expect("serialize trace"));
    doc.push('\n');
    doc.push_str(&metrics.borrow().to_json_string().expect("serialize metrics"));
    doc
}

#[test]
fn disabled_injection_is_byte_identical_to_plain_simulation() {
    let w = small_workload();
    let empty = FaultScenario::empty(20220402);
    assert!(empty.is_empty());
    for kind in ArchKind::ALL {
        let acc = Accelerator::new(ArchConfig::new(kind));
        assert_eq!(
            render(&acc, &w, None),
            render(&acc, &w, Some(&empty)),
            "{kind}: empty scenario perturbed the output"
        );
    }
}

#[test]
fn empty_scenario_report_omits_fault_accounting() {
    let w = small_workload();
    let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
    let r = acc
        .simulate_degraded(&w, DataflowKind::Token, &FaultScenario::empty(1))
        .expect("empty scenario");
    assert!(r.faults.is_none());
    assert!(!r.to_json().expect("serialize").contains("faults"));
}

fn scenario_grid() -> Vec<FaultScenario> {
    let mut cells = Vec::new();
    for (seed, flips) in [(20220402u64, 2.0f64), (7, 16.0)] {
        let mut s = FaultScenario::empty(seed);
        s.ecc = EccScheme::Secded;
        s.faults = vec![
            Fault::FailedBank { bank: 3 },
            Fault::StuckBitPlanes { bank: 1, planes: 8 },
            Fault::DeadLink { group: 0 },
            Fault::DegradedLink { group: 2, factor: 0.5 },
            Fault::TransientFlips { per_gib: flips },
            Fault::BrokenDivider { bank: 5 },
        ];
        cells.push(s);
    }
    let mut parity = FaultScenario::empty(99);
    parity.ecc = EccScheme::Parity;
    parity.faults = vec![Fault::TransientFlips { per_gib: 8.0 }];
    cells.push(parity);
    cells
}

#[test]
fn degraded_reports_are_independent_of_job_count_and_rerun() {
    let w = small_workload();
    let render_all = |jobs: usize| -> Vec<String> {
        let pool_jobs: Vec<_> = scenario_grid()
            .into_iter()
            .map(|scenario| {
                let w = w.clone();
                move || {
                    let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
                    acc.simulate_degraded(&w, DataflowKind::Token, &scenario)
                        .expect("scenario is correctable")
                        .to_json()
                        .expect("serialize report")
                }
            })
            .collect();
        transpim_par::run(jobs, pool_jobs)
    };
    let serial = render_all(1);
    assert_eq!(serial, render_all(8), "jobs=8 diverged from jobs=1");
    assert_eq!(serial, render_all(1), "rerun with the same seed diverged");
}

#[test]
fn degraded_runs_account_their_faults() {
    let w = small_workload();
    let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
    for scenario in scenario_grid() {
        let r = acc.simulate_degraded(&w, DataflowKind::Token, &scenario).expect("correctable");
        let f = r.faults.expect("non-empty scenario carries accounting");
        assert!(f.injected >= scenario.faults.len() as u64 - 1, "static faults counted");
        assert_eq!(f.uncorrectable, 0);
        assert_eq!(f.injected, f.detected);
        assert_eq!(f.detected, f.corrected);
        assert!(f.overhead_latency_ns > 0.0, "degradation has a cost");
    }
}
