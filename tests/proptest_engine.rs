//! Self-tests for the vendored property-testing engine
//! (`third_party/proptest`): case accounting, shrinking, regression-seed
//! persistence, determinism, and the strategy-combinator surface the
//! workspace relies on.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use proptest::prelude::*;
use proptest::rng::{Seed, TestRng};
use proptest::runner::run;

/// A unique fake "source file" so a deliberately failing run persists its
/// regression seed into a scratch location instead of next to this test.
fn scratch_source(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("transpim-proptest-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("fake_test.rs");
    std::fs::write(&src, "// scratch\n").unwrap();
    let regressions = src.with_extension("proptest-regressions");
    let _ = std::fs::remove_file(&regressions);
    (src, regressions)
}

/// Satellite pin: `ProptestConfig::with_cases(1)` must construct (it used
/// to be `unimplemented!()`) and drive exactly one case end to end.
#[test]
fn with_cases_one_runs_exactly_one_case() {
    let config = ProptestConfig::with_cases(1);
    assert_eq!(config.cases, 1);

    let hits = Cell::new(0u32);
    let executed =
        run("proptest_engine::with_cases_one", file!(), &["v"], &config, (0u32..100,), |(v,)| {
            hits.set(hits.get() + 1);
            prop_assert!(v < 100);
            Ok(())
        });
    // `TRANSPIM_PROPTEST_CASES` (set by check.sh sweeps) overrides the
    // config, so assert against the weaker invariant in that environment.
    match std::env::var("TRANSPIM_PROPTEST_CASES") {
        Err(_) => {
            assert_eq!(executed, 1, "with_cases(1) must run exactly one case");
            assert_eq!(hits.get(), 1);
        }
        Ok(_) => assert_eq!(hits.get(), executed),
    }
}

/// A failing integer property must shrink to the exact boundary value and
/// report it in the panic message.
#[test]
fn integer_counterexample_shrinks_to_boundary() {
    let (src, regressions) = scratch_source("int-shrink");
    let err = catch_unwind(AssertUnwindSafe(|| {
        run(
            "proptest_engine::int_shrink",
            src.to_str().unwrap(),
            &["v"],
            &ProptestConfig::with_cases(256),
            (0i32..1000,),
            |(v,)| {
                prop_assert!(v < 17, "too big: {}", v);
                Ok(())
            },
        );
    }))
    .expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("panic payload").clone();
    assert!(
        msg.contains("minimal failing input: v = 17"),
        "expected shrink to the v = 17 boundary, got:\n{msg}"
    );
    assert!(regressions.exists(), "failure must persist a regression seed");
}

/// A failing vec property must shrink both structurally (drop innocent
/// elements) and element-wise (minimize the guilty one).
#[test]
fn vec_counterexample_shrinks_to_single_minimal_element() {
    let (src, _) = scratch_source("vec-shrink");
    let err = catch_unwind(AssertUnwindSafe(|| {
        run(
            "proptest_engine::vec_shrink",
            src.to_str().unwrap(),
            &["v"],
            &ProptestConfig::with_cases(256),
            (proptest::collection::vec(0i32..100, 0..20),),
            |(v,)| {
                prop_assert!(v.iter().all(|&e| e < 10), "contains big element");
                Ok(())
            },
        );
    }))
    .expect_err("property must fail");
    let msg = err.downcast_ref::<String>().expect("panic payload").clone();
    assert!(
        msg.contains("minimal failing input: v = [10]"),
        "expected shrink to the single-element vec [10], got:\n{msg}"
    );
}

/// Failures write an upstream-format `.proptest-regressions` file; the
/// persisted seed replays FIRST on the next run (failing on case 1) and is
/// not duplicated by that second failure.
#[test]
fn regression_seeds_persist_dedup_and_replay_first() {
    let (src, regressions) = scratch_source("persist");
    let failing = |(v,): (i32,)| {
        prop_assert!(v < 5, "too big");
        Ok(())
    };
    let run_once = || {
        catch_unwind(AssertUnwindSafe(|| {
            run(
                "proptest_engine::persist",
                src.to_str().unwrap(),
                &["v"],
                &ProptestConfig::with_cases(64),
                (0i32..1000,),
                failing,
            );
        }))
        .expect_err("property must fail")
    };

    run_once();
    let body = std::fs::read_to_string(&regressions).unwrap();
    assert!(body.starts_with("# Seeds for failure cases"), "upstream header:\n{body}");
    let cc_lines: Vec<&str> = body.lines().filter(|l| l.starts_with("cc ")).collect();
    assert_eq!(cc_lines.len(), 1, "one failure, one seed:\n{body}");
    let line = cc_lines[0];
    assert!(line.contains("# shrinks to v = 5"), "shrunk value in comment: {line}");
    let hex = line.split_whitespace().nth(1).unwrap();
    assert_eq!(hex.len(), 64);
    assert!(Seed::from_hex(hex).is_some(), "seed must parse back: {hex}");

    let err = run_once();
    let msg = err.downcast_ref::<String>().expect("panic payload").clone();
    assert!(
        msg.contains("property failed after 1 case(s)"),
        "persisted seed must replay before novel cases:\n{msg}"
    );
    let body2 = std::fs::read_to_string(&regressions).unwrap();
    let cc2 = body2.lines().filter(|l| l.starts_with("cc ")).count();
    assert_eq!(cc2, 1, "replayed failure must not duplicate its seed:\n{body2}");
}

/// The per-test master stream is a pure function of the test name (plus
/// the optional env perturbation), so runs are reproducible.
#[test]
fn generation_is_deterministic_per_test_name() {
    let observe = |name: &str| {
        let seen = std::cell::RefCell::new(Vec::new());
        run(name, file!(), &["v"], &ProptestConfig::with_cases(32), (0u64..1_000_000,), |(v,)| {
            seen.borrow_mut().push(v);
            Ok(())
        });
        seen.into_inner()
    };
    let a = observe("proptest_engine::determinism");
    let b = observe("proptest_engine::determinism");
    let c = observe("proptest_engine::determinism_other");
    assert_eq!(a, b, "same test name must generate the same value stream");
    assert_ne!(a, c, "different test names must decorrelate");
    assert_eq!(a.len(), b.len());
}

/// Seeds round-trip through the upstream 64-hex-char `cc` encoding, and a
/// seeded PRNG reproduces its stream exactly.
#[test]
fn seed_hex_roundtrip_and_rng_replay() {
    let mut master = TestRng::master("proptest_engine::seed_roundtrip", 0);
    for _ in 0..16 {
        let seed = master.gen_seed();
        let hex = seed.to_hex();
        assert_eq!(hex.len(), 64);
        let back = Seed::from_hex(&hex).expect("hex must parse");
        assert_eq!(back.0, seed.0);
        let s1: Vec<u64> = {
            let mut r = TestRng::from_seed(seed);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let s2: Vec<u64> = {
            let mut r = TestRng::from_seed(back);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(s1, s2);
    }
    assert!(Seed::from_hex("not hex").is_none());
    assert!(Seed::from_hex("abcd").is_none(), "short strings must be rejected");
}

/// A filter that rejects too often must abort with the global-reject
/// diagnostic instead of looping forever.
#[test]
fn impossible_assume_aborts_with_reject_diagnostic() {
    let (src, _) = scratch_source("rejects");
    let err = catch_unwind(AssertUnwindSafe(|| {
        run(
            "proptest_engine::rejects",
            src.to_str().unwrap(),
            &["v"],
            &ProptestConfig { max_global_rejects: 50, ..ProptestConfig::with_cases(64) },
            (0i32..1000,),
            |(_v,)| Err(TestCaseError::reject("never satisfiable")),
        );
    }))
    .expect_err("must abort");
    let msg = err.downcast_ref::<String>().expect("panic payload").clone();
    assert!(msg.contains("too many global rejects"), "got:\n{msg}");
}

prop_compose! {
    /// `prop_compose!` coverage: a derived strategy usable like any other.
    fn small_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
        (a, b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every combinator the workspace uses, generating in-domain values.
    #[test]
    fn combinator_surface_generates_in_domain(
        one_of in prop_oneof![
            Just(0u32),
            1u32..5,
            (10u32..20).prop_map(|v| v * 2),
        ],
        v in proptest::collection::vec(0i64..100, 2..6),
        f in -1.0f64..1.0,
        g in 0.0f32..=1.0,
        pair in small_pair(),
        even in (0u32..100).prop_filter("must be even", |v| v % 2 == 0),
        b in any::<bool>(),
        t in (any::<i8>(), 0u16..300),
    ) {
        prop_assume!(v.len() >= 2); // always true: exercises assume plumbing
        prop_assert!(
            one_of == 0 || (1..5).contains(&one_of) || ((20..40).contains(&one_of) && one_of % 2 == 0),
            "out of union domain: {}", one_of
        );
        prop_assert!((2..6).contains(&v.len()), "vec len {} out of range", v.len());
        prop_assert!(v.iter().all(|e| (0..100).contains(e)));
        prop_assert!((-1.0..1.0).contains(&f), "f64 {} out of half-open range", f);
        prop_assert!((0.0..=1.0).contains(&g), "f32 {} out of inclusive range", g);
        prop_assert!(pair.0 < 10 && pair.1 < 10);
        prop_assert_eq!(even % 2, 0);
        prop_assert_eq!([false, true][usize::from(b)], b);
        prop_assert!(t.1 < 300);
        prop_assert_ne!(v.len(), 0);
    }
}
