//! Integration tests for the observability pipeline: the Chrome-trace
//! document a traced simulation emits must be well-formed (parseable,
//! time-ordered, categorized with the simulator's own labels), and
//! attaching a null sink must leave the simulation bit-for-bit unchanged.

use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim::{ChromeTraceSink, MetricsSink, SinkHandle};
use transpim_hbm::stats::Category;
use transpim_transformer::workload::Workload;

fn small_workload() -> Workload {
    let mut w = Workload::imdb();
    w.model.encoder_layers = 2;
    w
}

fn traced_json(kind: ArchKind) -> String {
    let acc = Accelerator::new(ArchConfig::new(kind));
    let (_, trace) =
        acc.simulate_traced(&small_workload(), DataflowKind::Token).expect("trace serializes");
    trace
}

#[test]
fn chrome_trace_parses_and_is_time_ordered() {
    let trace = traced_json(ArchKind::TransPim);
    let events: Vec<serde_json::Value> =
        serde_json::from_str(&trace).expect("chrome trace is a JSON array");
    assert!(!events.is_empty());

    // Metadata records lead; real events follow in non-decreasing ts order
    // with non-negative durations.
    let mut last_ts = f64::NEG_INFINITY;
    let mut real_events = 0usize;
    for e in &events {
        let ph = e["ph"].as_str().expect("every event has a phase");
        if ph == "M" {
            assert_eq!(e["name"], "thread_name", "only track names are metadata");
            continue;
        }
        let ts = e["ts"].as_f64().expect("every event has a µs timestamp");
        assert!(ts >= last_ts, "ts must be non-decreasing: {ts} after {last_ts}");
        assert!(ts >= 0.0);
        last_ts = ts;
        if ph == "X" {
            let dur = e["dur"].as_f64().expect("complete events carry a duration");
            assert!(dur >= 0.0, "negative duration {dur}");
        }
        real_events += 1;
    }
    assert!(real_events > 0, "a real program must emit non-metadata events");
}

#[test]
fn phase_span_categories_match_the_breakdown_labels() {
    let trace = traced_json(ArchKind::TransPim);
    let events: Vec<serde_json::Value> = serde_json::from_str(&trace).unwrap();
    let known: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
    let mut seen_phase_cats = std::collections::BTreeSet::new();
    for e in &events {
        let (Some(ph), Some(cat)) = (e["ph"].as_str(), e["cat"].as_str()) else {
            continue;
        };
        match ph {
            // Phase spans use the breakdown labels; interior detail uses
            // "ring"; counters and metadata have their own categories.
            "X" | "i" => {
                assert!(known.contains(&cat) || cat == "ring", "unexpected category '{cat}'")
            }
            "C" => assert_eq!(cat, "counter"),
            "M" => assert_eq!(cat, "__metadata"),
            other => panic!("unexpected phase type '{other}'"),
        }
        if ph == "X" && known.contains(&cat) {
            seen_phase_cats.insert(cat.to_owned());
        }
    }
    // The token dataflow exercises movement, arithmetic and reduction.
    for want in ["data-movement", "arithmetic", "reduction"] {
        assert!(seen_phase_cats.contains(want), "no '{want}' phase span in the trace");
    }
}

#[test]
fn ring_hops_are_visible_per_hop() {
    let trace = traced_json(ArchKind::TransPim);
    let events: Vec<serde_json::Value> = serde_json::from_str(&trace).unwrap();
    let hops: Vec<_> = events
        .iter()
        .filter(|e| {
            e["ph"] == "X"
                && e["cat"] == "ring"
                && e["name"].as_str().is_some_and(|n| n.starts_with("hop "))
        })
        .collect();
    assert!(!hops.is_empty(), "per-hop ring events expected in a TransPIM trace");
    for h in &hops {
        assert!(h["args"]["slot"].as_f64().is_some(), "hops carry their schedule slot");
    }
}

#[test]
fn resource_utilization_counters_are_emitted() {
    let trace = traced_json(ArchKind::TransPim);
    let events: Vec<serde_json::Value> = serde_json::from_str(&trace).unwrap();
    let counters: Vec<_> = events.iter().filter(|e| e["ph"] == "C").collect();
    assert!(!counters.is_empty(), "utilization counters expected");
    // Per-category utilization curves are always present; ring steps add
    // per-bank occupancy samples.
    assert!(
        counters.iter().any(|c| c["name"].as_str().is_some_and(|n| n.starts_with("util."))),
        "per-category/per-resource 'util.*' counters expected"
    );
    assert!(
        counters.iter().any(|c| c["name"].as_str().is_some_and(|n| n.starts_with("util.bank"))),
        "per-bank occupancy counters expected from ring steps"
    );
    for c in &counters {
        let (_, v) =
            c["args"].as_object().and_then(|o| o.iter().next()).expect("counters carry a value");
        let busy = v.as_f64().expect("busy fraction is numeric");
        assert!((0.0..=1.0).contains(&busy), "busy fraction {busy} out of range");
    }
}

#[test]
fn null_sink_runs_are_bit_identical_to_untraced_runs() {
    for kind in ArchKind::ALL {
        let acc = Accelerator::new(ArchConfig::new(kind));
        let w = small_workload();
        for df in DataflowKind::ALL {
            let plain = acc.simulate(&w, df);
            let nulled = acc.simulate_with_sink(&w, df, SinkHandle::null());
            assert_eq!(plain.stats, nulled.stats, "{kind:?}/{df:?} stats diverged");
            assert_eq!(plain.scoped, nulled.scoped, "{kind:?}/{df:?} scoped stats diverged");
            let (traced, _) = acc.simulate_traced(&w, df).expect("trace serializes");
            assert_eq!(plain.stats, traced.stats, "{kind:?}/{df:?} tracing perturbed stats");
        }
    }
}

#[test]
fn metrics_sink_aggregates_cover_every_emitting_category() {
    let chrome = ChromeTraceSink::shared();
    let metrics = MetricsSink::shared();
    let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
    // Fan out to both sinks in one run; the aggregates must agree with the
    // trace's phase spans.
    let sink = SinkHandle::new(transpim::FanoutSink::new(vec![
        SinkHandle::from_shared(chrome.clone()),
        SinkHandle::from_shared(metrics.clone()),
    ]));
    acc.simulate_with_sink(&small_workload(), DataflowKind::Token, sink);

    let flat = metrics.borrow().to_flat();
    for cat in ["data-movement", "arithmetic", "reduction"] {
        assert!(
            flat.keys().any(|k| k.starts_with(&format!("span.{cat}."))),
            "no aggregated spans for '{cat}'"
        );
    }
    let span_count: f64 = flat
        .iter()
        .filter(|(k, _)| k.starts_with("span.") && k.ends_with(".count"))
        .map(|(_, v)| *v)
        .sum();
    let chrome_spans = chrome.borrow().sorted_events().into_iter().filter(|e| e.ph == "X").count();
    assert_eq!(span_count as usize, chrome_spans, "metrics and trace disagree on span count");

    // CSV export round-trips the same keys.
    let csv = metrics.borrow().to_csv_string();
    assert!(csv.starts_with("metric,value\n"));
    assert_eq!(csv.lines().count(), flat.len() + 1);
}
