//! Integration tests: command-level traces replayed under the Table I
//! timing rules must agree with the closed-form cost models everywhere the
//! simulator uses them (the "modified Ramulator" pinning).

use proptest::prelude::*;
use transpim_acu::adder_tree::{AcuParams, AcuReduceModel};
use transpim_hbm::command::{acu_reduce_trace, pim_batch_trace};
use transpim_hbm::config::HbmConfig;
use transpim_hbm::timing::TimingParams;
use transpim_pim::cost::{PimCostModel, PimCostParams, PimOp};

fn pim_model() -> PimCostModel {
    let hbm = HbmConfig::default();
    PimCostModel::new(hbm.geometry, hbm.timing, hbm.energy, PimCostParams::default())
}

#[test]
fn pim_ops_trace_equivalence() {
    let m = pim_model();
    let t = TimingParams::default();
    for op in [
        PimOp::Add { bits: 4 },
        PimOp::Add { bits: 16 },
        PimOp::Mul { a_bits: 8, b_bits: 8 },
        PimOp::Mul { a_bits: 16, b_bits: 8 },
        PimOp::ExpTaylor { bits: 16, order: 5 },
    ] {
        let trace = m.batch_trace(op);
        assert!(
            (trace.replay_ns(&t) - m.batch_latency_ns(op)).abs() < 1e-6,
            "{op:?} trace/formula divergence"
        );
    }
}

#[test]
fn acu_reduce_trace_equivalence() {
    // The ACU reduction's per-activation cost in the analytic model must
    // match a replayed activate + P_add column reads + precharge stream.
    let hbm = HbmConfig::default();
    let t = TimingParams::default();
    for p_add in [1u32, 2, 4, 8, 16] {
        let model = AcuReduceModel::new(
            hbm.geometry,
            hbm.timing,
            hbm.energy,
            AcuParams { p_add, ..AcuParams::default() },
        );
        for (vec_len, bits) in [(256u32, 8u32), (512, 16), (4096, 16)] {
            let rows = model.row_activations(vec_len, bits);
            let trace = acu_reduce_trace(rows, p_add);
            let replayed = trace.replay_ns(&t);
            // The analytic model adds the adder-tree pipeline drain on top
            // of the activation stream.
            let analytic = model.vector_latency_ns(vec_len, bits);
            let drain = analytic - replayed;
            assert!(
                (0.0..200.0).contains(&drain),
                "p_add={p_add} N={vec_len} b={bits}: replay {replayed}, analytic {analytic}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_pim_ops_match_traces(a_bits in 1u32..20, b_bits in 1u32..20) {
        let m = pim_model();
        let t = TimingParams::default();
        let op = PimOp::Mul { a_bits, b_bits };
        let trace = m.batch_trace(op);
        prop_assert!((trace.replay_ns(&t) - m.batch_latency_ns(op)).abs() < 1e-6);
        prop_assert_eq!(trace.aaps(), op.aaps());
    }

    #[test]
    fn aap_pacing_is_exact(aaps in 0u64..5000) {
        let t = TimingParams::default();
        let trace = pim_batch_trace(aaps);
        prop_assert!((trace.replay_ns(&t) - aaps as f64 * t.t_aap()).abs() < 1e-6);
    }
}
