//! The job pool must be a pure wall-clock optimization: every `--jobs`
//! level yields byte-identical reports, metrics, and traces, because
//! `run_grid` returns cells in submission order and per-cell sinks merge
//! in that same order. These tests pin that contract at the library level
//! (the `scripts/bench_wallclock.sh` sweep pins it end-to-end).

use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim_bench::{run_grid, GridCell};
use transpim_obs::{ChromeTraceSink, MetricsSink};
use transpim_transformer::workload::Workload;

/// A small but non-trivial grid: two lengths × two stack counts × two
/// architectures × both dataflows — enough cells to exercise batching,
/// executor reuse, and out-of-order completion under the pool.
fn grid() -> Vec<GridCell> {
    let mut cells = Vec::new();
    for l in [96usize, 192] {
        let mut w = Workload::synthetic_roberta(l);
        w.model.encoder_layers = 1;
        for stacks in [1u32, 2] {
            for kind in [ArchKind::TransPim, ArchKind::Nbp] {
                for df in DataflowKind::ALL {
                    cells.push(GridCell::custom(ArchConfig::new(kind).with_stacks(stacks), df, &w));
                }
            }
        }
    }
    cells
}

/// Render everything an observed grid run can emit — per-cell report JSON,
/// the merged metrics document, and the merged trace document — as one
/// string, so equality means byte-identical files on disk.
fn render(jobs: usize) -> String {
    let outputs = run_grid(jobs, true, true, grid());
    let mut merged_metrics = MetricsSink::new();
    let mut merged_trace = ChromeTraceSink::new();
    let mut doc = String::new();
    for output in outputs {
        doc.push_str(&output.report.to_json().expect("serialize report"));
        doc.push('\n');
        merged_metrics.merge(output.metrics.expect("metrics requested"));
        merged_trace.absorb(output.trace.expect("trace requested"));
    }
    doc.push_str(&merged_metrics.to_json_string().expect("serialize metrics"));
    doc.push('\n');
    doc.push_str(&merged_metrics.to_csv_string());
    doc.push('\n');
    doc.push_str(&merged_trace.to_json_string().expect("serialize trace"));
    doc
}

#[test]
fn grid_output_is_independent_of_job_count() {
    let serial = render(1);
    for jobs in [2, 8] {
        assert_eq!(serial, render(jobs), "jobs={jobs} diverged from jobs=1");
    }
}

#[test]
fn unobserved_grid_reports_are_independent_of_job_count() {
    // The sink-free path takes the executor-reuse branch; it must price
    // identically at any width too.
    let reports = |jobs: usize| {
        run_grid(jobs, false, false, grid())
            .into_iter()
            .map(|o| o.report.to_json().expect("serialize report"))
            .collect::<Vec<_>>()
    };
    assert_eq!(reports(1), reports(6));
}
