//! Differential fuzz harness: randomized cross-checks between independent
//! implementations of the same semantics.
//!
//! Six comparisons, each over ≥128 generated cases (fixed seeds in CI via
//! `TRANSPIM_PROPTEST_SEED` in `scripts/check.sh`):
//!
//! 1. **banksim vs f32** — the bit-accurate Figure 8 datapath must agree
//!    with plain f32 attention within the documented fixed-point tolerance
//!    on random shapes and inputs, and its traced AAP count must equal the
//!    analytic closed-form prediction exactly.
//! 2. **Repeat compression vs unrolled** — `RepeatCompressor` output must
//!    unroll to exactly the step stream that was fed in, and the program's
//!    O(1) push-time totals must equal the totals recomputed from the
//!    unrolled stream (pinning the closed-form Σi/Σi² accounting).
//! 3. **Token flow vs layer flow** — the two functional dataflow
//!    implementations reorganize the same math and must agree to within
//!    a few f32 ulps (shard boundaries reorder one reduction).
//! 4. **Executor pricing jobs=1 vs jobs=N** — the job pool must render
//!    byte-identical reports (and observability documents) at any width.
//! 5. **Degraded vs fault-free pricing** — a correctable fault scenario
//!    that preserves the program shape (no failed banks, no link faults)
//!    must price as exactly the fault-free run plus the session's recorded
//!    degradation overhead, and must never error.
//! 6. **Uncorrectable faults** — an unprotected flip storm must surface as
//!    a typed `SimError::Uncorrectable`, never a panic or silent success.

use proptest::prelude::*;
use transpim::accelerator::Accelerator;
use transpim::banksim::{attention_row, attention_row_reference, predicted_aaps, tolerance};
use transpim::fault::{EccScheme, Fault, FaultScenario};
use transpim::report::DataflowKind;
use transpim::SimError;
use transpim_bench::fuzz::{affine_step, arch_for, delta_for, small_workload, AFFINE_STEP_KINDS};
use transpim_bench::{run_grid, GridCell};
use transpim_dataflow::functional::encoder_layer_sharded;
use transpim_dataflow::ir::{Program, RepeatCompressor, Step};
use transpim_dataflow::layer_functional::encoder_layer_layerflow;
use transpim_transformer::matrix::Matrix;
use transpim_transformer::model::{ModelConfig, ModelWeights};
use transpim_transformer::softmax::SoftmaxKind;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// (1) banksim vs f32 reference + analytic AAP count
// ---------------------------------------------------------------------------

fn random_unit_rows(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<Vec<f32>> {
    (0..rows).map(|_| (0..cols).map(|_| rng.gen_range(0.0f32..1.0)).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn banksim_attention_matches_f32_within_tolerance(
        n in 1usize..64,
        d in 1usize..64,
        seed in 0u64..(1u64 << 32),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_unit_rows(&mut rng, 1, d).remove(0);
        let keys = random_unit_rows(&mut rng, n, d);
        let values = random_unit_rows(&mut rng, n, d);

        let hw = attention_row(&q, &keys, &values);
        let reference = attention_row_reference(&q, &keys, &values);
        let tol = tolerance(n);
        for (dim, (&h, &r)) in hw.output.iter().zip(&reference).enumerate() {
            prop_assert!(
                (h - r).abs() <= tol,
                "n={n} d={d} dim {dim}: hw {h} vs ref {r} exceeds tolerance {tol}"
            );
        }

        // The functional run and the analytic cost model must agree on the
        // exact in-array command count for every shape.
        prop_assert_eq!(hw.aaps, predicted_aaps(n, d), "AAP count drifted for n={}, d={}", n, d);

        // Sanity on the probability row: a (fixed-point) distribution.
        let psum: f32 = hw.probs.iter().sum();
        prop_assert!((psum - 1.0).abs() <= tol, "n={n}: prob sum {psum}");
    }
}

// ---------------------------------------------------------------------------
// (2) RepeatCompressor: unroll equivalence + closed-form totals
// ---------------------------------------------------------------------------

/// One generated step spec: variant selector, varying sizes, structural
/// fields, and per-iteration delta material.
type StepSpec = (u8, u64, u64, u64, u32, u32, u64, u64, u64);

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
}

fn spec_step(spec: &StepSpec) -> (Step, transpim_dataflow::ir::StepDelta) {
    let (kind, s0, s1, s2, w0, w1, d0, d1, d2) = *spec;
    let step = affine_step(kind, [s0, s1, s2], [w0, w1]);
    let delta = delta_for(&step, [d0, d1, d2]);
    (step, delta)
}

fn totals(p: &Program) -> (u64, u64, u64) {
    (p.host_bytes(), p.internal_movement_bytes(), p.total_mul_elems())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn repeat_compression_is_an_exact_encoding(
        segments in proptest::collection::vec(
            (proptest::collection::vec(step_spec(), 1..4), 1u64..12),
            1..4,
        ),
    ) {
        // Feed per-iteration blocks (block i = base advanced i times) and
        // interleave segments; every segment boundary exercises a flush.
        let mut comp = RepeatCompressor::new();
        let mut prog = Program::new();
        let mut expected = Program::new();
        for (specs, count) in &segments {
            let parts: Vec<_> = specs.iter().map(spec_step).collect();
            for i in 0..*count {
                let mut block: Vec<Step> =
                    parts.iter().map(|(step, delta)| step.at(delta, i)).collect();
                for s in &block {
                    expected.push(s.clone());
                }
                comp.push_block(&mut prog, &mut block);
            }
        }
        comp.flush(&mut prog);

        // The compressed program denotes exactly the input stream…
        let unrolled = prog.unroll();
        prop_assert_eq!(unrolled.steps(), expected.steps());
        prop_assert_eq!(prog.unrolled_len(), expected.len() as u64);
        // …and its push-time totals equal the totals recomputed from the
        // unrolled stream (closed-form Σi/Σi² vs plain per-step sums).
        prop_assert_eq!(totals(&prog), totals(&expected));
        prop_assert_eq!(totals(&prog), totals(&unrolled));
    }

    #[test]
    fn repeat_push_block_times_matches_explicit_blocks(
        specs in proptest::collection::vec(step_spec(), 1..4),
        times in 1u64..200,
        kind in 0u8..AFFINE_STEP_KINDS,
    ) {
        let parts: Vec<_> = specs.iter().map(spec_step).collect();
        let block: Vec<Step> = parts.iter().map(|(step, _)| step.clone()).collect();

        // Pre-counted identical blocks…
        let mut comp = RepeatCompressor::new();
        let mut prog = Program::new();
        comp.push_block_times(&mut prog, &mut block.clone(), times);
        // …then a non-foldable tail step to force heterogeneous flushing.
        let tail = affine_step(kind, [7, 7, 7], [kind as u32, 3]);
        comp.push_block(&mut prog, &mut vec![tail.clone()]);
        comp.flush(&mut prog);

        let mut expected = Program::new();
        for _ in 0..times {
            for s in &block {
                expected.push(s.clone());
            }
        }
        expected.push(tail);

        let unrolled = prog.unroll();
        prop_assert_eq!(unrolled.steps(), expected.steps());
        prop_assert_eq!(totals(&prog), totals(&expected));
    }
}

// ---------------------------------------------------------------------------
// (3) Token flow vs layer flow functional numerics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn token_and_layer_flow_encoders_agree(
        enc_layers in 1usize..3,
        heads in 1usize..4,
        dh in 1usize..5,
        d_ff in 1usize..9,
        seq in 1usize..10,
        banks_token in 1usize..7,
        banks_layer in 1usize..7,
        seed in 0u64..10_000,
    ) {
        let d = heads * dh;
        let cfg = ModelConfig {
            name: "fuzz-enc".into(),
            encoder_layers: enc_layers,
            decoder_layers: 0,
            d_model: d,
            heads,
            d_ff,
            cross_attention: false,
        };
        let weights = ModelWeights::random(&cfg, seed);
        let input = Matrix::from_fn(seq, d, |r, c| {
            (((r * 131 + c * 17 + seed as usize) % 97) as f32 / 97.0 - 0.5) * 1.2
        });

        for kind in [SoftmaxKind::Exact, SoftmaxKind::HardwareTaylor] {
            let mut token = input.clone();
            let mut layer = input.clone();
            for w in &weights.encoder {
                token = encoder_layer_sharded(&token, w, heads, kind, banks_token);
                layer = encoder_layer_layerflow(&layer, w, heads, kind, banks_layer);
            }
            // Same per-row math, but the shard boundaries reorder the
            // Σ_j probs·V accumulation over the sequence dimension, so
            // different bank counts drift by a few f32 ulps (observed
            // ~6e-8 per layer on unit-scale values). 1e-5 gives ~100×
            // headroom while still catching any real math divergence.
            let diff = token.max_abs_diff(&layer);
            prop_assert!(
                diff <= 1e-5,
                "token flow ({banks_token} banks) vs layer flow ({banks_layer} banks) \
                 diverged by {diff} ({kind:?})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// (4) Executor pricing: jobs=1 vs jobs=N
// ---------------------------------------------------------------------------

/// (arch, enc, dec, heads, dh, seq, decode, batch); d_ff is derived.
type CellSpec = (u8, usize, usize, usize, usize, usize, usize, usize);

fn spec_cells(specs: &[CellSpec]) -> Vec<GridCell> {
    let mut cells = Vec::new();
    for &(arch, enc, dec, heads, dh, seq, decode, batch) in specs {
        let w = small_workload(enc, dec, heads, dh, 4 * heads * dh, seq, decode, batch);
        for df in DataflowKind::ALL {
            cells.push(GridCell::custom(arch_for(arch), df, &w));
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grid_pricing_is_job_count_invariant(
        specs in proptest::collection::vec(
            (0u8..4, 1usize..3, 0usize..3, 1usize..4, 1usize..4, 1usize..9, 0usize..5, 1usize..3),
            1..4,
        ),
        jobs in 2usize..9,
        want_obs in any::<bool>(),
    ) {
        let serial = run_grid(1, want_obs, want_obs, spec_cells(&specs));
        let pooled = run_grid(jobs, want_obs, want_obs, spec_cells(&specs));
        prop_assert_eq!(serial.len(), pooled.len());
        for (i, (s, p)) in serial.iter().zip(&pooled).enumerate() {
            prop_assert_eq!(
                s.report.to_json().expect("serialize report"),
                p.report.to_json().expect("serialize report"),
                "cell {}: report diverged between jobs=1 and jobs={}", i, jobs
            );
            if want_obs {
                let (sm, pm) = (s.metrics.as_ref().unwrap(), p.metrics.as_ref().unwrap());
                prop_assert_eq!(
                    sm.to_json_string().expect("metrics"),
                    pm.to_json_string().expect("metrics"),
                    "cell {}: metrics diverged", i
                );
                let (st, pt) = (s.trace.as_ref().unwrap(), p.trace.as_ref().unwrap());
                prop_assert_eq!(
                    st.to_json_string().expect("trace"),
                    pt.to_json_string().expect("trace"),
                    "cell {}: trace diverged", i
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// (5) + (6) Fault injection: error budget and typed failure
// ---------------------------------------------------------------------------

/// Total energy across all categories.
fn total_pj(r: &transpim::report::SimReport) -> f64 {
    r.stats.energy_pj.iter().sum()
}

/// `|a - b|` within 1e-9 relative — floating-point reassociation headroom
/// for the base-plus-overhead identity over thousands of lumps.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn correctable_faults_stay_within_error_budget(
        arch in 0u8..4,
        df_idx in 0usize..2,
        (enc, heads, dh, seq) in (1usize..3, 1usize..4, 1usize..4, 1usize..9),
        stuck in proptest::collection::vec((0u32..2048, 1u32..32), 0..3),
        dividers in proptest::collection::vec(0u32..2048, 0..3),
        per_gib in 0.0f64..64.0,
        secded in any::<bool>(),
        seed in 0u64..(1u64 << 32),
    ) {
        // Shape-preserving faults only: no failed banks (re-sharding
        // changes the program) and no link faults (rerouting changes lump
        // latencies at the source). Everything else must price as the
        // fault-free run plus the recorded overhead — the error budget.
        let mut scenario = FaultScenario::empty(seed);
        scenario.ecc = if secded { EccScheme::Secded } else { EccScheme::Parity };
        scenario.faults = stuck
            .iter()
            .map(|&(bank, planes)| Fault::StuckBitPlanes { bank, planes })
            .chain(dividers.iter().map(|&bank| Fault::BrokenDivider { bank }))
            .collect();
        scenario.faults.push(Fault::TransientFlips { per_gib });

        let w = small_workload(enc, 0, heads, dh, 4 * heads * dh, seq, 0, 1);
        let df = DataflowKind::ALL[df_idx % DataflowKind::ALL.len()];
        let acc = Accelerator::new(arch_for(arch));
        let base = acc.simulate(&w, df);
        let degraded = acc
            .simulate_degraded(&w, df, &scenario)
            .expect("correctable scenario must not error");
        let f = degraded.faults.clone().expect("non-empty scenario carries accounting");

        prop_assert_eq!(f.uncorrectable, 0, "nothing here is uncorrectable");
        prop_assert!(
            degraded.stats.latency_ns >= base.stats.latency_ns,
            "degradation must never speed the machine up: {} < {}",
            degraded.stats.latency_ns,
            base.stats.latency_ns
        );
        prop_assert!(
            close(degraded.stats.latency_ns, base.stats.latency_ns + f.overhead_latency_ns),
            "latency budget: degraded {} != base {} + overhead {}",
            degraded.stats.latency_ns,
            base.stats.latency_ns,
            f.overhead_latency_ns
        );
        prop_assert!(
            close(total_pj(&degraded), total_pj(&base) + f.overhead_energy_pj),
            "energy budget: degraded {} != base {} + overhead {}",
            total_pj(&degraded),
            total_pj(&base),
            f.overhead_energy_pj
        );
    }

    #[test]
    fn uncorrectable_faults_surface_as_sim_error(
        (enc, heads, dh) in (1usize..3, 1usize..4, 1usize..4),
        seq in 8usize..64,
        per_gib in 2e9f64..4e9,
        seed in 0u64..(1u64 << 32),
    ) {
        // A flip storm with no ECC: every inter-bank transfer of even a few
        // bytes draws at least one flip, and with `EccScheme::None` the
        // first one must surface as a typed error — never a panic, never a
        // silently corrupted report. Token dataflow with seq >= 8 shards
        // across banks, so ring traffic is guaranteed.
        let mut scenario = FaultScenario::empty(seed);
        scenario.ecc = EccScheme::None;
        scenario.faults = vec![Fault::TransientFlips { per_gib }];

        let w = small_workload(enc, 0, heads, dh, 4 * heads * dh, seq, 0, 1);
        let acc = Accelerator::new(arch_for(0)); // TransPIM: ring broadcasts present
        let err = acc
            .simulate_degraded(&w, DataflowKind::Token, &scenario)
            .expect_err("unprotected flip storm must fail");
        prop_assert!(matches!(err, SimError::Uncorrectable { .. }), "{}", err);
    }
}
