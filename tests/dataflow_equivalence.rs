//! Integration tests: the token-based dataflow computes exactly what the
//! monolithic reference Transformer computes (Section III correctness).
//!
//! These span `transpim-transformer` (reference), `transpim-dataflow`
//! (sharded execution) and `transpim` (the end-to-end verifier).

use proptest::prelude::*;
use transpim::functional::verify_token_dataflow;
use transpim_dataflow::functional::{encoder_layer_sharded, ShardedKv};
use transpim_transformer::layers::encoder_layer;
use transpim_transformer::matrix::Matrix;
use transpim_transformer::model::{ModelConfig, ModelWeights};
use transpim_transformer::softmax::SoftmaxKind;

fn input(l: usize, d: usize, seed: usize) -> Matrix {
    Matrix::from_fn(l, d, |r, c| (((r * 37 + c * 11 + seed) % 89) as f32 / 89.0 - 0.5) * 1.4)
}

#[test]
fn single_layer_sharded_encoder_matches_reference_across_bank_counts() {
    let cfg = ModelConfig::tiny_test();
    let w = ModelWeights::random(&cfg, 11);
    let x = input(12, cfg.d_model, 0);
    let reference = encoder_layer(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact);
    for banks in [1usize, 2, 3, 4, 6, 12, 24] {
        let sharded =
            encoder_layer_sharded(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact, banks);
        let diff = reference.max_abs_diff(&sharded);
        assert!(diff < 1e-4, "banks={banks}: max diff {diff}");
    }
}

#[test]
fn sharded_encoder_matches_with_hardware_softmax() {
    let cfg = ModelConfig::tiny_test();
    let w = ModelWeights::random(&cfg, 12);
    let x = input(9, cfg.d_model, 3);
    let reference = encoder_layer(&x, &w.encoder[0], cfg.heads, SoftmaxKind::HardwareTaylor);
    let sharded =
        encoder_layer_sharded(&x, &w.encoder[0], cfg.heads, SoftmaxKind::HardwareTaylor, 3);
    assert!(reference.max_abs_diff(&sharded) < 1e-4);
}

#[test]
fn full_stack_encoder_decoder_verifies_end_to_end() {
    let cfg = ModelConfig::tiny_test();
    let w = ModelWeights::random(&cfg, 21);
    let r = verify_token_dataflow(&cfg, &w, 10, 5, 4, SoftmaxKind::Exact);
    assert!(
        r.within(5e-4),
        "encoder diff {} decoder diff {} (scale {})",
        r.encoder_max_diff,
        r.decoder_max_diff,
        r.reference_scale
    );
}

#[test]
fn wider_model_verifies() {
    // A slightly larger shape exercises multi-head splits that do not
    // align with shard boundaries.
    let cfg = ModelConfig {
        name: "test-wide".into(),
        encoder_layers: 3,
        decoder_layers: 2,
        d_model: 32,
        heads: 4,
        d_ff: 64,
        cross_attention: true,
    };
    let w = ModelWeights::random(&cfg, 33);
    let r = verify_token_dataflow(&cfg, &w, 13, 4, 5, SoftmaxKind::Exact);
    assert!(r.within(5e-4), "enc {} dec {}", r.encoder_max_diff, r.decoder_max_diff);
}

#[test]
fn decoder_only_gpt_style_model_verifies() {
    let cfg = ModelConfig {
        name: "test-gpt".into(),
        encoder_layers: 0,
        decoder_layers: 2,
        d_model: 16,
        heads: 2,
        d_ff: 32,
        cross_attention: false,
    };
    let w = ModelWeights::random(&cfg, 44);
    let r = verify_token_dataflow(&cfg, &w, 6, 5, 3, SoftmaxKind::Exact);
    assert!(r.decoder_max_diff < 5e-4, "dec diff {}", r.decoder_max_diff);
}

#[test]
fn balanced_kv_placement_is_stable_under_growth() {
    // The decoder assigns each generated token to the least-loaded bank
    // (Section III-C); after T appends the imbalance is at most one row.
    let mut kv = ShardedKv::from_context(&input(10, 8, 7), &input(10, 8, 8), 4);
    for i in 0..23 {
        let row = Matrix::from_fn(1, 8, |_, c| (i * 8 + c) as f32 * 0.01);
        kv.append_balanced(row.clone(), row);
    }
    assert_eq!(kv.len(), 33);
    let sizes: Vec<usize> = kv.k.iter().map(|m| m.rows()).collect();
    let spread = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
    assert!(spread <= 1, "sizes {sizes:?}");
}

#[test]
fn quantized_weights_still_verify_and_stay_close_to_f32() {
    // The int8 path (Section V-B precision): quantize every weight matrix,
    // run the sharded dataflow on the quantized weights, and check (a) it
    // still matches the reference on the *same* quantized weights exactly,
    // and (b) both stay within quantization error of the f32 model.
    use transpim_transformer::quant::fake_quant;
    let cfg = ModelConfig::tiny_test();
    let w = ModelWeights::random(&cfg, 99);
    let mut wq = w.clone();
    for layer in &mut wq.encoder {
        layer.attn.wq = fake_quant(&layer.attn.wq);
        layer.attn.wk = fake_quant(&layer.attn.wk);
        layer.attn.wv = fake_quant(&layer.attn.wv);
        layer.attn.wo = fake_quant(&layer.attn.wo);
        layer.w1 = fake_quant(&layer.w1);
        layer.w2 = fake_quant(&layer.w2);
    }
    let x = input(10, cfg.d_model, 9);

    let ref_q = encoder_layer(&x, &wq.encoder[0], cfg.heads, SoftmaxKind::Exact);
    let sharded_q = encoder_layer_sharded(&x, &wq.encoder[0], cfg.heads, SoftmaxKind::Exact, 4);
    assert!(
        ref_q.max_abs_diff(&sharded_q) < 1e-4,
        "sharded-vs-reference on quantized weights: {}",
        ref_q.max_abs_diff(&sharded_q)
    );

    let ref_f = encoder_layer(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact);
    let q_err = ref_f.max_abs_diff(&ref_q);
    assert!(
        q_err > 0.0 && q_err < 0.15 * ref_f.max_abs().max(1.0),
        "int8 quantization error {q_err} out of expected band (scale {})",
        ref_f.max_abs()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzz over model shapes: any (heads, width, layer counts, sequence
    /// length, bank count) combination must verify. This is the strongest
    /// correctness statement in the repository — the dataflow compiler's
    /// cost model is only meaningful because these executions are real.
    #[test]
    fn random_shapes_verify(
        heads in 1usize..4,
        dh in 2usize..6,
        enc_layers in 0usize..3,
        dec_layers in 0usize..3,
        seq in 1usize..12,
        decode in 0usize..4,
        banks in 1usize..7,
        cross in any::<bool>(),
        seed in 0u64..1000,
    ) {
        prop_assume!(enc_layers + dec_layers > 0);
        let cfg = ModelConfig {
            name: "fuzz".into(),
            encoder_layers: enc_layers,
            decoder_layers: dec_layers,
            d_model: heads * dh,
            heads,
            d_ff: heads * dh * 2,
            cross_attention: cross && enc_layers > 0 && dec_layers > 0,
        };
        let w = ModelWeights::random(&cfg, seed);
        let r = verify_token_dataflow(&cfg, &w, seq, decode, banks, SoftmaxKind::Exact);
        prop_assert!(
            r.within(1e-3),
            "shape {cfg:?} seq={seq} decode={decode} banks={banks}: enc {} dec {}",
            r.encoder_max_diff,
            r.decoder_max_diff
        );
    }
}

#[test]
fn sharding_degenerate_cases_still_verify() {
    let cfg = ModelConfig::tiny_test();
    let w = ModelWeights::random(&cfg, 5);
    // One token, many banks; many tokens, one bank.
    for (l, banks) in [(1usize, 8usize), (16, 1), (2, 2)] {
        let r = verify_token_dataflow(&cfg, &w, l, 2, banks, SoftmaxKind::Exact);
        assert!(r.within(5e-4), "L={l} banks={banks}: enc {}", r.encoder_max_diff);
    }
}
