//! Property tests for the communication scheduler and routing layer:
//! makespans must respect structural bounds on arbitrary hop sets, and
//! routes must be well-formed for every bank pair.

use proptest::prelude::*;
use transpim_acu::ring::{ring_step_hops, schedule_hops, Hop, TransferCostModel};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::geometry::{BankId, HbmGeometry};
use transpim_hbm::resource::{BusParams, ResourceMap};

fn small_geometry() -> HbmGeometry {
    HbmGeometry {
        stacks: 2,
        channels_per_stack: 2,
        groups_per_channel: 2,
        banks_per_group: 4,
        ..HbmGeometry::default()
    }
}

fn setup(buffered: bool) -> (ResourceMap, TransferCostModel) {
    let g = small_geometry();
    (
        ResourceMap::new(g, BusParams::default(), buffered),
        TransferCostModel::new(g, EnergyParams::default(), buffered),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_is_bounded_by_hop_extremes(
        pairs in proptest::collection::vec((0u32..32, 0u32..32), 1..24),
        bytes in 64u64..8192,
        buffered in any::<bool>(),
    ) {
        let (map, xfer) = setup(buffered);
        let hops: Vec<Hop> = pairs
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| Hop { src: BankId(s), dst: BankId(d), bytes })
            .collect();
        prop_assume!(!hops.is_empty());
        let r = schedule_hops(&map, &xfer, &hops);

        let times: Vec<f64> = hops
            .iter()
            .map(|h| map.route(h.src, h.dst).transfer_ns(h.bytes as f64))
            .collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let sum: f64 = times.iter().sum();
        prop_assert!(r.latency_ns >= max - 1e-9, "makespan below longest hop");
        prop_assert!(r.latency_ns <= sum + 1e-6, "makespan above full serialization");
        prop_assert!(r.slots >= 1 && r.slots as usize <= hops.len());
        prop_assert!(r.energy_pj > 0.0);
        prop_assert_eq!(r.bytes, hops.len() as f64 * bytes as f64);
    }

    #[test]
    fn ring_step_respects_group_serialization_floor(
        banks in 2u32..32,
        bytes in 256u64..4096,
    ) {
        let (map, xfer) = setup(true);
        let ids: Vec<BankId> = (0..banks).map(BankId).collect();
        let hops = ring_step_hops(&ids, bytes);
        let r = schedule_hops(&map, &xfer, &hops);
        // At least ceil over groups: each group's intra hops share a link.
        let g = small_geometry();
        let intra_per_group = (g.banks_per_group - 1).min(banks.saturating_sub(1));
        prop_assert!(
            r.slots >= intra_per_group.max(1),
            "{banks} banks: {} slots below group floor {}",
            r.slots,
            intra_per_group
        );
    }

    #[test]
    fn routes_are_well_formed(src in 0u32..32, dst in 0u32..32) {
        let (map, _) = setup(true);
        prop_assume!(src != dst);
        let r = map.route(BankId(src), BankId(dst));
        prop_assert!(r.resources.len() >= 2, "route must include both banks");
        prop_assert!(r.bandwidth_gbs > 0.0 && r.bandwidth_gbs.is_finite());
        prop_assert!(r.resources.contains(&map.bank(BankId(src))));
        prop_assert!(r.resources.contains(&map.bank(BankId(dst))));
        // Symmetry of bottleneck bandwidth (paths are undirected here).
        let back = map.route(BankId(dst), BankId(src));
        prop_assert!((r.bandwidth_gbs - back.bandwidth_gbs).abs() < 1e-12);
    }

    #[test]
    fn unbuffered_never_beats_buffered(
        // Rings smaller than a bank group gain nothing from the dedicated
        // neighbor links (the shared bus is wider than one link), so the
        // property holds from one full group upward.
        banks in 8u32..32,
        bytes in 256u64..4096,
    ) {
        let (map_b, xfer_b) = setup(true);
        let (map_n, xfer_n) = setup(false);
        let ids: Vec<BankId> = (0..banks).map(BankId).collect();
        let hops = ring_step_hops(&ids, bytes);
        let b = schedule_hops(&map_b, &xfer_b, &hops);
        let n = schedule_hops(&map_n, &xfer_n, &hops);
        prop_assert!(
            b.latency_ns <= n.latency_ns + 1e-9,
            "buffered {} worse than unbuffered {}",
            b.latency_ns,
            n.latency_ns
        );
    }
}

#[test]
fn empty_hop_set_is_free() {
    let (map, xfer) = setup(true);
    let r = schedule_hops(&map, &xfer, &[]);
    assert_eq!(r.latency_ns, 0.0);
    assert_eq!(r.slots, 0);
}
