//! Ring-broadcast edge cases under link degradation (Figure 9's fallback
//! from the dedicated neighbor link, 3T, to the shared channel bus, 8T):
//! tiny rings, odd bank counts, and pricing consistency between the
//! loop-compressed and unrolled forms of a degraded schedule.

use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim::fault::{EccScheme, Fault, FaultScenario, FaultSession, SystemInfo};
use transpim_dataflow::ir::{BankRange, Program, RepeatCompressor, Step};
use transpim_hbm::stats::SimStats;

fn session(arch: &ArchConfig, faults: Vec<Fault>, ecc: EccScheme) -> FaultSession {
    let g = &arch.hbm.geometry;
    let info = SystemInfo {
        total_banks: g.total_banks(),
        total_groups: g.total_groups(),
        subarrays_per_bank: g.subarrays_per_bank,
    };
    let scenario = FaultScenario { seed: 20220402, ecc, faults };
    FaultSession::new(&scenario, info).expect("valid scenario")
}

fn ring_program(banks: u32, repeat: u64) -> Program {
    let mut p = Program::new();
    p.push(Step::RingBroadcast {
        banks: BankRange::new(0, banks),
        bytes_per_hop: 4096,
        repeat,
        parallel: 1,
    });
    p
}

/// Price `program` on a fresh TransPIM executor under `faults`.
fn price_degraded(program: &Program, faults: Vec<Fault>) -> SimStats {
    let arch = ArchConfig::new(ArchKind::TransPim);
    let mut sess = session(&arch, faults, EccScheme::None);
    let mut exec = Executor::new(arch);
    exec.apply_ring_faults(&sess);
    let (stats, _) = exec.run_degraded(program, &mut sess).expect("correctable");
    stats
}

#[test]
fn dead_link_costs_more_than_healthy_for_every_ring_size() {
    // 2-bank ring (the smallest that moves anything) through odd counts:
    // killing the link under the ring must cost latency, and pricing must
    // be deterministic run to run.
    for banks in [2u32, 3, 5, 7, 8] {
        let p = ring_program(banks, 4);
        let healthy = price_degraded(&p, vec![]);
        let dead = price_degraded(&p, vec![Fault::DeadLink { group: 0 }]);
        assert!(
            dead.latency_ns > healthy.latency_ns,
            "{banks} banks: dead link did not slow the ring \
             ({} vs {} ns)",
            dead.latency_ns,
            healthy.latency_ns
        );
        let again = price_degraded(&p, vec![Fault::DeadLink { group: 0 }]);
        assert_eq!(dead, again, "{banks} banks: degraded pricing not deterministic");
    }
}

#[test]
fn degradation_is_monotone_in_severity() {
    // Healthy link < degraded link < slower degraded link <= dead link:
    // the fallback ladder must price in severity order, and a dead link is
    // bounded by the 8T shared-bus path, not unboundedly worse.
    let p = ring_program(8, 4);
    let healthy = price_degraded(&p, vec![]).latency_ns;
    let half = price_degraded(&p, vec![Fault::DegradedLink { group: 0, factor: 0.5 }]).latency_ns;
    let tenth = price_degraded(&p, vec![Fault::DegradedLink { group: 0, factor: 0.1 }]).latency_ns;
    let dead = price_degraded(&p, vec![Fault::DeadLink { group: 0 }]).latency_ns;
    assert!(healthy < half, "50% link must cost more than healthy");
    assert!(half < tenth, "10% link must cost more than 50%");
    assert!(healthy < dead, "dead link must cost more than healthy");
    // The 8T fallback is a fixed detour: it beats a sufficiently starved
    // dedicated link (factor chosen so the ring link is the bottleneck).
    let starved =
        price_degraded(&p, vec![Fault::DegradedLink { group: 0, factor: 0.001 }]).latency_ns;
    assert!(dead < starved, "8T fallback must beat a 0.1% dedicated link");
}

#[test]
fn dead_supersedes_degraded_on_the_same_link() {
    let p = ring_program(4, 2);
    let dead = price_degraded(&p, vec![Fault::DeadLink { group: 0 }]);
    let both = price_degraded(
        &p,
        vec![
            Fault::DegradedLink { group: 0, factor: 0.5 },
            Fault::DeadLink { group: 0 },
            Fault::DegradedLink { group: 0, factor: 0.25 },
        ],
    );
    assert_eq!(dead, both, "degradations on a dead link must be ignored");
}

#[test]
fn compressed_and_unrolled_degraded_schedules_price_identically() {
    // A fault session disables the repeat replay fast path, so the
    // loop-compressed program must walk every iteration live — and land on
    // exactly the unrolled pricing, flips included (the flip stream is a
    // function of the lump sequence, which is identical).
    let ring = Step::RingBroadcast {
        banks: BankRange::new(0, 6),
        bytes_per_hop: 2048,
        repeat: 2,
        parallel: 1,
    };
    let mut comp = RepeatCompressor::new();
    let mut compressed = Program::new();
    comp.push_block_times(&mut compressed, &mut vec![ring], 9);
    comp.flush(&mut compressed);
    assert!(compressed.len() < 9, "compressor must fold the identical blocks");
    let unrolled = compressed.unroll();

    let faults = || vec![Fault::DeadLink { group: 0 }, Fault::TransientFlips { per_gib: 256.0 }];
    let arch = ArchConfig::new(ArchKind::TransPim);
    let run = |program: &Program| {
        let mut sess = session(&arch, faults(), EccScheme::Secded);
        let mut exec = Executor::new(arch.clone());
        exec.apply_ring_faults(&sess);
        let (stats, scoped) = exec.run_degraded(program, &mut sess).expect("correctable");
        (stats, scoped, sess.stats())
    };
    let c = run(&compressed);
    let u = run(&unrolled);
    assert_eq!(c.0, u.0, "stats diverged between compressed and unrolled");
    assert_eq!(c.1, u.1, "scoped stats diverged");
    assert_eq!(c.2, u.2, "fault accounting diverged");
}

#[test]
fn exhausted_hardware_surfaces_as_a_typed_error_not_a_panic() {
    use transpim::accelerator::Accelerator;
    use transpim::report::DataflowKind;
    use transpim::SimError;
    use transpim_transformer::workload::Workload;

    let mut w = Workload::imdb();
    w.model.encoder_layers = 1;
    let arch = ArchConfig::new(ArchKind::TransPim);
    let total = arch.hbm.geometry.total_banks();
    let acc = Accelerator::new(arch);
    let mut s = FaultScenario::empty(1);
    s.faults = (0..total).map(|bank| Fault::FailedBank { bank }).collect();
    let err = acc.simulate_degraded(&w, DataflowKind::Token, &s).expect_err("no pool left");
    assert!(matches!(err, SimError::Uncorrectable { .. }), "{err}");
    assert!(err.to_string().contains("no pool left"), "{err}");
}
