//! Serialization round-trips for every public data-structure type: configs,
//! workloads, programs, and reports must survive JSON (the CLI's
//! `--json`/`--dump-ir`/`file:` interfaces depend on it).

use proptest::prelude::*;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim::Accelerator;
use transpim_bench::fuzz::{affine_step, arch_for, delta_for, small_workload, AFFINE_STEP_KINDS};
use transpim_dataflow::ir::{Program, Step, StepDelta};
use transpim_dataflow::token_flow;
use transpim_hbm::config::HbmConfig;
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn hbm_config_roundtrips() {
    let cfg = HbmConfig::builder().stacks(4).build();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn arch_config_roundtrips_all_kinds() {
    for kind in ArchKind::ALL {
        let a = ArchConfig::new(kind).with_acu(8, 2).with_stacks(2);
        assert_eq!(roundtrip(&a), a);
    }
}

#[test]
fn workloads_and_models_roundtrip() {
    for w in Workload::paper_suite() {
        assert_eq!(roundtrip(&w), w);
    }
    for m in ModelConfig::zoo() {
        assert_eq!(roundtrip(&m), m);
    }
}

#[test]
fn compiled_programs_roundtrip() {
    let mut w = Workload::imdb();
    w.model.encoder_layers = 1;
    let prog = token_flow::compile(&w, 256);
    let back = roundtrip(&prog);
    assert_eq!(back, prog);
    assert_eq!(back.len(), prog.len());
    assert_eq!(back.host_bytes(), prog.host_bytes());
}

#[test]
fn reports_roundtrip_with_scoped_stats() {
    let mut w = Workload::imdb();
    w.model.encoder_layers = 1;
    let r = Accelerator::new(ArchConfig::new(ArchKind::TransPim)).simulate(&w, DataflowKind::Token);
    let back = roundtrip(&r);
    // Floats may lose an ulp through JSON text; compare semantically.
    assert_eq!(back.system, r.system);
    assert_eq!(back.total_ops, r.total_ops);
    assert!((back.stats.latency_ns - r.stats.latency_ns).abs() < 1e-6 * r.stats.latency_ns);
    let (a, b) = (back.scoped.get("enc.fc").unwrap(), r.scoped.get("enc.fc").unwrap());
    assert!((a.latency_ns - b.latency_ns).abs() < 1e-6 * b.latency_ns);
    assert!((a.total_energy_pj() - b.total_energy_pj()).abs() < 1e-6 * b.total_energy_pj());
}

/// A step spec tuple for the property below: (kind, size, size, structural,
/// structural, delta).
type SpecTuple = (u8, u64, u64, u32, u32, u64);

fn spec_strategy() -> impl Strategy<Value = SpecTuple> {
    (0u8..AFFINE_STEP_KINDS, any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>(), any::<u64>())
}

fn steps_with_deltas(specs: &[SpecTuple]) -> (Vec<Step>, Vec<StepDelta>) {
    let mut body = Vec::new();
    let mut delta = Vec::new();
    for &(kind, s0, s1, w0, w1, d0) in specs {
        let step = affine_step(kind, [s0, s1, s0 ^ s1], [w0, w1]);
        delta.push(delta_for(&step, [d0, d0 / 3, d0 / 7]));
        body.push(step);
    }
    (body, delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random programs — flat steps, a `Step::Repeat`, and a *nested*
    /// repeat — survive JSON byte-for-byte, keep their push-time totals,
    /// and keep the documented `{"steps":[...]}` wire shape.
    #[test]
    fn random_programs_roundtrip_and_keep_wire_shape(
        flat in proptest::collection::vec(spec_strategy(), 0..6),
        rep_body in proptest::collection::vec(spec_strategy(), 1..4),
        inner_body in proptest::collection::vec(spec_strategy(), 1..3),
        rep_count in 1u64..20,
        inner_count in 1u64..20,
    ) {
        let mut prog = Program::new();
        for s in steps_with_deltas(&flat).0 {
            prog.push(s);
        }
        let (body, delta) = steps_with_deltas(&rep_body);
        prog.push(Step::repeat(rep_count, body, delta));
        // Nested: an outer repeat whose body contains an inner repeat (the
        // outer delta for a Repeat element is the empty shape).
        let (inner, inner_delta) = steps_with_deltas(&inner_body);
        let nested = Step::repeat(inner_count, inner, inner_delta);
        prog.push(Step::repeat(rep_count, vec![nested], vec![StepDelta::none()]));

        let json = serde_json::to_string(&prog).expect("serialize");
        let back: Program = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &prog);
        // Deserialization recomputes the push-time totals; they must match
        // the originals (which the repeat closed forms produced).
        prop_assert_eq!(back.host_bytes(), prog.host_bytes());
        prop_assert_eq!(back.internal_movement_bytes(), prog.internal_movement_bytes());
        prop_assert_eq!(back.total_mul_elems(), prog.total_mul_elems());
        prop_assert_eq!(back.unrolled_len(), prog.unrolled_len());

        // Wire shape: a single-key object {"steps": [...]} with one entry
        // per top-level step — the contract `--dump-ir` consumers parse.
        let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
        let obj = value.as_object().expect("program must serialize as an object");
        prop_assert_eq!(obj.len(), 1, "unexpected extra top-level keys");
        let steps = obj.get("steps").expect("steps key").as_array().expect("steps array");
        prop_assert_eq!(steps.len(), prog.len());
    }

    /// Random simulation reports survive JSON: the serialized text is a
    /// fixed point (parse → re-serialize is identical), so report files
    /// are stable artifacts.
    #[test]
    fn random_reports_roundtrip(
        arch in 0u8..4,
        enc in 1usize..3,
        dec in 0usize..2,
        heads in 1usize..3,
        dh in 1usize..4,
        seq in 1usize..8,
        decode in 0usize..4,
        dataflow_token in any::<bool>(),
    ) {
        let w = small_workload(enc, dec, heads, dh, 2 * heads * dh, seq, decode, 1);
        let df = if dataflow_token { DataflowKind::Token } else { DataflowKind::Layer };
        let r = Accelerator::new(arch_for(arch)).simulate(&w, df);

        let json = serde_json::to_string(&r).expect("serialize");
        let back: transpim::report::SimReport = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back.system, &r.system);
        prop_assert_eq!(back.total_ops, r.total_ops);
        let json2 = serde_json::to_string(&back).expect("re-serialize");
        prop_assert_eq!(json, json2, "report JSON must be a serialization fixed point");
    }
}

#[test]
fn workload_file_format_is_stable() {
    // The exact JSON shape the CLI's `file:` loader documents.
    let json = r#"{
        "name": "custom",
        "model": {
            "name": "bert-base", "encoder_layers": 12, "decoder_layers": 0,
            "d_model": 768, "heads": 12, "d_ff": 3072, "cross_attention": false
        },
        "seq_len": 256, "decode_len": 0, "batch": 2
    }"#;
    let w: Workload = serde_json::from_str(json).expect("documented format parses");
    assert_eq!(w.seq_len, 256);
    assert_eq!(w.model.heads, 12);
}
