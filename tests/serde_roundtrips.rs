//! Serialization round-trips for every public data-structure type: configs,
//! workloads, programs, and reports must survive JSON (the CLI's
//! `--json`/`--dump-ir`/`file:` interfaces depend on it).

use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim::Accelerator;
use transpim_dataflow::token_flow;
use transpim_hbm::config::HbmConfig;
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn hbm_config_roundtrips() {
    let cfg = HbmConfig::builder().stacks(4).build();
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn arch_config_roundtrips_all_kinds() {
    for kind in ArchKind::ALL {
        let a = ArchConfig::new(kind).with_acu(8, 2).with_stacks(2);
        assert_eq!(roundtrip(&a), a);
    }
}

#[test]
fn workloads_and_models_roundtrip() {
    for w in Workload::paper_suite() {
        assert_eq!(roundtrip(&w), w);
    }
    for m in ModelConfig::zoo() {
        assert_eq!(roundtrip(&m), m);
    }
}

#[test]
fn compiled_programs_roundtrip() {
    let mut w = Workload::imdb();
    w.model.encoder_layers = 1;
    let prog = token_flow::compile(&w, 256);
    let back = roundtrip(&prog);
    assert_eq!(back, prog);
    assert_eq!(back.len(), prog.len());
    assert_eq!(back.host_bytes(), prog.host_bytes());
}

#[test]
fn reports_roundtrip_with_scoped_stats() {
    let mut w = Workload::imdb();
    w.model.encoder_layers = 1;
    let r = Accelerator::new(ArchConfig::new(ArchKind::TransPim)).simulate(&w, DataflowKind::Token);
    let back = roundtrip(&r);
    // Floats may lose an ulp through JSON text; compare semantically.
    assert_eq!(back.system, r.system);
    assert_eq!(back.total_ops, r.total_ops);
    assert!((back.stats.latency_ns - r.stats.latency_ns).abs() < 1e-6 * r.stats.latency_ns);
    let (a, b) = (back.scoped.get("enc.fc").unwrap(), r.scoped.get("enc.fc").unwrap());
    assert!((a.latency_ns - b.latency_ns).abs() < 1e-6 * b.latency_ns);
    assert!((a.total_energy_pj() - b.total_energy_pj()).abs() < 1e-6 * b.total_energy_pj());
}

#[test]
fn workload_file_format_is_stable() {
    // The exact JSON shape the CLI's `file:` loader documents.
    let json = r#"{
        "name": "custom",
        "model": {
            "name": "bert-base", "encoder_layers": 12, "decoder_layers": 0,
            "d_model": 768, "heads": 12, "d_ff": 3072, "cross_attention": false
        },
        "seq_len": 256, "decode_len": 0, "batch": 2
    }"#;
    let w: Workload = serde_json::from_str(json).expect("documented format parses");
    assert_eq!(w.seq_len, 256);
    assert_eq!(w.model.heads, 12);
}
