//! Loop compression is an encoding, not a semantics change: a program
//! carrying `Step::Repeat` must be observationally indistinguishable from
//! its unrolled expansion. These tests pin that contract end-to-end for
//! every default workload — bit-for-bit statistics, report documents,
//! metrics documents, and trace documents — and re-pin the job-pool
//! determinism of `run_grid` now that the cells it prices are compressed.

use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim::report::{DataflowKind, SimReport};
use transpim::Accelerator;
use transpim_bench::{run_grid, GridCell};
use transpim_hbm::stats::{ScopedStats, SimStats};
use transpim_obs::{ChromeTraceSink, FanoutSink, MetricsSink, SinkHandle};
use transpim_transformer::workload::Workload;

/// Price a program with full observability attached; return the priced
/// statistics plus the rendered metrics and trace documents.
fn observe(
    arch: &ArchConfig,
    prog: &transpim_dataflow::ir::Program,
) -> (SimStats, ScopedStats, String, String, String) {
    let chrome = ChromeTraceSink::shared();
    let metrics = MetricsSink::shared();
    let sink = SinkHandle::new(FanoutSink::new(vec![
        SinkHandle::from_shared(chrome.clone()),
        SinkHandle::from_shared(metrics.clone()),
    ]));
    let (stats, scoped) = Executor::new(arch.clone()).run_with_sink(prog, sink);
    let trace = chrome.borrow().to_json_string().expect("serialize trace");
    let metrics = metrics.borrow();
    (
        stats,
        scoped,
        trace,
        metrics.to_json_string().expect("serialize metrics"),
        metrics.to_csv_string(),
    )
}

#[test]
fn compressed_and_unrolled_documents_are_byte_identical() {
    for w in Workload::paper_suite() {
        for df in DataflowKind::ALL {
            let arch = ArchConfig::new(ArchKind::TransPim);
            let acc = Accelerator::new(arch.clone());
            let prog = acc.compile(&w, df);
            let unrolled = prog.unroll();
            assert_eq!(prog.unrolled_len(), unrolled.len() as u64, "{df} {}", w.name);

            let (s_c, sc_c, trace_c, mjson_c, mcsv_c) = observe(&arch, &prog);
            let (s_u, sc_u, trace_u, mjson_u, mcsv_u) = observe(&arch, &unrolled);
            assert_eq!(s_c, s_u, "{df} {}: stats diverged", w.name);
            assert_eq!(sc_c, sc_u, "{df} {}: scoped stats diverged", w.name);
            assert_eq!(mjson_c, mjson_u, "{df} {}: metrics JSON diverged", w.name);
            assert_eq!(mcsv_c, mcsv_u, "{df} {}: metrics CSV diverged", w.name);
            assert_eq!(trace_c, trace_u, "{df} {}: trace diverged", w.name);

            // Report documents: the public API prices the compressed
            // program; a report rebuilt around the unrolled pricing must
            // serialize to the same bytes.
            let report_c = acc.simulate(&w, df);
            let report_u = SimReport { stats: s_u, scoped: sc_u, ..report_c.clone() };
            assert_eq!(
                report_c.to_json().expect("serialize report"),
                report_u.to_json().expect("serialize report"),
                "{df} {}: report diverged",
                w.name
            );
        }
    }
}

#[test]
fn suite_grid_is_deterministic_across_job_counts() {
    // The compressed decode loops must not perturb the job pool's
    // determinism contract: jobs=1 and jobs=8 render identical report and
    // metrics documents for the full default suite.
    let grid = || {
        let mut cells = Vec::new();
        for w in Workload::paper_suite() {
            for df in DataflowKind::ALL {
                cells.push(GridCell::custom(ArchConfig::new(ArchKind::TransPim), df, &w));
            }
        }
        cells
    };
    let render = |jobs: usize| {
        let mut merged = MetricsSink::new();
        let mut doc = String::new();
        for output in run_grid(jobs, false, true, grid()) {
            doc.push_str(&output.report.to_json().expect("serialize report"));
            doc.push('\n');
            merged.merge(output.metrics.expect("metrics requested"));
        }
        doc.push_str(&merged.to_json_string().expect("serialize metrics"));
        doc
    };
    let serial = render(1);
    assert_eq!(serial, render(8), "jobs=8 diverged from jobs=1");
}

#[test]
fn gpt_decode_step_count_is_flat_in_decode_len() {
    // The acceptance bar for the compressed IR: the GPT decode program's
    // step count is O(layers), not O(decode_len × layers).
    let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
    let mut w = Workload::lm();
    let mut lens = Vec::new();
    for decode in [256usize, 1024, 4096] {
        w.decode_len = decode;
        let prog = acc.compile(&w, DataflowKind::Token);
        // The compiled length is dominated by the (uncompressed) prefill,
        // so the ratio floor grows with the decode length: ≥100× at 256
        // tokens, ≥1000× at 4096.
        let floor = if decode >= 4096 { 1000 } else { 100 };
        assert!(
            (prog.len() as u64) * floor < prog.unrolled_len(),
            "decode={decode}: expected ≥{floor}× step compression, got {} vs {}",
            prog.len(),
            prog.unrolled_len()
        );
        lens.push(prog.len());
    }
    let spread = lens.iter().max().unwrap() - lens.iter().min().unwrap();
    assert!(spread <= 8, "step count should not scale with decode_len: {lens:?}");
}
