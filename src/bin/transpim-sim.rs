//! `transpim-sim` — command-line driver for the TransPIM simulator.
//!
//! ```bash
//! # One system on one workload
//! cargo run --release --bin transpim-sim -- --workload pubmed --arch transpim --dataflow token
//!
//! # All eight memory-based systems
//! cargo run --release --bin transpim-sim -- --workload imdb --all
//!
//! # Custom shapes, JSON report, Chrome trace
//! cargo run --release --bin transpim-sim -- --workload pegasus:8192 --stacks 4 \
//!     --p-sub 32 --json report.json --trace trace.json
//! ```

use std::process::ExitCode;
use transpim::accelerator::Accelerator;
use transpim::{ChromeTraceSink, FanoutSink, MetricsSink, SinkHandle};
use transpim_bench::{run_grid, GridCell};

/// Capacity warning helper (token dataflow per-bank working set).
mod transpim_repro_capacity {
    use transpim::arch::ArchConfig;
    use transpim_dataflow::footprint::token_flow_footprint;
    use transpim_dataflow::ir::Precision;
    use transpim_dataflow::sharding::Sharding;
    use transpim_transformer::workload::Workload;

    pub fn check(w: &Workload, arch: &ArchConfig) {
        let banks = arch.hbm.geometry.total_banks();
        let sharding = Sharding::new(banks, w.batch as u32, w.seq_len as u32);
        let per_seq = u64::from(sharding.sequences[0].banks.count);
        let f = token_flow_footprint(
            &w.model,
            w.seq_len as u64,
            w.decode_len as u64,
            per_seq,
            Precision::default(),
        );
        let bank = arch.hbm.geometry.bank_bytes();
        if !f.fits(bank) {
            eprintln!(
                "warning: per-bank working set {:.1} MiB exceeds the {:.0} MiB bank                  (weights {:.1} + scores {:.1} MiB); results model an infeasible mapping —                  add stacks or shorten the sequence",
                f.total() as f64 / (1 << 20) as f64,
                bank as f64 / (1 << 20) as f64,
                f.weights as f64 / (1 << 20) as f64,
                f.scores as f64 / (1 << 20) as f64,
            );
        }
    }
}
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim_transformer::workload::Workload;

#[derive(Debug)]
struct Options {
    workload: Workload,
    arch: ArchKind,
    dataflow: DataflowKind,
    stacks: u32,
    p_sub: u32,
    p_add: u32,
    all: bool,
    jobs: usize,
    json: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    dump_ir: Option<String>,
    faults: Option<String>,
}

const USAGE: &str = "\
transpim-sim — simulate Transformer inference on TransPIM and its baselines

USAGE:
  transpim-sim [OPTIONS]

OPTIONS:
  --workload <NAME>    imdb | triviaqa | pubmed | arxiv | lm |
                       roberta:<L> | pegasus:<L> | file:<PATH.json>
                                                          [default: imdb]
  --model <NAME>       override the model preset (roberta-base, bert-base,
                       bert-large, pegasus-base, pegasus-large, gpt2-small,
                       gpt2-medium, gpt2-large)
  --arch <ARCH>        transpim | transpim-nb | pim | nbp [default: transpim]
  --dataflow <FLOW>    token | layer                      [default: token]
  --stacks <N>         HBM stacks (1..)                   [default: 8]
  --p-sub <N>          ACUs per bank                      [default: 16]
  --p-add <N>          adder trees per ACU                [default: 4]
  --batch <N>          override batch size
  --seq-len <N>        override sequence length
  --decode <N>         override generated-token count
  --all                run all 8 dataflow×architecture systems
  --jobs <N>           worker threads for --all (default: TRANSPIM_THREADS
                       or the machine's available parallelism)
  --json <PATH>        write the report(s) as JSON
  --trace <PATH>       write a Chrome-tracing timeline (open in
                       chrome://tracing or https://ui.perfetto.dev); with
                       --all, one file per system: PATH gains a
                       .<system> suffix before its extension
  --metrics <PATH>     write flat aggregated metrics (JSON, or CSV when
                       PATH ends in .csv); with --all, one suffixed file
                       per system
  --dump-ir <PATH>     write the compiled dataflow program as JSON
  --faults <PATH>      inject a fault scenario (JSON form of FaultScenario:
                       failed banks, stuck bit-planes, dead/degraded ring
                       links, transient flips, broken dividers) and run in
                       graceful-degradation mode; incompatible with --all
  --help               show this help
";

fn parse_workload(s: &str) -> Result<Workload, String> {
    if let Some(l) = s.strip_prefix("roberta:") {
        let l: usize = l.parse().map_err(|_| format!("bad length in '{s}'"))?;
        return Ok(Workload::synthetic_roberta(l));
    }
    if let Some(l) = s.strip_prefix("pegasus:") {
        let l: usize = l.parse().map_err(|_| format!("bad length in '{s}'"))?;
        return Ok(Workload::synthetic_pegasus(l));
    }
    if let Some(path) = s.strip_prefix("file:") {
        // Custom workload as JSON (the serde form of `Workload`).
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading workload file {path}: {e}"))?;
        return serde_json::from_str(&text)
            .map_err(|e| format!("parsing workload file {path}: {e}"));
    }
    match s {
        "imdb" => Ok(Workload::imdb()),
        "triviaqa" => Ok(Workload::triviaqa()),
        "pubmed" => Ok(Workload::pubmed()),
        "arxiv" => Ok(Workload::arxiv()),
        "lm" => Ok(Workload::lm()),
        _ => Err(format!("unknown workload '{s}'")),
    }
}

fn parse_arch(s: &str) -> Result<ArchKind, String> {
    match s {
        "transpim" => Ok(ArchKind::TransPim),
        "transpim-nb" | "nb" => Ok(ArchKind::TransPimNb),
        "pim" | "original-pim" => Ok(ArchKind::OriginalPim),
        "nbp" => Ok(ArchKind::Nbp),
        _ => Err(format!("unknown architecture '{s}'")),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        workload: Workload::imdb(),
        arch: ArchKind::TransPim,
        dataflow: DataflowKind::Token,
        stacks: 8,
        p_sub: 16,
        p_add: 4,
        all: false,
        jobs: transpim_par::max_threads(),
        json: None,
        trace: None,
        metrics: None,
        dump_ir: None,
        faults: None,
    };
    let mut batch = None;
    let mut seq_len = None;
    let mut decode = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--workload" => o.workload = parse_workload(&value("--workload")?)?,
            "--model" => {
                let name = value("--model")?;
                o.workload.model = transpim_transformer::model::ModelConfig::by_name(&name)
                    .ok_or_else(|| format!("unknown model '{name}'"))?;
            }
            "--arch" => o.arch = parse_arch(&value("--arch")?)?,
            "--dataflow" => {
                o.dataflow = match value("--dataflow")?.as_str() {
                    "token" => DataflowKind::Token,
                    "layer" => DataflowKind::Layer,
                    other => return Err(format!("unknown dataflow '{other}'")),
                }
            }
            "--stacks" => {
                o.stacks = value("--stacks")?.parse().map_err(|e| format!("--stacks: {e}"))?
            }
            "--p-sub" => {
                o.p_sub = value("--p-sub")?.parse().map_err(|e| format!("--p-sub: {e}"))?
            }
            "--p-add" => {
                o.p_add = value("--p-add")?.parse().map_err(|e| format!("--p-add: {e}"))?
            }
            "--batch" => {
                batch = Some(value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?)
            }
            "--seq-len" => {
                seq_len = Some(value("--seq-len")?.parse().map_err(|e| format!("--seq-len: {e}"))?)
            }
            "--decode" => {
                decode = Some(value("--decode")?.parse().map_err(|e| format!("--decode: {e}"))?)
            }
            "--all" => o.all = true,
            "--jobs" => {
                o.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if o.jobs == 0 {
                    return Err("--jobs must be positive".into());
                }
            }
            "--json" => o.json = Some(value("--json")?),
            "--trace" => o.trace = Some(value("--trace")?),
            "--metrics" => o.metrics = Some(value("--metrics")?),
            "--dump-ir" => o.dump_ir = Some(value("--dump-ir")?),
            "--faults" => o.faults = Some(value("--faults")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if let Some(b) = batch {
        o.workload.batch = b;
    }
    if let Some(l) = seq_len {
        o.workload.seq_len = l;
    }
    if let Some(d) = decode {
        o.workload.decode_len = d;
    }
    if o.workload.batch == 0 || o.workload.seq_len == 0 {
        return Err("batch and seq-len must be positive".into());
    }
    if o.stacks == 0 {
        return Err("--stacks must be positive".into());
    }
    if o.faults.is_some() && o.all {
        return Err("--faults runs one system at a time; drop --all".into());
    }
    Ok(o)
}

/// `trace.json` + `Token-TransPIM-NB` → `trace.token-transpim-nb.json`:
/// per-system output paths for `--all` runs.
fn suffixed(path: &str, system: &str) -> String {
    let slug: String = system
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect();
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => {
            format!("{stem}.{slug}.{ext}")
        }
        _ => format!("{path}.{slug}"),
    }
}

/// Headline report figures alongside the per-span aggregates.
fn push_headline_metrics(m: &mut MetricsSink, report: &transpim::report::SimReport) {
    m.push_metric("report.latency_ms", report.latency_ms());
    m.push_metric("report.energy_mj", report.stats.total_energy_pj() * 1e-9);
    m.push_metric("report.bytes_moved", report.stats.bytes_moved);
    m.push_metric("report.utilization", report.utilization());
    if let Some(f) = &report.faults {
        m.push_metric("fault.injected", f.injected as f64);
        m.push_metric("fault.detected", f.detected as f64);
        m.push_metric("fault.corrected", f.corrected as f64);
        m.push_metric("fault.overhead_latency_ns", f.overhead_latency_ns);
        m.push_metric("fault.overhead_energy_pj", f.overhead_energy_pj);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };

    let make_arch = |kind: ArchKind| {
        ArchConfig::new(kind).with_stacks(opts.stacks).with_acu(opts.p_sub, opts.p_add)
    };

    if opts.all {
        let mut cells = Vec::new();
        for kind in ArchKind::ALL {
            for df in DataflowKind::ALL {
                cells.push(GridCell::custom(make_arch(kind), df, &opts.workload));
            }
        }
        let outputs = run_grid(opts.jobs, opts.trace.is_some(), opts.metrics.is_some(), cells);
        let mut reports = Vec::new();
        for output in outputs {
            let report = output.report;
            println!("{}", report.summary());
            if let (Some(path), Some(trace)) = (&opts.trace, output.trace) {
                let path = suffixed(path, &report.system);
                if let Err(e) = trace.write_to(&path) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::from(1);
                }
                eprintln!("[trace written to {path} — open in chrome://tracing or Perfetto]");
            }
            if let (Some(path), Some(mut metrics)) = (&opts.metrics, output.metrics) {
                push_headline_metrics(&mut metrics, &report);
                let path = suffixed(path, &report.system);
                if let Err(e) = metrics.write_to(&path) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::from(1);
                }
                eprintln!("[metrics written to {path}]");
            }
            reports.push(report);
        }
        if let Some(path) = &opts.json {
            let json = match serde_json::to_string_pretty(&reports) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("error: serializing reports: {e}");
                    return ExitCode::from(1);
                }
            };
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::from(1);
            }
        }
        return ExitCode::SUCCESS;
    }

    // Load the fault scenario up front so a bad file is a one-line
    // diagnostic before any simulation work starts.
    let scenario = match &opts.faults {
        Some(path) => match transpim::fault::FaultScenario::from_json_file(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let acc = Accelerator::new(make_arch(opts.arch));

    // Optional IR dump: the compiled dataflow program, before pricing.
    if let Some(path) = &opts.dump_ir {
        let banks = acc.arch().hbm.geometry.total_banks();
        let prog = match opts.dataflow {
            DataflowKind::Token => transpim_dataflow::token_flow::compile(&opts.workload, banks),
            DataflowKind::Layer => transpim_dataflow::layer_flow::compile(&opts.workload, banks),
        };
        match serde_json::to_string_pretty(&prog) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::from(1);
                }
                eprintln!("[IR with {} steps written to {path}]", prog.len());
            }
            Err(e) => {
                eprintln!("error: serializing IR: {e}");
                return ExitCode::from(1);
            }
        }
    }

    // Capacity check: does the token dataflow's per-bank working set fit?
    {
        use transpim_repro_capacity::check;
        check(&opts.workload, acc.arch());
    }

    // Attach observability sinks only for the outputs that were asked for;
    // with neither --trace nor --metrics the run carries a null sink and
    // pays nothing for instrumentation.
    let chrome = opts.trace.as_ref().map(|_| ChromeTraceSink::shared());
    let metrics = opts.metrics.as_ref().map(|_| MetricsSink::shared());
    let mut handles: Vec<SinkHandle> = Vec::new();
    if let Some(c) = &chrome {
        handles.push(SinkHandle::from_shared(c.clone()));
    }
    if let Some(m) = &metrics {
        handles.push(SinkHandle::from_shared(m.clone()));
    }
    let sink = match handles.len() {
        0 => SinkHandle::null(),
        1 => handles.pop().expect("one handle"),
        _ => SinkHandle::new(FanoutSink::new(handles)),
    };

    let report = match &scenario {
        Some(s) => match acc.simulate_degraded_with_sink(&opts.workload, opts.dataflow, s, sink) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(1);
            }
        },
        None => acc.simulate_with_sink(&opts.workload, opts.dataflow, sink),
    };
    println!("{}", report.summary());
    if let Some(f) = &report.faults {
        println!();
        println!(
            "fault accounting: {} injected, {} detected, {} corrected, {} uncorrectable",
            f.injected, f.detected, f.corrected, f.uncorrectable
        );
        println!(
            "  degraded hardware: {} failed banks, {} stuck planes, {} dead links, \
             {} degraded links, {} broken dividers",
            f.failed_banks, f.stuck_planes, f.dead_links, f.degraded_links, f.broken_dividers
        );
        println!(
            "  degradation overhead: {:.3} ms, {:.3} mJ",
            f.overhead_latency_ns * 1e-6,
            f.overhead_energy_pj * 1e-9
        );
    }
    println!();
    println!("per-layer-kind breakdown:");
    for (scope, s) in report.scoped.iter() {
        println!(
            "  {:<14} {:>12.3} ms   {:>10.3} mJ",
            scope,
            s.latency_ns * 1e-6,
            s.total_energy_pj() * 1e-9
        );
    }
    if let Some(path) = &opts.json {
        match report.to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: writing {path}: {e}");
                    return ExitCode::from(1);
                }
            }
            Err(e) => {
                eprintln!("error: serializing report: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if let (Some(path), Some(chrome)) = (&opts.trace, &chrome) {
        if let Err(e) = chrome.borrow().write_to(path) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("[trace written to {path} — open in chrome://tracing or Perfetto]");
    }
    if let (Some(path), Some(metrics)) = (&opts.metrics, &metrics) {
        push_headline_metrics(&mut metrics.borrow_mut(), &report);
        if let Err(e) = metrics.borrow().write_to(path) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("[metrics written to {path}]");
    }
    ExitCode::SUCCESS
}
