//! Umbrella crate of the TransPIM (HPCA 2022) reproduction.
//!
//! Re-exports the workspace crates so the examples and integration tests
//! can reach everything through one dependency. Start with
//! [`transpim::Accelerator`] for simulation, or see the `examples/`
//! directory:
//!
//! * `quickstart` — simulate one workload on TransPIM and print a report,
//! * `text_classification` — the RoBERTa/IMDB study across systems,
//! * `summarization` — Pegasus/PubMed with the generative decoder,
//! * `long_sequence` — the 32 K-token scaling study.

pub use transpim;
pub use transpim_acu as acu;
pub use transpim_baselines as baselines;
pub use transpim_dataflow as dataflow;
pub use transpim_hbm as hbm;
pub use transpim_pim as pim;
pub use transpim_transformer as transformer;
