//! Minimal functional stand-in for rand 0.8: an LCG behind the same
//! trait surface the workspace uses (StdRng / SeedableRng / Rng::gen_range).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}
impl<T: RngCore + ?Sized> Rng for T {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    pub struct StdRng {
        state: u64,
    }
    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = self.state;
            (x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd)
        }
    }
    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state: state.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1) }
        }
    }
}
pub use rngs::StdRng;

pub mod prelude {
    pub use crate::{rngs::StdRng, Rng, RngCore, SeedableRng};
}
