//! Type-check-only stand-in for criterion 0.5.

pub struct Criterion;
pub struct BenchmarkGroup;
pub struct Bencher;
pub struct BenchmarkId;

impl Criterion {
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup {
        unimplemented!()
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, _f: F) -> &mut Self {
        unimplemented!()
    }
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        unimplemented!()
    }
    pub fn bench_function<I, F: FnMut(&mut Bencher)>(&mut self, _id: I, _f: F) -> &mut Self {
        unimplemented!()
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        _input: &I,
        _f: F,
    ) -> &mut Self {
        unimplemented!()
    }
    pub fn finish(self) {
        unimplemented!()
    }
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, _f: F) {
        unimplemented!()
    }
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(_function: S, _parameter: P) -> Self {
        unimplemented!()
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            $(let _: fn(&mut $crate::Criterion) = $target;)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
