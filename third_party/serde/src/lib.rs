//! Functional stand-in for serde, specialized to the JSON data model.
//!
//! The real serde is unreachable in the offline build environment (see the
//! workspace README, "Offline-build constraint"), so this crate provides
//! the subset the workspace actually uses: `Serialize`/`Deserialize`
//! traits, a derive macro (in `serde_derive`), and a self-describing value
//! tree ([`Plain`]) that `serde_json` renders to and parses from JSON
//! text. Unlike upstream serde there is no serializer abstraction — every
//! type converts to/from `Plain` directly, which is exactly what a
//! JSON-only workspace needs and nothing more.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// The self-describing data model: what any serializable value lowers to
/// and any deserializable value is rebuilt from. Maps preserve insertion
/// order (JSON objects are ordered in this workspace's outputs).
#[derive(Debug, Clone, PartialEq)]
pub enum Plain {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer beyond `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Plain>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Plain)>),
}

impl Plain {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Plain> {
        match self {
            Plain::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Plain)]> {
        match self {
            Plain::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Plain]> {
        match self {
            Plain::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Plain::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Plain::I64(v) => Some(v as f64),
            Plain::U64(v) => Some(v as f64),
            Plain::F64(v) => Some(v),
            _ => None,
        }
    }

    /// A short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Plain::Null => "null",
            Plain::Bool(_) => "bool",
            Plain::I64(_) | Plain::U64(_) | Plain::F64(_) => "number",
            Plain::Str(_) => "string",
            Plain::Seq(_) => "array",
            Plain::Map(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Error with a verbatim message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" mismatch error.
    pub fn expected(what: &str, found: &Plain) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing-field error.
    pub fn missing(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` of `{ty}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the data model.
pub trait Serialize {
    /// The `Plain` tree representing `self`.
    fn to_plain(&self) -> Plain;
}

/// Rebuild `Self` from the data model. The lifetime mirrors upstream
/// serde's signature; this implementation always copies.
pub trait Deserialize<'de>: Sized {
    /// Parse `Self` out of a `Plain` tree.
    fn from_plain(plain: &Plain) -> Result<Self, DeError>;
}

pub mod de {
    //! The owned-deserialization marker trait, as upstream.

    /// Deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_plain(&self) -> Plain {
        Plain::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        match *plain {
            Plain::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", plain)),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_plain(&self) -> Plain { Plain::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_plain(plain: &Plain) -> Result<Self, DeError> {
                let v: i64 = match *plain {
                    Plain::I64(v) => v,
                    Plain::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::new("unsigned value overflows signed target"))?,
                    Plain::F64(v) if v.fract() == 0.0 && v.abs() < 9.22e18 => v as i64,
                    _ => return Err(DeError::expected("integer", plain)),
                };
                <$t>::try_from(v).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_plain(&self) -> Plain {
                let v = *self as u64;
                if let Ok(i) = i64::try_from(v) { Plain::I64(i) } else { Plain::U64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_plain(plain: &Plain) -> Result<Self, DeError> {
                let v: u64 = match *plain {
                    Plain::I64(v) => u64::try_from(v)
                        .map_err(|_| DeError::new("negative value for unsigned target"))?,
                    Plain::U64(v) => v,
                    Plain::F64(v) if v.fract() == 0.0 && v >= 0.0 && v < 1.85e19 => v as u64,
                    _ => return Err(DeError::expected("integer", plain)),
                };
                <$t>::try_from(v).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_plain(&self) -> Plain {
        Plain::F64(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        plain.as_f64().ok_or_else(|| DeError::expected("number", plain))
    }
}

impl Serialize for f32 {
    fn to_plain(&self) -> Plain {
        Plain::F64(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        Ok(f64::from_plain(plain)? as f32)
    }
}

impl Serialize for char {
    fn to_plain(&self) -> Plain {
        Plain::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        let s = plain.as_str().ok_or_else(|| DeError::expected("single-char string", plain))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_plain(&self) -> Plain {
        Plain::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        plain.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", plain))
    }
}

impl Serialize for str {
    fn to_plain(&self) -> Plain {
        Plain::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_plain(&self) -> Plain {
        Plain::Null
    }
}
impl<'de> Deserialize<'de> for () {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        match plain {
            Plain::Null => Ok(()),
            _ => Err(DeError::expected("null", plain)),
        }
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_plain(&self) -> Plain {
        (**self).to_plain()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_plain(&self) -> Plain {
        (**self).to_plain()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        T::from_plain(plain).map(Box::new)
    }
}

impl<T: Serialize + ToOwned + ?Sized> Serialize for std::borrow::Cow<'_, T> {
    fn to_plain(&self) -> Plain {
        (**self).to_plain()
    }
}
impl<'de, 'a, T: ToOwned + ?Sized> Deserialize<'de> for std::borrow::Cow<'a, T>
where
    T::Owned: Deserialize<'de>,
{
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        T::Owned::from_plain(plain).map(std::borrow::Cow::Owned)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_plain(&self) -> Plain {
        match self {
            Some(v) => v.to_plain(),
            None => Plain::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        match plain {
            Plain::Null => Ok(None),
            other => T::from_plain(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_plain(&self) -> Plain {
        Plain::Seq(self.iter().map(Serialize::to_plain).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_plain(&self) -> Plain {
        self[..].to_plain()
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        let v = Vec::<T>::from_plain(plain)?;
        let got = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::new(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_plain(&self) -> Plain {
        self[..].to_plain()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        let seq = plain.as_seq().ok_or_else(|| DeError::expected("array", plain))?;
        seq.iter().map(T::from_plain).collect()
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_plain(&self) -> Plain {
                Plain::Seq(vec![$(self.$i.to_plain()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_plain(plain: &Plain) -> Result<Self, DeError> {
                let seq = plain.as_seq().ok_or_else(|| DeError::expected("array", plain))?;
                let expected = [$(stringify!($i)),+].len();
                if seq.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, got {} elements", seq.len()
                    )));
                }
                Ok(($($t::from_plain(&seq[$i])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types usable as JSON object keys.
pub trait MapKey: Sized {
    /// Render the key as the JSON object key string.
    fn to_key(&self) -> String;
    /// Parse the key back from the object key string.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! int_key_impls {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::new(format!("bad integer key `{key}`")))
            }
        }
    )*};
}
int_key_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_plain(&self) -> Plain {
        Plain::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_plain())).collect())
    }
}
impl<'de, K: MapKey + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        let m = plain.as_map().ok_or_else(|| DeError::expected("object", plain))?;
        m.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_plain(v)?))).collect()
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_plain(&self) -> Plain {
        // Deterministic output: hash maps serialize in sorted key order.
        let mut entries: Vec<(String, Plain)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_plain())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Plain::Map(entries)
    }
}
impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_plain(plain: &Plain) -> Result<Self, DeError> {
        let m = plain.as_map().ok_or_else(|| DeError::expected("object", plain))?;
        m.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_plain(v)?))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_widen_and_narrow() {
        assert_eq!(42u64.to_plain(), Plain::I64(42));
        assert_eq!(u64::MAX.to_plain(), Plain::U64(u64::MAX));
        assert_eq!(u32::from_plain(&Plain::I64(7)).unwrap(), 7);
        assert!(u32::from_plain(&Plain::I64(-1)).is_err());
        assert_eq!(f64::from_plain(&Plain::I64(3)).unwrap(), 3.0);
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<u8>.to_plain(), Plain::Null);
        assert_eq!(Option::<u8>::from_plain(&Plain::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_plain(&Plain::I64(3)).unwrap(), Some(3));
    }

    #[test]
    fn maps_keep_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        let p = m.to_plain();
        assert_eq!(p.get("a"), Some(&Plain::I64(1)));
        assert_eq!(BTreeMap::<String, u8>::from_plain(&p).unwrap(), m);
    }
}
