//! Functional stand-in for serde_json over the vendored serde's `Plain`
//! data model: a recursive-descent JSON parser, compact and 2-space-pretty
//! writers, and a `Value` tree mirroring the upstream API surface the
//! workspace uses. JSON only — no other formats, no zero-copy borrowing.

use serde::Plain;

// ---- error ----------------------------------------------------------------

#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- public entry points --------------------------------------------------

pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_plain(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_plain(), 0, &mut out);
    Ok(out)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    let plain = Parser::new(s).parse_document()?;
    Ok(T::from_plain(&plain)?)
}

// ---- writer ---------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest round-trip form; integral floats keep a ".0" so the
        // value parses back as a float, matching upstream serde_json.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // Upstream serde_json rejects non-finite numbers; our metrics never
        // produce them, but emit null rather than invalid JSON if one slips.
        out.push_str("null");
    }
}

fn write_compact(p: &Plain, out: &mut String) {
    match p {
        Plain::Null => out.push_str("null"),
        Plain::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Plain::I64(v) => out.push_str(&v.to_string()),
        Plain::U64(v) => out.push_str(&v.to_string()),
        Plain::F64(v) => write_f64(*v, out),
        Plain::Str(s) => write_escaped(s, out),
        Plain::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Plain::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(p: &Plain, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match p {
        Plain::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Plain::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(&mut self) -> Result<Plain> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Plain> {
        match self.peek()? {
            b'n' => self.keyword("null", Plain::Null),
            b't' => self.keyword("true", Plain::Bool(true)),
            b'f' => self.keyword("false", Plain::Bool(false)),
            b'"' => Ok(Plain::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Plain) -> Result<Plain> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are unused by the workspace's
                            // BMP-only output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                // Multi-byte UTF-8: copy raw continuation bytes.
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&c| c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
                b => out.push(b as char),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Plain> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Plain::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Plain::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Plain::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Plain> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Plain::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Plain::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Plain> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Plain::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Plain::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }
}

// ---- Value ----------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K, V>(std::collections::BTreeMap<K, V>);

impl Map<String, Value> {
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, String, Value> {
        self.0.iter()
    }
    pub fn len(&self) -> usize {
        self.0.len()
    }
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

pub trait ValueIndex {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_object().and_then(|m| m.get(self))
    }
}
impl ValueIndex for usize {
    fn index_into<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        value.as_array().and_then(|a| a.get(*self))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get(index).unwrap_or(&NULL_VALUE)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl serde::Serialize for Value {
    fn to_plain(&self) -> Plain {
        match self {
            Value::Null => Plain::Null,
            Value::Bool(b) => Plain::Bool(*b),
            Value::Number(n) => Plain::F64(*n),
            Value::String(s) => Plain::Str(s.clone()),
            Value::Array(items) => Plain::Seq(items.iter().map(|v| v.to_plain()).collect()),
            Value::Object(map) => {
                Plain::Map(map.iter().map(|(k, v)| (k.clone(), v.to_plain())).collect())
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn from_plain(plain: &Plain) -> std::result::Result<Self, serde::DeError> {
        Ok(match plain {
            Plain::Null => Value::Null,
            Plain::Bool(b) => Value::Bool(*b),
            Plain::I64(v) => Value::Number(*v as f64),
            Plain::U64(v) => Value::Number(*v as f64),
            Plain::F64(v) => Value::Number(*v),
            Plain::Str(s) => Value::String(s.clone()),
            Plain::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_plain)
                    .collect::<std::result::Result<_, _>>()?,
            ),
            Plain::Map(entries) => {
                let mut map = std::collections::BTreeMap::new();
                for (k, v) in entries {
                    map.insert(k.clone(), Value::from_plain(v)?);
                }
                Value::Object(Map(map))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Value = from_str("{\"a\": [1, 2.5, \"x\\n\", null, true]}").unwrap();
        assert_eq!(v["a"][0].as_i64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2], "x\n");
        assert!(v["a"][3].is_null());
        assert_eq!(v["a"][4].as_bool(), Some(true));
    }

    #[test]
    fn compact_and_pretty_formats() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string(&v).unwrap(), "[1,2]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_fraction_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2") .is_err());
        assert!(from_str::<Value>("[] trailing").is_err());
    }
}
