//! Functional stand-in for serde_derive.
//!
//! Parses the derive input with a hand-rolled token walker (no `syn` in the
//! offline environment) and emits `serde::Serialize`/`serde::Deserialize`
//! impls against the `Plain` data model of the vendored serde stand-in.
//!
//! Supported item shapes — exactly what the workspace derives:
//!
//! * named-field structs (field attrs: `skip_serializing_if = "path"`,
//!   `default`) → JSON object;
//! * newtype / tuple structs → inner value / array;
//! * enums with unit, newtype, tuple and struct variants, externally
//!   tagged as upstream (`"Variant"`, `{"Variant": ...}`);
//! * `#[serde(untagged)]` enums → variants tried in declaration order.
//!
//! Generics are not supported and panic at expansion time with a clear
//! message (the workspace derives only concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- model ----------------------------------------------------------------

struct Input {
    name: String,
    untagged: bool,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    /// `skip_serializing_if = "path"` predicate path, verbatim.
    skip_if: Option<String>,
    /// `default`: missing field deserializes via `Default::default()`.
    default: bool,
}

struct Variant {
    name: String,
    fields: Fields,
}

// ---- parsing --------------------------------------------------------------

struct SerdeAttrs {
    untagged: bool,
    skip_if: Option<String>,
    default: bool,
}

/// Consume leading `#[...]` attribute groups, extracting serde attributes.
fn take_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> SerdeAttrs {
    let mut out = SerdeAttrs { untagged: false, skip_if: None, default: false };
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    panic!("serde_derive stub: malformed attribute")
                };
                parse_attr_group(g.stream(), &mut out);
            }
            _ => return out,
        }
    }
}

/// Parse the inside of one `#[...]`: only `serde(...)` lists matter.
fn parse_attr_group(stream: TokenStream, out: &mut SerdeAttrs) {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comments, derive lists, etc.
    }
    let Some(TokenTree::Group(args)) = it.next() else { return };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(id) = tt else { continue };
        match id.to_string().as_str() {
            "untagged" => out.untagged = true,
            "default" => out.default = true,
            "skip_serializing_if" => {
                // `= "path"`
                match (args.next(), args.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let s = lit.to_string();
                        out.skip_if = Some(s.trim_matches('"').to_string());
                    }
                    _ => panic!("serde_derive stub: malformed skip_serializing_if"),
                }
            }
            other => panic!("serde_derive stub: unsupported serde attribute `{other}`"),
        }
    }
}

/// Skip a field's type tokens: everything up to a comma at angle-bracket
/// depth zero (generic argument commas are nested between `<`/`>` puncts).
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Count the fields of a tuple struct/variant body (top-level commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    while it.peek().is_some() {
        // A field exists; its leading attrs/vis are skipped by skip_type
        // (they contain no top-level comma).
        count += 1;
        skip_type(&mut it);
    }
    count
}

/// Parse a named-field body: `[attrs] [pub] name: Type, ...`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut it);
        // Visibility.
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                it.next(); // pub(crate) etc.
            }
        }
        let Some(TokenTree::Ident(name)) = it.next() else { break };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive stub: expected `:` after field `{name}`"),
        }
        skip_type(&mut it);
        fields.push(Field {
            name: name.to_string(),
            skip_if: attrs.skip_if,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _attrs = take_attrs(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else { break };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                it.next();
                Fields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        // Separator (and any discriminant, which the workspace never uses).
        match it.next() {
            None => {
                variants.push(Variant { name: name.to_string(), fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name: name.to_string(), fields });
            }
            Some(other) => {
                panic!("serde_derive stub: unsupported token `{other}` after variant `{name}`")
            }
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    let attrs = take_attrs(&mut it);
    // Visibility.
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
    let item_kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = it.next() else {
        panic!("serde_derive stub: expected type name")
    };
    let name = name.to_string();
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let kind = match item_kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("serde_derive stub: malformed struct body: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Input { name, untagged: attrs.untagged, kind }
}

// ---- codegen --------------------------------------------------------------

fn named_fields_to_plain(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "{ let mut __m: Vec<(String, serde::Plain)> = Vec::new();\n",
    );
    for f in fields {
        let access = format!("{access_prefix}{}", f.name);
        let push = format!(
            "__m.push((\"{name}\".to_string(), serde::Serialize::to_plain(&{access})));",
            name = f.name
        );
        if let Some(pred) = &f.skip_if {
            out.push_str(&format!("if !{pred}(&{access}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
            out.push('\n');
        }
    }
    out.push_str("serde::Plain::Map(__m) }");
    out
}

fn named_fields_from_plain(ty: &str, fields: &[Field], plain_expr: &str) -> String {
    let mut out = format!(
        "{{ let __m = {plain_expr}; \
         let _ = __m;\n"
    );
    let mut inits = String::new();
    for f in fields {
        let missing = if f.default {
            "Default::default()".to_string()
        } else {
            format!("return Err(serde::DeError::missing(\"{ty}\", \"{name}\"))", name = f.name)
        };
        inits.push_str(&format!(
            "{name}: match __m.get(\"{name}\") {{ \
             Some(__v) => serde::Deserialize::from_plain(__v)?, \
             None => {missing} }},\n",
            name = f.name
        ));
    }
    out.push_str(&format!("Ok({ty} {{ {inits} }}) }}"));
    out
}

fn gen_struct(name: &str, fields: &Fields) -> String {
    let (ser_body, de_body) = match fields {
        Fields::Named(fields) => (
            named_fields_to_plain(fields, "self."),
            named_fields_from_plain(
                name,
                fields,
                "__plain.as_map().map(|__mm| serde::Plain::Map(__mm.to_vec())) \
                 .ok_or_else(|| serde::DeError::expected(\"object\", __plain))?",
            ),
        ),
        Fields::Tuple(1) => (
            "serde::Serialize::to_plain(&self.0)".to_string(),
            format!("Ok({name}(serde::Deserialize::from_plain(__plain)?))"),
        ),
        Fields::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_plain(&self.{i})")).collect();
            let parse: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_plain(&__seq[{i}])?"))
                .collect();
            (
                format!("serde::Plain::Seq(vec![{}])", elems.join(", ")),
                format!(
                    "{{ let __seq = __plain.as_seq() \
                     .ok_or_else(|| serde::DeError::expected(\"array\", __plain))?; \
                     if __seq.len() != {n} {{ \
                     return Err(serde::DeError::new(\"wrong tuple arity for {name}\")); }} \
                     Ok({name}({})) }}",
                    parse.join(", ")
                ),
            )
        }
        Fields::Unit => (
            "serde::Plain::Null".to_string(),
            format!("{{ let _ = __plain; Ok({name}) }}"),
        ),
    };
    impl_pair(name, &ser_body, &de_body)
}

fn variant_payload_to_plain(v: &Variant) -> (String, String) {
    // Returns (pattern, payload expression) for a `match` arm.
    match &v.fields {
        Fields::Unit => (v.name.clone(), String::new()),
        Fields::Tuple(1) => (format!("{}(__f0)", v.name), "serde::Serialize::to_plain(__f0)".into()),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let elems: Vec<String> =
                binds.iter().map(|b| format!("serde::Serialize::to_plain({b})")).collect();
            (
                format!("{}({})", v.name, binds.join(", ")),
                format!("serde::Plain::Seq(vec![{}])", elems.join(", ")),
            )
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            (
                format!("{} {{ {} }}", v.name, binds.join(", ")),
                named_fields_to_plain(fields, ""),
            )
        }
    }
}

fn variant_payload_from_plain(ty: &str, v: &Variant, plain_expr: &str) -> String {
    match &v.fields {
        Fields::Unit => format!("{{ let _ = {plain_expr}; Ok({ty}::{}) }}", v.name),
        Fields::Tuple(1) => format!(
            "Ok({ty}::{}(serde::Deserialize::from_plain({plain_expr})?))",
            v.name
        ),
        Fields::Tuple(n) => {
            let parse: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_plain(&__seq[{i}])?"))
                .collect();
            format!(
                "{{ let __v = {plain_expr}; let __seq = __v.as_seq() \
                 .ok_or_else(|| serde::DeError::expected(\"array\", __v))?; \
                 if __seq.len() != {n} {{ \
                 return Err(serde::DeError::new(\"wrong arity for {ty}::{name}\")); }} \
                 Ok({ty}::{name}({})) }}",
                parse.join(", "),
                name = v.name,
            )
        }
        Fields::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let missing = if f.default {
                    "Default::default()".to_string()
                } else {
                    format!(
                        "return Err(serde::DeError::missing(\"{ty}::{var}\", \"{name}\"))",
                        var = v.name,
                        name = f.name
                    )
                };
                inits.push_str(&format!(
                    "{name}: match __v.get(\"{name}\") {{ \
                     Some(__f) => serde::Deserialize::from_plain(__f)?, \
                     None => {missing} }},\n",
                    name = f.name
                ));
            }
            format!(
                "{{ let __v = {plain_expr}; if __v.as_map().is_none() {{ \
                 return Err(serde::DeError::expected(\"object\", __v)); }} \
                 Ok({ty}::{name} {{ {inits} }}) }}",
                name = v.name,
            )
        }
    }
}

fn gen_enum(name: &str, variants: &[Variant], untagged: bool) -> String {
    // Serialize.
    let mut ser_arms = String::new();
    for v in variants {
        let (pat, payload) = variant_payload_to_plain(v);
        let value = if untagged {
            match &v.fields {
                Fields::Unit => "serde::Plain::Null".to_string(),
                _ => payload.clone(),
            }
        } else {
            match &v.fields {
                Fields::Unit => format!("serde::Plain::Str(\"{}\".to_string())", v.name),
                _ => format!(
                    "serde::Plain::Map(vec![(\"{}\".to_string(), {payload})])",
                    v.name
                ),
            }
        };
        ser_arms.push_str(&format!("{name}::{pat} => {value},\n"));
    }
    let ser_body = format!("match self {{ {ser_arms} }}");

    // Deserialize.
    let de_body = if untagged {
        let mut tries = String::new();
        for v in variants {
            let attempt = variant_payload_from_plain(name, v, "__plain");
            tries.push_str(&format!(
                "if let Ok(__ok) = (|| -> Result<{name}, serde::DeError> {{ {attempt} }})() \
                 {{ return Ok(__ok); }}\n"
            ));
        }
        format!(
            "{{ {tries} Err(serde::DeError::new(\
             \"no untagged variant of {name} matched\")) }}"
        )
    } else {
        let mut unit_arms = String::new();
        let mut tagged_arms = String::new();
        for v in variants {
            match v.fields {
                Fields::Unit => {
                    unit_arms.push_str(&format!("\"{0}\" => Ok({name}::{0}),\n", v.name));
                }
                _ => {
                    let parse = variant_payload_from_plain(name, v, "__content");
                    tagged_arms.push_str(&format!("\"{}\" => {parse},\n", v.name));
                }
            }
        }
        format!(
            "match __plain {{ \
             serde::Plain::Str(__s) => match __s.as_str() {{ \
               {unit_arms} \
               __other => Err(serde::DeError::new(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))), \
             }}, \
             serde::Plain::Map(__m) if __m.len() == 1 => {{ \
               let (__tag, __content) = &__m[0]; \
               match __tag.as_str() {{ \
                 {tagged_arms} \
                 __other => Err(serde::DeError::new(format!(\
                   \"unknown variant `{{__other}}` of {name}\"))), \
               }} \
             }}, \
             __other => Err(serde::DeError::expected(\"variant of {name}\", __other)), \
             }}"
        )
    };
    impl_pair(name, &ser_body, &de_body)
}

fn impl_pair(name: &str, ser_body: &str, de_body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
           fn to_plain(&self) -> serde::Plain {{ {ser_body} }}\n\
         }}\n\
         #[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
           fn from_plain(__plain: &serde::Plain) -> Result<Self, serde::DeError> {{ {de_body} }}\n\
         }}\n"
    )
}

fn expand(input: TokenStream) -> String {
    let input = parse_input(input);
    match &input.kind {
        Kind::Struct(fields) => gen_struct(&input.name, fields),
        Kind::Enum(variants) => gen_enum(&input.name, variants, input.untagged),
    }
}

/// Both derives expand to the same `Serialize + Deserialize` impl pair (the
/// workspace always derives them together); the second expansion would
/// collide, so each derive checks which one runs first via a const marker.
/// Simpler and sufficient here: `Serialize` emits both impls, and
/// `Deserialize` emits nothing when `Serialize` is also being derived — but
/// proc macros cannot see sibling derives, so instead each macro emits only
/// its own impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let full = expand(input);
    // Keep only the Serialize impl (first of the pair).
    let split = full.find("impl<'de> serde::Deserialize").expect("pair");
    let only_ser = full[..split].trim_end().trim_end_matches("#[automatically_derived]");
    only_ser.parse().unwrap_or_else(|e| panic!("serde_derive stub codegen error: {e}\n{only_ser}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let full = expand(input);
    let split = full.find("#[automatically_derived]\nimpl<'de> serde::Deserialize").expect("pair");
    let only_de = &full[split..];
    only_de.parse().unwrap_or_else(|e| panic!("serde_derive stub codegen error: {e}\n{only_de}"))
}
