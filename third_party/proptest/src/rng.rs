//! Deterministic, splittable random number generation for the test runner.
//!
//! Every generated test case is owned by one 32-byte [`Seed`]: the master
//! RNG (seeded from the test's name plus an optional environment override)
//! emits one seed per case, and the case's inputs are derived from a fresh
//! [`TestRng`] built from that seed alone. A persisted seed therefore
//! reproduces its case exactly, independent of how many cases ran before
//! it — the property the `.proptest-regressions` replay machinery relies
//! on.
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna) with a
//! splitmix64 seeding finalizer — both are tiny, fast, std-only, and have
//! well-studied statistical quality.

/// A 32-byte case seed, hex-encoded in `.proptest-regressions` files
/// (the upstream-proptest-compatible `cc <64 hex chars>` line format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed(pub [u8; 32]);

impl Seed {
    /// Render as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
            s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
        }
        s
    }

    /// Parse 64 hex characters; `None` on any other shape.
    pub fn from_hex(s: &str) -> Option<Seed> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for (i, slot) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *slot = ((hi << 4) | lo) as u8;
        }
        Some(Seed(out))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** — the RNG behind every strategy's `new_tree`.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for one test case, derived from its seed alone.
    pub fn from_seed(seed: Seed) -> Self {
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed.0[8 * i..8 * i + 8]);
            *w = u64::from_le_bytes(b);
        }
        // Finalize through splitmix so a low-entropy seed (e.g. all zeros,
        // which would lock xoshiro at zero forever) still yields a healthy
        // state.
        let mut sm = words[0] ^ words[1].rotate_left(17) ^ words[2].rotate_left(31) ^ words[3];
        let mut s = [0u64; 4];
        for (slot, w) in s.iter_mut().zip(words) {
            let mut local = sm ^ w;
            *slot = splitmix64(&mut local);
            sm = local;
        }
        Self { s }
    }

    /// Master RNG for a named test: deterministic in the test's fully
    /// qualified name, perturbed by `extra` (the `TRANSPIM_PROPTEST_SEED`
    /// override; 0 when unset).
    pub fn master(name: &str, extra: u64) -> Self {
        // FNV-1a over the name keeps distinct tests on distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut state = h ^ extra ^ 0x7472_616e_7350_494d; // "transPIM"
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(Seed(seed))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` by fixed-point scaling (the widening
    /// multiply keeps the modulo bias below 2⁻⁶⁴ — irrelevant for testing).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty sampling bound");
        if bound <= u128::from(u64::MAX) {
            ((u128::from(self.next_u64()) * bound) >> 64) as u128
        } else {
            // Bounds above 2⁶⁴ (full-range u128 never occurs here; spans of
            // u64/i64 ranges can reach 2⁶⁴): combine two draws.
            let hi = u128::from(self.next_u64());
            let lo = u128::from(self.next_u64());
            ((hi << 64) | lo) % bound
        }
    }

    /// Uniform fraction in `[0, 1)` with 53 random mantissa bits.
    pub fn fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The next case's seed (split off the master stream).
    pub fn gen_seed(&mut self) -> Seed {
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        Seed(seed)
    }
}
