//! The test runner: case loop, regression replay, greedy shrinking,
//! persistence, and the per-test case-count summary.

use crate::rng::{Seed, TestRng};
use crate::strategy::{BoxTree, Strategy, TupleFields};
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Runtime knobs for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of novel cases to generate and run (after regression replay).
    /// Overridden globally by `TRANSPIM_PROPTEST_CASES`.
    pub cases: u32,
    /// Budget of candidate evaluations while shrinking a failure.
    pub max_shrink_iters: u32,
    /// Total `prop_assume!` rejections tolerated before the test errors out
    /// as too sparse.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 4096, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    /// `ProptestConfig::default()` with a different case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single test-case execution did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The inputs don't satisfy a `prop_assume!` precondition; the case is
    /// discarded, not failed.
    Reject(String),
    /// A `prop_assert*!` failed (or the body panicked).
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Result type the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

enum Outcome {
    Pass,
    Reject(String),
    Fail(String),
}

fn execute<T, F>(test: &F, value: T) -> Outcome
where
    F: Fn(T) -> TestCaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(TestCaseError::Reject(msg))) => Outcome::Reject(msg),
        Ok(Err(TestCaseError::Fail(msg))) => Outcome::Fail(msg),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "test body panicked".to_string()
            };
            Outcome::Fail(msg)
        }
    }
}

/// `file!()` paths are relative to the directory rustc was invoked from
/// (the workspace root under cargo), while the test process runs in the
/// package directory; probe the cwd's ancestors for the first one the path
/// exists under.
fn resolve_source_path(file: &str) -> Option<PathBuf> {
    let file = Path::new(file);
    if file.is_absolute() {
        return file.exists().then(|| file.to_path_buf());
    }
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors().map(|dir| dir.join(file)).find(|p| p.exists())
}

fn regression_path(file: &str) -> Option<PathBuf> {
    let src = resolve_source_path(file)?;
    Some(src.with_extension("proptest-regressions"))
}

/// Seeds persisted by previous failing runs: `cc <64 hex chars> # ...`.
fn persisted_seeds(path: &Path) -> Vec<Seed> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| line.strip_prefix("cc "))
        .filter_map(|rest| Seed::from_hex(rest.split_whitespace().next()?))
        .collect()
}

const REGRESSION_HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

fn persist_seed(path: &Path, seed: Seed, shrunk: &str) {
    let hex = seed.to_hex();
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if existing.contains(&hex) {
        return;
    }
    let mut doc = if existing.is_empty() { REGRESSION_HEADER.to_string() } else { existing };
    if !doc.ends_with('\n') {
        doc.push('\n');
    }
    doc.push_str(&format!("cc {hex} # shrinks to {shrunk}\n"));
    let _ = std::fs::write(path, doc);
}

/// `name = value, ...` pairs for the persisted comment and panic message.
fn render_fields<T: TupleFields>(arg_names: &[&str], value: &T) -> String {
    arg_names
        .iter()
        .zip(value.debug_fields())
        .map(|(name, value)| format!("{name} = {value}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn append_summary(name: &str, cases: u32) {
    if let Ok(path) = std::env::var("TRANSPIM_PROPTEST_SUMMARY") {
        if path.is_empty() {
            return;
        }
        if let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)
        {
            // One short line per write: atomic under O_APPEND, so parallel
            // test binaries can share the file.
            let _ = writeln!(f, "{name}\t{cases}");
        }
    }
}

fn env_u32(key: &str) -> Option<u32> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// Greedily shrink a failing tree: repeatedly jump to the first candidate
/// that still fails, until none does or the iteration budget is spent.
/// Rejected candidates (failed `prop_assume!`) count as non-failing.
fn shrink<T, F>(
    mut tree: BoxTree<T>,
    mut message: String,
    test: &F,
    max_iters: u32,
) -> (BoxTree<T>, String)
where
    T: Clone + fmt::Debug + 'static,
    F: Fn(T) -> TestCaseResult,
{
    let mut iters = 0u32;
    'outer: loop {
        for cand in tree.candidates() {
            if iters >= max_iters {
                break 'outer;
            }
            iters += 1;
            if let Outcome::Fail(msg) = execute(test, cand.current()) {
                tree = cand;
                message = msg;
                continue 'outer;
            }
        }
        break;
    }
    (tree, message)
}

/// Run one `proptest!` property: replay persisted regression seeds, then
/// generate `config.cases` novel cases; on failure, shrink, persist the
/// seed, and panic with the minimal counterexample.
///
/// Returns the number of cases executed (replays included), which is also
/// appended to `TRANSPIM_PROPTEST_SUMMARY` when set.
pub fn run<S, F>(
    name: &str,
    file: &str,
    arg_names: &[&str],
    config: &ProptestConfig,
    strategy: S,
    test: F,
) -> u32
where
    S: Strategy,
    S::Value: TupleFields,
    F: Fn(S::Value) -> TestCaseResult,
{
    let cases = env_u32("TRANSPIM_PROPTEST_CASES").unwrap_or(config.cases);
    let seed_extra = env_u64("TRANSPIM_PROPTEST_SEED").unwrap_or(0);
    let regressions = regression_path(file);

    let mut executed = 0u32;
    let mut rejects = 0u32;
    let fail = |seed: Seed, tree: BoxTree<S::Value>, message: String, executed: u32| {
        let (tree, message) = shrink(tree, message, &test, config.max_shrink_iters);
        let shrunk = render_fields(arg_names, &tree.current());
        if let Some(path) = &regressions {
            persist_seed(path, seed, &shrunk);
        }
        append_summary(name, executed);
        panic!(
            "proptest: {name}: property failed after {executed} case(s)\n\
             minimal failing input: {shrunk}\n\
             error: {message}\n\
             seed: {} (persisted to {})",
            seed.to_hex(),
            regressions
                .as_deref()
                .map_or_else(|| "<unresolved>".to_string(), |p| p.display().to_string()),
        );
    };

    // Regression replay: persisted seeds deterministically reproduce their
    // case under the current engine, independent of the master stream.
    if let Some(path) = &regressions {
        for seed in persisted_seeds(path) {
            let mut rng = TestRng::from_seed(seed);
            let tree = strategy.new_tree(&mut rng);
            executed += 1;
            match execute(&test, tree.current()) {
                Outcome::Fail(msg) => fail(seed, tree, msg, executed),
                Outcome::Pass | Outcome::Reject(_) => {}
            }
        }
    }

    // Novel cases: one seed per case split off the master stream, so any
    // failure is reproducible from its 32-byte seed alone.
    let mut master = TestRng::master(name, seed_extra);
    while executed < cases {
        let seed = master.gen_seed();
        let mut rng = TestRng::from_seed(seed);
        let tree = strategy.new_tree(&mut rng);
        match execute(&test, tree.current()) {
            Outcome::Pass => executed += 1,
            Outcome::Reject(msg) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    // No summary line: the zero-case audit exists to catch
                    // silently-passing properties, and this abort is loud.
                    panic!(
                        "proptest: {name}: too many global rejects ({rejects}); \
                         last: {msg}"
                    );
                }
            }
            Outcome::Fail(msg) => {
                executed += 1;
                fail(seed, tree, msg, executed)
            }
        }
    }

    append_summary(name, executed);
    eprintln!("proptest: {name}: {executed} cases, {rejects} rejects");
    executed
}
