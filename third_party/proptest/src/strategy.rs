//! Strategies (how to generate a random value) and value trees (a generated
//! value plus the ways it can shrink).
//!
//! A [`Strategy`] produces a [`ValueTree`]; the tree's `current()` value is
//! what the property runs against, and `candidates()` enumerates simpler
//! trees ordered most-aggressive-first. The runner shrinks greedily: it
//! walks the candidate list, jumps to the first candidate that still fails,
//! and repeats until no candidate fails (or the iteration budget runs out).

use crate::rng::TestRng;
use std::fmt;
use std::rc::Rc;

/// A generated value plus its shrink candidates.
pub trait ValueTree {
    type Value: Clone + fmt::Debug + 'static;

    /// The concrete value this tree currently denotes.
    fn current(&self) -> Self::Value;

    /// Simpler trees to try, ordered most-aggressive-first. An empty vec
    /// means the value is fully shrunk.
    fn candidates(&self) -> Vec<BoxTree<Self::Value>>;

    /// Object-safe clone, so composite trees (tuples, vecs, maps) can swap
    /// one slot while keeping the rest.
    fn clone_box(&self) -> BoxTree<Self::Value>;
}

/// Boxed, type-erased value tree.
pub type BoxTree<V> = Box<dyn ValueTree<Value = V>>;

impl<V: Clone + fmt::Debug + 'static> Clone for BoxTree<V> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Something that knows how to generate values of one type.
pub trait Strategy {
    type Value: Clone + fmt::Debug + 'static;

    /// Draw one value tree from `rng`.
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<Self::Value>;

    /// Transform generated values; shrinking happens on the source and is
    /// re-mapped.
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        Self: Sized,
        O: Clone + fmt::Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { source: self, f: Rc::new(f) }
    }

    /// Keep only values satisfying `pred`. Generation retries (and panics
    /// after too many consecutive rejections — prefer `prop_assume!` for
    /// sparse conditions); shrink candidates violating `pred` are dropped.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { source: self, reason, pred: Rc::new(pred) }
    }

    /// Type-erase into a cheaply clonable handle (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Reference-counted type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<V> {
        self.0.new_tree(rng)
    }
}

// ---------------------------------------------------------------------------
// Constants
// ---------------------------------------------------------------------------

/// Strategy that always yields the same value and never shrinks.
#[derive(Debug, Clone)]
pub struct Just<V: Clone + fmt::Debug + 'static>(pub V);

impl<V: Clone + fmt::Debug + 'static> Strategy for Just<V> {
    type Value = V;
    fn new_tree(&self, _rng: &mut TestRng) -> BoxTree<V> {
        Box::new(JustTree(self.0.clone()))
    }
}

#[derive(Clone)]
struct JustTree<V: Clone + fmt::Debug + 'static>(V);

impl<V: Clone + fmt::Debug + 'static> ValueTree for JustTree<V> {
    type Value = V;
    fn current(&self) -> V {
        self.0.clone()
    }
    fn candidates(&self) -> Vec<BoxTree<V>> {
        Vec::new()
    }
    fn clone_box(&self) -> BoxTree<V> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Integers
// ---------------------------------------------------------------------------

/// Shrink path for an integer `v` inside `[lo, hi]`: jump straight to the
/// shrink target (0 when in range, else the bound nearest zero), then walk
/// back toward `v` by halving the remaining distance. Most-aggressive-first.
fn int_candidates(v: i128, lo: i128, hi: i128) -> Vec<i128> {
    let target = if lo <= 0 && 0 <= hi {
        0
    } else if lo > 0 {
        lo
    } else {
        hi
    };
    let mut out = Vec::new();
    if v == target {
        return out;
    }
    out.push(target);
    let mut delta = v - target;
    loop {
        delta /= 2;
        if delta == 0 {
            break;
        }
        out.push(v - delta);
    }
    out
}

#[derive(Clone)]
struct IntTree<V> {
    value: i128,
    lo: i128,
    hi: i128,
    back: fn(i128) -> V,
}

impl<V: Clone + fmt::Debug + 'static> ValueTree for IntTree<V> {
    type Value = V;
    fn current(&self) -> V {
        (self.back)(self.value)
    }
    fn candidates(&self) -> Vec<BoxTree<V>> {
        int_candidates(self.value, self.lo, self.hi)
            .into_iter()
            .map(|value| Box::new(IntTree { value, ..*self }) as BoxTree<V>)
            .collect()
    }
    fn clone_box(&self) -> BoxTree<V> {
        Box::new(self.clone())
    }
}

fn int_tree<V: Clone + fmt::Debug + 'static>(
    rng: &mut TestRng,
    lo: i128,
    hi: i128,
    back: fn(i128) -> V,
) -> BoxTree<V> {
    assert!(lo <= hi, "empty integer range strategy");
    let span = (hi - lo) as u128 + 1;
    let value = lo + rng.below(span) as i128;
    Box::new(IntTree { value, lo, hi, back })
}

macro_rules! int_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> BoxTree<$t> {
                assert!(self.start < self.end, "empty integer range strategy");
                int_tree(rng, self.start as i128, self.end as i128 - 1, |v| v as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> BoxTree<$t> {
                int_tree(rng, *self.start() as i128, *self.end() as i128, |v| v as $t)
            }
        }
    )+};
}

int_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// Floats
// ---------------------------------------------------------------------------

/// Float shrink candidates: the target (0 clamped into range), then repeated
/// midpoints toward `v`. Candidates numerically equal to `v` are skipped so
/// shrinking cannot loop on denormal-scale deltas.
fn float_candidates(v: f64, lo: f64, hi: f64) -> Vec<f64> {
    let target = lo.max(0.0).min(hi);
    let mut out = Vec::new();
    let mut cand = target;
    for _ in 0..32 {
        if cand != v && out.last() != Some(&cand) {
            out.push(cand);
        }
        let mid = cand + (v - cand) / 2.0;
        if mid == cand || mid == v {
            break;
        }
        cand = mid;
    }
    out
}

#[derive(Clone)]
struct FloatTree<V> {
    value: f64,
    lo: f64,
    hi: f64,
    back: fn(f64) -> V,
}

impl<V: Clone + fmt::Debug + 'static> ValueTree for FloatTree<V> {
    type Value = V;
    fn current(&self) -> V {
        (self.back)(self.value)
    }
    fn candidates(&self) -> Vec<BoxTree<V>> {
        float_candidates(self.value, self.lo, self.hi)
            .into_iter()
            .map(|value| Box::new(FloatTree { value, ..*self }) as BoxTree<V>)
            .collect()
    }
    fn clone_box(&self) -> BoxTree<V> {
        Box::new(self.clone())
    }
}

macro_rules! float_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> BoxTree<$t> {
                let (lo, hi) = (self.start as f64, self.end as f64);
                assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad float range strategy");
                let value = lo + rng.fraction() * (hi - lo);
                // `fraction()` < 1 but rounding through the arithmetic above
                // can still land exactly on `hi`; clamp to keep the
                // half-open contract.
                let value = if value >= hi { lo } else { value };
                Box::new(FloatTree { value, lo, hi, back: |v| v as $t })
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_tree(&self, rng: &mut TestRng) -> BoxTree<$t> {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad float range strategy");
                // `fraction()` < 1, so `hi` itself is only reachable through
                // rounding — which the inclusive contract permits.
                let value = (lo + rng.fraction() * (hi - lo)).min(hi);
                Box::new(FloatTree { value, lo, hi, back: |v| v as $t })
            }
        }
    )+};
}

float_strategies!(f32, f64);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Clone + fmt::Debug + Sized + 'static {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u32>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_ints {
    ($($t:ident),+) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                $t::MIN..=$t::MAX
            }
        }
    )+};
}

arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// `any::<bool>()`: uniform coin flip; `true` shrinks to `false`.
#[derive(Debug, Clone)]
pub struct BoolAny;

impl Arbitrary for bool {
    type Strategy = BoolAny;
    fn arbitrary() -> BoolAny {
        BoolAny
    }
}

impl Strategy for BoolAny {
    type Value = bool;
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<bool> {
        Box::new(BoolTree(rng.below(2) == 1))
    }
}

#[derive(Clone)]
struct BoolTree(bool);

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.0
    }
    fn candidates(&self) -> Vec<BoxTree<bool>> {
        if self.0 { vec![Box::new(BoolTree(false))] } else { Vec::new() }
    }
    fn clone_box(&self) -> BoxTree<bool> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Map / Filter
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    source: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S, O> Strategy for Map<S, O>
where
    S: Strategy,
    O: Clone + fmt::Debug + 'static,
{
    type Value = O;
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<O> {
        Box::new(MapTree { inner: self.source.new_tree(rng), f: Rc::clone(&self.f) })
    }
}

struct MapTree<I: Clone + fmt::Debug + 'static, O> {
    inner: BoxTree<I>,
    f: Rc<dyn Fn(I) -> O>,
}

impl<I: Clone + fmt::Debug + 'static, O> Clone for MapTree<I, O> {
    fn clone(&self) -> Self {
        MapTree { inner: self.inner.clone(), f: Rc::clone(&self.f) }
    }
}

impl<I, O> ValueTree for MapTree<I, O>
where
    I: Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug + 'static,
{
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn candidates(&self) -> Vec<BoxTree<O>> {
        self.inner
            .candidates()
            .into_iter()
            .map(|inner| Box::new(MapTree { inner, f: Rc::clone(&self.f) }) as BoxTree<O>)
            .collect()
    }
    fn clone_box(&self) -> BoxTree<O> {
        Box::new(self.clone())
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S: Strategy> {
    source: S,
    reason: &'static str,
    pred: Rc<dyn Fn(&S::Value) -> bool>,
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<S::Value> {
        for _ in 0..100 {
            let tree = self.source.new_tree(rng);
            if (self.pred)(&tree.current()) {
                return Box::new(FilterTree { inner: tree, pred: Rc::clone(&self.pred) });
            }
        }
        panic!("prop_filter({:?}): 100 consecutive generated values rejected", self.reason);
    }
}

struct FilterTree<I: Clone + fmt::Debug + 'static> {
    inner: BoxTree<I>,
    pred: Rc<dyn Fn(&I) -> bool>,
}

impl<I: Clone + fmt::Debug + 'static> Clone for FilterTree<I> {
    fn clone(&self) -> Self {
        FilterTree { inner: self.inner.clone(), pred: Rc::clone(&self.pred) }
    }
}

impl<I: Clone + fmt::Debug + 'static> ValueTree for FilterTree<I> {
    type Value = I;
    fn current(&self) -> I {
        self.inner.current()
    }
    fn candidates(&self) -> Vec<BoxTree<I>> {
        self.inner
            .candidates()
            .into_iter()
            .filter(|c| (self.pred)(&c.current()))
            .map(|inner| Box::new(FilterTree { inner, pred: Rc::clone(&self.pred) }) as BoxTree<I>)
            .collect()
    }
    fn clone_box(&self) -> BoxTree<I> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// Weighted choice between strategies yielding the same type. Shrinking
/// stays inside the chosen arm.
pub struct Union<V: Clone + fmt::Debug + 'static> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: Clone + fmt::Debug + 'static> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! needs a positive weight");
        Union { arms }
    }
}

impl<V: Clone + fmt::Debug + 'static> Strategy for Union<V> {
    type Value = V;
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<V> {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(u128::from(total)) as u64;
        for (w, strat) in &self.arms {
            if pick < u64::from(*w) {
                return strat.new_tree(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range");
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

/// Per-field `Debug` rendering, used by the runner to format shrunk
/// counterexamples as `name = value` pairs (one per `proptest!` argument).
pub trait TupleFields {
    fn debug_fields(&self) -> Vec<String>;
}

macro_rules! tuple_impls {
    ($Tree:ident: $(($T:ident, $idx:tt)),+) => {
        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);
            fn new_tree(&self, rng: &mut TestRng) -> BoxTree<Self::Value> {
                Box::new($Tree { trees: ($(self.$idx.new_tree(rng),)+) })
            }
        }

        struct $Tree<$($T: Clone + fmt::Debug + 'static),+> {
            trees: ($(BoxTree<$T>,)+),
        }

        impl<$($T: Clone + fmt::Debug + 'static),+> Clone for $Tree<$($T),+> {
            fn clone(&self) -> Self {
                $Tree { trees: ($(self.trees.$idx.clone(),)+) }
            }
        }

        impl<$($T: Clone + fmt::Debug + 'static),+> ValueTree for $Tree<$($T),+> {
            type Value = ($($T,)+);
            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }
            fn candidates(&self) -> Vec<BoxTree<Self::Value>> {
                let mut out: Vec<BoxTree<Self::Value>> = Vec::new();
                $(
                    for cand in self.trees.$idx.candidates() {
                        let mut next = self.clone();
                        next.trees.$idx = cand;
                        out.push(Box::new(next));
                    }
                )+
                out
            }
            fn clone_box(&self) -> BoxTree<Self::Value> {
                Box::new(self.clone())
            }
        }

        impl<$($T: fmt::Debug),+> TupleFields for ($($T,)+) {
            fn debug_fields(&self) -> Vec<String> {
                vec![$(format!("{:?}", self.$idx)),+]
            }
        }
    };
}

tuple_impls!(Tuple1Tree: (A, 0));
tuple_impls!(Tuple2Tree: (A, 0), (B, 1));
tuple_impls!(Tuple3Tree: (A, 0), (B, 1), (C, 2));
tuple_impls!(Tuple4Tree: (A, 0), (B, 1), (C, 2), (D, 3));
tuple_impls!(Tuple5Tree: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_impls!(Tuple6Tree: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
tuple_impls!(Tuple7Tree: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
tuple_impls!(Tuple8Tree: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7));
tuple_impls!(Tuple9Tree: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7), (I, 8));
tuple_impls!(Tuple10Tree: (A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6), (H, 7), (I, 8), (J, 9));
