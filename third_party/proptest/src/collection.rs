//! `proptest::collection::vec` — random-length vectors of a sub-strategy.

use crate::rng::TestRng;
use crate::strategy::{BoxTree, Strategy, ValueTree};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length. Built from a plain
/// `usize` (exact size), `lo..hi`, or `lo..=hi` via `Into`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::new(n, n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange::new(r.start, r.end - 1)
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange::new(*r.start(), *r.end())
    }
}

/// `Vec<T>` strategy: length uniform in `size`, elements drawn from
/// `element`. Shrinks structurally first (shorter vectors), then
/// element-wise.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_tree(&self, rng: &mut TestRng) -> BoxTree<Vec<S::Value>> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u128) as usize;
        let elems = (0..len).map(|_| self.element.new_tree(rng)).collect();
        Box::new(VecTree { elems, min_len: self.size.lo })
    }
}

/// Hard cap on candidates per shrink round: keeps one round's allocation
/// bounded even for multi-hundred-element vectors (the greedy shrinker
/// revisits the survivors next round anyway).
const MAX_CANDIDATES: usize = 1024;

struct VecTree<T: Clone + fmt::Debug + 'static> {
    elems: Vec<BoxTree<T>>,
    min_len: usize,
}

impl<T: Clone + fmt::Debug + 'static> Clone for VecTree<T> {
    fn clone(&self) -> Self {
        VecTree { elems: self.elems.clone(), min_len: self.min_len }
    }
}

impl<T: Clone + fmt::Debug + 'static> ValueTree for VecTree<T> {
    type Value = Vec<T>;

    fn current(&self) -> Vec<T> {
        self.elems.iter().map(|t| t.current()).collect()
    }

    fn candidates(&self) -> Vec<BoxTree<Vec<T>>> {
        let n = self.elems.len();
        let mut out: Vec<BoxTree<Vec<T>>> = Vec::new();
        let push = |elems: Vec<BoxTree<T>>, out: &mut Vec<BoxTree<Vec<T>>>| {
            if out.len() < MAX_CANDIDATES {
                out.push(Box::new(VecTree { elems, min_len: self.min_len }));
            }
        };

        // Structural cuts, most aggressive first: all the way down to the
        // minimum length, then halving, then dropping single elements (each
        // index, so a lone culprit element can end up alone).
        if n > self.min_len {
            push(self.elems[..self.min_len].to_vec(), &mut out);
            let half = self.min_len.max(n / 2);
            if half > self.min_len && half < n {
                push(self.elems[..half].to_vec(), &mut out);
            }
            for i in 0..n {
                let mut elems = self.elems.clone();
                elems.remove(i);
                push(elems, &mut out);
            }
        }

        // Element-wise shrinks: replace one slot at a time. Interleave by
        // ladder depth (every element's most aggressive candidate before
        // any element's second) so that under the global cap each slot
        // still gets a fair share — and since each element's ladder ends
        // one step from its current value, the greedy loop converges to an
        // exact per-element minimum rather than stalling a factor of two
        // away from the boundary.
        let ladders: Vec<Vec<BoxTree<T>>> = self.elems.iter().map(|e| e.candidates()).collect();
        let deepest = ladders.iter().map(Vec::len).max().unwrap_or(0);
        'depth: for depth in 0..deepest {
            for (i, ladder) in ladders.iter().enumerate() {
                if let Some(cand) = ladder.get(depth) {
                    let mut elems = self.elems.clone();
                    elems[i] = cand.clone();
                    push(elems, &mut out);
                    if out.len() >= MAX_CANDIDATES {
                        break 'depth;
                    }
                }
            }
        }
        out
    }

    fn clone_box(&self) -> BoxTree<Vec<T>> {
        Box::new(self.clone())
    }
}
