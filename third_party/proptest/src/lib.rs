//! Functional, std-only property-testing engine, API-compatible with the
//! subset of upstream `proptest` this workspace uses.
//!
//! Previously this crate was a type-check-only stand-in whose `proptest!`
//! macro swallowed its tokens; every property in the tree compiled to an
//! empty test. It is now a real engine:
//!
//! - **Deterministic PRNG** ([`rng`]): xoshiro256** seeded per test name;
//!   each case owns a 32-byte seed split off the master stream, so failures
//!   replay from the seed alone. `TRANSPIM_PROPTEST_SEED` perturbs the
//!   master stream, `TRANSPIM_PROPTEST_CASES` overrides every config's case
//!   count.
//! - **Strategies** ([`strategy`], [`collection`]): integer/float ranges,
//!   `any::<T>()`, `Just`, tuples to arity 10, `prop_map`/`prop_filter`,
//!   weighted unions (`prop_oneof!`), and `collection::vec`.
//! - **Greedy shrinking**: failing inputs jump to the most aggressive
//!   still-failing candidate (integers toward zero, vectors toward short,
//!   element-wise after structural) until a local minimum is reached.
//! - **Persistence** ([`runner`]): failures append
//!   `cc <64-hex-seed> # shrinks to ...` lines to the sibling
//!   `.proptest-regressions` file (upstream-compatible format) and persisted
//!   seeds replay before novel cases.
//! - **Case-count summary**: each run appends `name\tcases` to the file
//!   named by `TRANSPIM_PROPTEST_SUMMARY`, which `scripts/check.sh` audits
//!   so the suite can never silently regress to zero executed cases.

pub mod collection;
pub mod rng;
pub mod runner;
pub mod strategy;

pub use runner::{TestCaseError, TestCaseResult};

/// Define property tests. Each `fn name(args in strategies) { body }` item
/// becomes a `#[test]` wrapper that runs the body against generated inputs;
/// an optional leading `#![proptest_config(expr)]` sets the runner config
/// for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::runner::ProptestConfig = $config;
            $crate::runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                file!(),
                &[$(stringify!($arg)),+],
                &config,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::runner::ProptestConfig::default()) $($rest)*);
    };
}


/// Fail the current case (recorded, shrunk, and reported) without panicking
/// through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` specialised to equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {left:?}\n right: {right:?}",
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// `prop_assert!` specialised to inequality, printing both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left != right`\n  both: {left:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  both: {left:?}",
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Discard the current case (not a failure) when a precondition on the
/// generated inputs doesn't hold. Discards don't count toward the case
/// total; `ProptestConfig::max_global_rejects` bounds them.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Weighted (`weight => strategy`) or uniform choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define a function returning a composed strategy:
/// `fn name(params)(bindings in strategies) -> Out { expr }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
                 ($($arg:pat in $strat:expr),+ $(,)?)
                 -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

pub mod prelude {
    pub use crate::runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}
