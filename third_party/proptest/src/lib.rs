//! Type-check-only stand-in for proptest: the `proptest!` macro (and the
//! assertion macros that only ever appear inside its body) swallow their
//! tokens, so property bodies are not type-checked — the real crate is.

#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_oneof {
    ($($tt:tt)*) => {};
}
#[macro_export]
macro_rules! prop_compose {
    ($($tt:tt)*) => {};
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};

    pub struct ProptestConfig;
    impl ProptestConfig {
        pub fn with_cases(_cases: u32) -> Self {
            unimplemented!()
        }
    }
}
