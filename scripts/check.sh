#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite — all offline.
#
#   ./scripts/check.sh            # run everything
#   ./scripts/check.sh --fast     # skip the release build
#
# The repository is developed against an offline registry (see README
# "Offline-build constraint"); --offline makes a network-touching
# dependency change fail here instead of in CI.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> Cargo.lock completeness (offline resolve)"
if ! cargo metadata --frozen --format-version 1 >/dev/null 2>/tmp/check_lock_err; then
  cat /tmp/check_lock_err >&2
  echo >&2
  echo "error: the dependency graph does not resolve from the committed" >&2
  echo "Cargo.lock without network access. This repository must build" >&2
  echo "offline (see README \"Offline-build constraint\"): every dependency" >&2
  echo "either lives in the workspace, in third_party/ via [patch.crates-io]," >&2
  echo "or must already be locked. Regenerate the lockfile with" >&2
  echo "'cargo metadata --offline' on a machine where it resolves, and" >&2
  echo "commit the result." >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --offline --workspace --release
fi

echo "==> cargo test"
cargo test --offline --workspace -q

# The workspace suite above already runs this, but a broken parallel
# engine must fail the gate with its own name on the line.
echo "==> parallel determinism (jobs=1 vs jobs=N byte-identical)"
cargo test --offline -q --test parallel_determinism

# Same rationale: the loop-compressed decode path must price, report, and
# trace byte-identically to unrolled programs, and fail loudly by name.
echo "==> repeat equivalence (compressed vs unrolled byte-identical)"
cargo test --offline -q --test repeat_equivalence

# Fault suite: injection disabled must be byte-invisible, degraded runs
# must be deterministic at any job count, and ring degradation must price
# consistently. The injection seed is pinned so reruns are byte-identical.
echo "==> fault suite (byte-invisible when off, deterministic when on)"
TRANSPIM_FAULT_SEED="${TRANSPIM_FAULT_SEED:-20220402}" \
  cargo test --offline -q --test fault_equivalence --test fault_degradation

# Property suites, by name and under a pinned seed, with a case-count
# audit. The vendored proptest engine appends "<test>\t<cases>" for every
# proptest! property to $TRANSPIM_PROPTEST_SUMMARY; if any property
# executed zero cases — e.g. the engine regressed to the old
# body-swallowing stub — the gate fails. TRANSPIM_PROPTEST_CASES can
# raise the per-property case count for deeper local soaks.
echo "==> property suites (fixed seed, zero-case audit)"
summary=target/proptest-summary.txt
rm -f "$summary"
TRANSPIM_PROPTEST_SEED="${TRANSPIM_PROPTEST_SEED:-20220402}" \
TRANSPIM_PROPTEST_SUMMARY="$summary" \
  cargo test --offline -q \
    --test scheduler_properties \
    --test differential_fuzz \
    --test proptest_engine \
    --test serde_roundtrips
if [[ ! -s "$summary" ]]; then
  echo "error: no proptest case-count summary was written — the property" >&2
  echo "engine is not executing generated cases." >&2
  exit 1
fi
awk -F'\t' '
  $2 + 0 == 0 { print "error: property ran zero cases: " $1; bad = 1 }
  END { exit bad }
' "$summary" >&2
for required in \
  scheduler_properties::ring_step_respects_group_serialization_floor \
  differential_fuzz::banksim_attention_matches_f32_within_tolerance \
  differential_fuzz::repeat_compression_is_an_exact_encoding \
  differential_fuzz::token_and_layer_flow_encoders_agree \
  differential_fuzz::grid_pricing_is_job_count_invariant \
  differential_fuzz::correctable_faults_stay_within_error_budget \
  differential_fuzz::uncorrectable_faults_surface_as_sim_error \
  serde_roundtrips::random_programs_roundtrip_and_keep_wire_shape
do
  if ! grep -q "^${required}$(printf '\t')" "$summary"; then
    echo "error: required property did not run: $required" >&2
    exit 1
  fi
done
echo "    $(wc -l < "$summary") properties, case counts audited ($summary)"

echo "All checks passed."
