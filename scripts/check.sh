#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite — all offline.
#
#   ./scripts/check.sh            # run everything
#   ./scripts/check.sh --fast     # skip the release build
#
# The repository is developed against an offline registry (see README
# "Offline-build constraint"); --offline makes a network-touching
# dependency change fail here instead of in CI.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --offline --workspace --release
fi

echo "==> cargo test"
cargo test --offline --workspace -q

echo "All checks passed."
