#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite — all offline.
#
#   ./scripts/check.sh            # run everything
#   ./scripts/check.sh --fast     # skip the release build
#
# The repository is developed against an offline registry (see README
# "Offline-build constraint"); --offline makes a network-touching
# dependency change fail here instead of in CI.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> Cargo.lock completeness (offline resolve)"
if ! cargo metadata --frozen --format-version 1 >/dev/null 2>/tmp/check_lock_err; then
  cat /tmp/check_lock_err >&2
  echo >&2
  echo "error: the dependency graph does not resolve from the committed" >&2
  echo "Cargo.lock without network access. This repository must build" >&2
  echo "offline (see README \"Offline-build constraint\"): every dependency" >&2
  echo "either lives in the workspace, in third_party/ via [patch.crates-io]," >&2
  echo "or must already be locked. Regenerate the lockfile with" >&2
  echo "'cargo metadata --offline' on a machine where it resolves, and" >&2
  echo "commit the result." >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --offline --workspace --release
fi

echo "==> cargo test"
cargo test --offline --workspace -q

# The workspace suite above already runs this, but a broken parallel
# engine must fail the gate with its own name on the line.
echo "==> parallel determinism (jobs=1 vs jobs=N byte-identical)"
cargo test --offline -q --test parallel_determinism

# Same rationale: the loop-compressed decode path must price, report, and
# trace byte-identically to unrolled programs, and fail loudly by name.
echo "==> repeat equivalence (compressed vs unrolled byte-identical)"
cargo test --offline -q --test repeat_equivalence

echo "All checks passed."
