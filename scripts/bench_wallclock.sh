#!/usr/bin/env bash
# Wall-clock benchmark for the parallel evaluation engine: time the `sweep`
# grid at --jobs 1 and --jobs N, verify the CSVs are byte-identical, and
# write the measurements to results/BENCH_sweep.json.
#
#   ./scripts/bench_wallclock.sh            # N = machine parallelism
#   ./scripts/bench_wallclock.sh 4          # N = 4
#
# The committed results/BENCH_sweep.json is the reference measurement from
# the machine that authored the parallel engine; rerun this script to
# reproduce the speedup on yours.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs_n="${1:-$(nproc 2>/dev/null || echo 4)}"
# 16 lengths × 4 stack counts × 8 systems = 512 grid cells, timed over
# several repetitions so the measurement rises above timer noise.
lengths=$(seq 2048 2048 32768 | paste -sd,)
stacks="1,2,4,8"
reps=3

echo "==> cargo build --release --bin sweep"
cargo build --offline --release -p transpim-bench --bin sweep >/dev/null

sweep=target/release/sweep
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Wall-clock seconds for $reps sweep runs, via bash's epoch with µs
# precision. The CSV of the last repetition lands in $2.
time_run() {
  local jobs="$1" out="$2"
  local t0 t1 i
  t0=$EPOCHREALTIME
  for ((i = 0; i < reps; i++)); do
    "$sweep" --lengths "$lengths" --stacks "$stacks" --jobs "$jobs" > "$out"
  done
  t1=$EPOCHREALTIME
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}

echo "==> sweep --jobs 1   (lengths $lengths, stacks $stacks)"
serial_s=$(time_run 1 "$tmp/serial.csv")
echo "    ${serial_s}s"

echo "==> sweep --jobs $jobs_n"
parallel_s=$(time_run "$jobs_n" "$tmp/parallel.csv")
echo "    ${parallel_s}s"

if ! cmp -s "$tmp/serial.csv" "$tmp/parallel.csv"; then
  echo "FAIL: sweep output differs between --jobs 1 and --jobs $jobs_n" >&2
  exit 1
fi
echo "==> outputs byte-identical"

speedup=$(awk -v s="$serial_s" -v p="$parallel_s" 'BEGIN { printf "%.2f", s / p }')
host_cpus=$(nproc 2>/dev/null || echo 1)
mkdir -p results
cat > results/BENCH_sweep.json <<EOF
{
  "benchmark": "sweep --lengths $lengths --stacks $stacks (x$reps)",
  "host_cpus": $host_cpus,
  "jobs_serial": 1,
  "jobs_parallel": $jobs_n,
  "serial_s": $serial_s,
  "parallel_s": $parallel_s,
  "speedup": $speedup,
  "outputs_identical": true
}
EOF
echo "==> speedup ${speedup}x — written to results/BENCH_sweep.json"

# Decoder fast path: compressed (Step::Repeat) vs unrolled compile+price
# wall clock at decode_len in {256, 1024, 4096}. The binary verifies the
# two encodings price bitwise-identically and writes
# results/BENCH_decode.json itself.
echo "==> decode scaling (compressed vs unrolled)"
cargo build --offline --release -p transpim-bench --bin decode_scaling >/dev/null
target/release/decode_scaling
