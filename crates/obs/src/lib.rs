//! Structured observability for the TransPIM simulator.
//!
//! Simulator-style accelerator studies live or die on per-stage breakdown
//! reporting: every figure of the paper's evaluation (latency/energy
//! breakdowns per phase, per bank, per ring hop) is a view over the same
//! underlying timeline. This crate provides that timeline as a first-class
//! API instead of ad-hoc strings:
//!
//! * [`event`] — the span / instant / counter event model with typed
//!   [`event::TrackId`] timelines,
//! * [`sink`] — the pluggable [`Sink`] trait, the cheap cloneable
//!   [`SinkHandle`] the simulation layers carry, the zero-overhead
//!   [`NullSink`], and a [`FanoutSink`] multiplexer,
//! * [`chrome`] — a Chrome-tracing / Perfetto JSON sink
//!   (`chrome://tracing` loads its output directly),
//! * [`metrics`] — a flat key→value metrics sink with JSON and CSV export
//!   for the `results/` pipeline.
//!
//! # Example
//!
//! ```
//! use transpim_obs::{ChromeTraceSink, SinkHandle, SpanEvent, TrackId};
//!
//! let chrome = ChromeTraceSink::shared();
//! let sink = SinkHandle::from_shared(chrome.clone());
//! sink.span(SpanEvent::new("fc", "arithmetic", TrackId(1), 0.0, 100.0)
//!     .with_arg("energy_pj", 5_000.0));
//! let json = chrome.borrow().to_json_string().unwrap();
//! assert!(json.contains("\"name\":\"fc\""));
//! ```
//!
//! Emission discipline: layers that might run hot must gate work behind
//! [`SinkHandle::is_enabled`] — a disabled handle makes every emission a
//! no-op without allocation, so untraced runs behave exactly like runs
//! without any observability compiled in.

pub mod chrome;
pub mod event;
mod json;
pub mod metrics;
pub mod sink;

pub use chrome::{ChromeEvent, ChromeTraceSink};
pub use event::{ArgValue, CounterEvent, InstantEvent, SpanEvent, TrackId};
pub use metrics::MetricsSink;
pub use sink::{FanoutSink, NullSink, Sink, SinkHandle};

use std::fmt;

/// Errors surfaced by trace/metrics export.
///
/// Serialization failures used to be silently swallowed (an empty trace was
/// returned); they are now loud by construction.
#[derive(Debug)]
pub enum ObsError {
    /// JSON serialization of a trace or metrics document failed.
    Serialize(serde_json::Error),
    /// Writing an export file failed.
    Io(std::io::Error),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Serialize(e) => write!(f, "serializing trace/metrics: {e}"),
            ObsError::Io(e) => write!(f, "writing trace/metrics: {e}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Serialize(e) => Some(e),
            ObsError::Io(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for ObsError {
    fn from(e: serde_json::Error) -> Self {
        ObsError::Serialize(e)
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}
