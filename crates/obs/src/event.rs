//! The event model: spans, instants, and counters on named tracks.
//!
//! Times are nanoseconds of *simulated* time since simulation start —
//! observability describes the machine being modeled, not the host running
//! the model. Sinks translate units as their format requires (the Chrome
//! sink exports microseconds, per the trace-event spec).

use serde::{Deserialize, Serialize};

/// Identifier of one timeline row ("thread" in Chrome-trace terms).
///
/// Emitters pick the layout; the simulator reserves low ids for breakdown
/// categories, one row for ring-broadcast hops, and a range for
/// per-resource occupancy (see `transpim_hbm::engine::tracks`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TrackId(pub u64);

impl TrackId {
    /// The default track for emitters that do not care about placement.
    pub const DEFAULT: TrackId = TrackId(0);
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ArgValue {
    /// Numeric payload (energies, byte counts, utilizations).
    Num(f64),
    /// String payload (labels, resource names).
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Num(f64::from(v))
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// A complete interval on a track: something that took time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Human-readable name (scope label, hop label, op label).
    pub name: String,
    /// Category label, matching the breakdown vocabulary of the emitter
    /// (e.g. `data-movement`, `arithmetic`, `ring`).
    pub category: String,
    /// Track the span renders on.
    pub track: TrackId,
    /// Start, in simulated nanoseconds.
    pub start_ns: f64,
    /// Duration, in simulated nanoseconds (≥ 0).
    pub dur_ns: f64,
    /// Attached arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl SpanEvent {
    /// A span with no arguments.
    pub fn new(
        name: impl Into<String>,
        category: impl Into<String>,
        track: TrackId,
        start_ns: f64,
        dur_ns: f64,
    ) -> Self {
        Self {
            name: name.into(),
            category: category.into(),
            track,
            start_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    /// Attach one argument (builder style).
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Mark this span as summarizing `count` collapsed repetitions (repeat
    /// collapsing keeps traces bounded for long decode loops; the count
    /// lets viewers and post-processors recover the multiplicity).
    pub fn with_count(self, count: u64) -> Self {
        self.with_arg("count", count)
    }
}

/// A point-in-time marker on a track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantEvent {
    /// Human-readable name.
    pub name: String,
    /// Category label.
    pub category: String,
    /// Track the marker renders on.
    pub track: TrackId,
    /// Timestamp, in simulated nanoseconds.
    pub ts_ns: f64,
    /// Attached arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl InstantEvent {
    /// An instant with no arguments.
    pub fn new(
        name: impl Into<String>,
        category: impl Into<String>,
        track: TrackId,
        ts_ns: f64,
    ) -> Self {
        Self { name: name.into(), category: category.into(), track, ts_ns, args: Vec::new() }
    }

    /// Attach one argument (builder style).
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }
}

/// A sampled counter value series (utilization, occupancy, queue depth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEvent {
    /// Counter series name (one chart per name in trace viewers).
    pub name: String,
    /// Track the counter renders on.
    pub track: TrackId,
    /// Sample timestamp, in simulated nanoseconds.
    pub ts_ns: f64,
    /// `(series, value)` samples taken at `ts_ns`.
    pub values: Vec<(String, f64)>,
}

impl CounterEvent {
    /// A counter with a single `(series, value)` sample.
    pub fn sample(
        name: impl Into<String>,
        track: TrackId,
        ts_ns: f64,
        series: impl Into<String>,
        value: f64,
    ) -> Self {
        Self { name: name.into(), track, ts_ns, values: vec![(series.into(), value)] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_attach_args() {
        let s = SpanEvent::new("fc", "arithmetic", TrackId(2), 1.0, 5.0)
            .with_arg("energy_pj", 10.0)
            .with_arg("label", "a");
        assert_eq!(s.args.len(), 2);
        assert_eq!(s.args[0].1, ArgValue::Num(10.0));
        assert_eq!(s.args[1].1, ArgValue::Str("a".into()));
    }

    #[test]
    fn with_count_attaches_count_arg() {
        let s = SpanEvent::new("repeat x7", "repeat", TrackId(16), 0.0, 5.0).with_count(7);
        assert_eq!(s.args, vec![("count".to_owned(), ArgValue::Num(7.0))]);
    }

    #[test]
    fn arg_values_serialize_untagged() {
        let n = serde_json::to_string(&ArgValue::Num(2.5)).unwrap();
        let s = serde_json::to_string(&ArgValue::Str("x".into())).unwrap();
        assert_eq!(n, "2.5");
        assert_eq!(s, "\"x\"");
    }

    #[test]
    fn counter_sample_is_single_series() {
        let c = CounterEvent::sample("util", TrackId::DEFAULT, 3.0, "busy", 0.5);
        assert_eq!(c.values, vec![("busy".to_owned(), 0.5)]);
    }
}
