//! The [`Sink`] trait, the [`SinkHandle`] the simulation layers carry, and
//! the built-in [`NullSink`] / [`FanoutSink`].

use crate::event::{CounterEvent, InstantEvent, SpanEvent, TrackId};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Consumer of observability events.
///
/// Sinks are single-threaded (the simulator is a discrete-event loop) and
/// receive events in emission order, which is phase order but not strictly
/// timestamp order — a phase's interior events (ring hops, per-op spans)
/// arrive before the enclosing phase span. Sinks that need time order sort
/// on export, as [`crate::ChromeTraceSink`] does.
pub trait Sink {
    /// Whether this sink wants events at all. [`SinkHandle`] caches the
    /// answer at construction; a `false` makes every emission a no-op.
    fn enabled(&self) -> bool {
        true
    }

    /// Record a completed span.
    fn span(&mut self, event: SpanEvent);

    /// Record an instantaneous marker.
    fn instant(&mut self, event: InstantEvent);

    /// Record a counter sample.
    fn counter(&mut self, event: CounterEvent);

    /// Name a track (shown as the timeline-row label in viewers). Optional.
    fn track_name(&mut self, track: TrackId, name: &str) {
        let _ = (track, name);
    }
}

/// Cheap cloneable handle to a shared sink, carried by engines and
/// executors. A disabled handle (from [`SinkHandle::null`] or a sink whose
/// [`Sink::enabled`] is `false`) holds no sink at all, so every emission is
/// a branch on `Option` and nothing more — the zero-overhead path.
#[derive(Clone, Default)]
pub struct SinkHandle {
    inner: Option<Rc<RefCell<dyn Sink>>>,
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle").field("enabled", &self.is_enabled()).finish()
    }
}

impl SinkHandle {
    /// The disabled handle: every emission is a no-op.
    pub fn null() -> Self {
        Self { inner: None }
    }

    /// Wrap an owned sink. A sink reporting [`Sink::enabled`]` == false`
    /// collapses to the null handle.
    pub fn new<S: Sink + 'static>(sink: S) -> Self {
        if sink.enabled() {
            Self { inner: Some(Rc::new(RefCell::new(sink))) }
        } else {
            Self::null()
        }
    }

    /// Wrap an externally shared sink so the caller can read results back
    /// after the run (see [`crate::ChromeTraceSink::shared`]).
    pub fn from_shared<S: Sink + 'static>(sink: Rc<RefCell<S>>) -> Self {
        Self { inner: Some(sink) }
    }

    /// Whether emissions reach a sink. Gate expensive event construction on
    /// this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit a completed span.
    pub fn span(&self, event: SpanEvent) {
        if let Some(s) = &self.inner {
            s.borrow_mut().span(event);
        }
    }

    /// Emit an instantaneous marker.
    pub fn instant(&self, event: InstantEvent) {
        if let Some(s) = &self.inner {
            s.borrow_mut().instant(event);
        }
    }

    /// Emit a counter sample.
    pub fn counter(&self, event: CounterEvent) {
        if let Some(s) = &self.inner {
            s.borrow_mut().counter(event);
        }
    }

    /// Name a track.
    pub fn track_name(&self, track: TrackId, name: &str) {
        if let Some(s) = &self.inner {
            s.borrow_mut().track_name(track, name);
        }
    }
}

/// Sink that drops everything and reports itself disabled, so a
/// [`SinkHandle`] built from it takes the no-op path. Useful as an explicit
/// "tracing off" value in APIs that require a sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn span(&mut self, _: SpanEvent) {}

    fn instant(&mut self, _: InstantEvent) {}

    fn counter(&mut self, _: CounterEvent) {}
}

/// Multiplexer: forwards every event to each child handle (e.g. a Chrome
/// trace and a metrics file from one run).
#[derive(Default)]
pub struct FanoutSink {
    children: Vec<SinkHandle>,
}

impl FanoutSink {
    /// Fan out to `children`. Disabled children are dropped up front.
    pub fn new(children: Vec<SinkHandle>) -> Self {
        Self { children: children.into_iter().filter(SinkHandle::is_enabled).collect() }
    }
}

impl Sink for FanoutSink {
    fn enabled(&self) -> bool {
        !self.children.is_empty()
    }

    fn span(&mut self, event: SpanEvent) {
        if let Some((last, rest)) = self.children.split_last() {
            for c in rest {
                c.span(event.clone());
            }
            last.span(event);
        }
    }

    fn instant(&mut self, event: InstantEvent) {
        if let Some((last, rest)) = self.children.split_last() {
            for c in rest {
                c.instant(event.clone());
            }
            last.instant(event);
        }
    }

    fn counter(&mut self, event: CounterEvent) {
        if let Some((last, rest)) = self.children.split_last() {
            for c in rest {
                c.counter(event.clone());
            }
            last.counter(event);
        }
    }

    fn track_name(&mut self, track: TrackId, name: &str) {
        for c in &self.children {
            c.track_name(track, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::ChromeTraceSink;

    #[test]
    fn null_handle_is_disabled_and_free() {
        let h = SinkHandle::null();
        assert!(!h.is_enabled());
        h.span(SpanEvent::new("x", "c", TrackId::DEFAULT, 0.0, 1.0)); // no-op
        assert!(!SinkHandle::new(NullSink).is_enabled());
        assert!(!SinkHandle::default().is_enabled());
    }

    #[test]
    fn fanout_forwards_to_all_children() {
        let a = ChromeTraceSink::shared();
        let b = ChromeTraceSink::shared();
        let fan = SinkHandle::new(FanoutSink::new(vec![
            SinkHandle::from_shared(a.clone()),
            SinkHandle::null(),
            SinkHandle::from_shared(b.clone()),
        ]));
        assert!(fan.is_enabled());
        fan.span(SpanEvent::new("s", "c", TrackId(1), 0.0, 2.0));
        fan.instant(InstantEvent::new("i", "c", TrackId(1), 1.0));
        fan.counter(CounterEvent::sample("u", TrackId(1), 1.0, "busy", 0.5));
        assert_eq!(a.borrow().len(), 3);
        assert_eq!(b.borrow().len(), 3);
    }

    #[test]
    fn fanout_of_disabled_children_is_disabled() {
        let fan = FanoutSink::new(vec![SinkHandle::null(), SinkHandle::new(NullSink)]);
        assert!(!fan.enabled());
        assert!(!SinkHandle::new(fan).is_enabled());
    }
}
