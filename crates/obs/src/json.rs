//! Minimal JSON writer used by the built-in sinks.
//!
//! The trace and metrics exporters stream their (small, fixed) shapes —
//! the trace-event array and the flat metrics map — directly into a
//! `String` instead of building a `serde_json` tree first: traces can hold
//! hundreds of thousands of events, the writer cannot fail, and the
//! output stays byte-stable across serde versions. The `serde` derives
//! remain on the event types for library consumers that want them.

/// Append `s` as a JSON string literal (quoted, escaped).
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number. `Display` for `f64` prints the shortest
/// decimal that round-trips, which is always a valid JSON number;
/// non-finite values become `null` (matching `serde_json`).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn str_of(s: &str) -> String {
        let mut out = String::new();
        write_str(&mut out, s);
        out
    }

    fn num_of(v: f64) -> String {
        let mut out = String::new();
        write_f64(&mut out, v);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(str_of("plain"), r#""plain""#);
        assert_eq!(str_of("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(str_of("a\nb\tc"), r#""a\nb\tc""#);
        assert_eq!(str_of("\u{01}"), "\"\\u0001\"");
        assert_eq!(str_of("µs ✓"), "\"µs ✓\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(num_of(0.0), "0");
        assert_eq!(num_of(1.5), "1.5");
        assert_eq!(num_of(-0.25), "-0.25");
        assert_eq!(num_of(f64::NAN), "null");
        assert_eq!(num_of(f64::INFINITY), "null");
        let v: f64 = 1234.000244140625; // exact in binary; must round-trip
        assert_eq!(num_of(v).parse::<f64>().unwrap(), v);
    }
}
