//! Flat key→value metrics sink with JSON and CSV export.
//!
//! Aggregates the event stream into the shape the `results/` pipeline
//! consumes: per-`(category, name)` span totals and counts, last-value
//! counters, instant counts, plus caller-supplied summary metrics. Keys are
//! dotted paths (`span.<category>.<name>.total_ns`), stable and sorted, so
//! diffs between runs are line diffs.

use crate::event::{ArgValue, CounterEvent, InstantEvent, SpanEvent};
use crate::sink::Sink;
use crate::ObsError;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

#[derive(Debug, Default, Clone, PartialEq)]
struct SpanAccum {
    count: u64,
    total_ns: f64,
    /// Sums of numeric span arguments (e.g. `energy_pj`, `bytes`).
    arg_sums: BTreeMap<String, f64>,
}

/// Sink that folds the event stream into flat metrics.
#[derive(Debug, Default)]
pub struct MetricsSink {
    spans: BTreeMap<(String, String), SpanAccum>,
    counters: BTreeMap<String, f64>,
    instants: BTreeMap<String, u64>,
    extra: BTreeMap<String, f64>,
}

impl MetricsSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty sink behind the shared handle plumbing (see
    /// [`crate::ChromeTraceSink::shared`]).
    pub fn shared() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Self::new()))
    }

    /// Record a summary metric under a verbatim key (e.g. final `SimStats`
    /// figures the caller computed outside the event stream).
    pub fn push_metric(&mut self, key: impl Into<String>, value: f64) {
        self.extra.insert(key.into(), value);
    }

    /// Fold another sink's aggregates into this one.
    ///
    /// Merging per-job sinks **in submission order** reproduces exactly
    /// what one shared sink would have recorded from a serial run over the
    /// same jobs: span counts/totals/argument sums add, counters keep the
    /// last merged value (serial last-write-wins), instant counts add, and
    /// summary metrics keep the last merged value.
    pub fn merge(&mut self, other: MetricsSink) {
        for (key, incoming) in other.spans {
            let a = self.spans.entry(key).or_default();
            a.count += incoming.count;
            a.total_ns += incoming.total_ns;
            for (arg, sum) in incoming.arg_sums {
                *a.arg_sums.entry(arg).or_default() += sum;
            }
        }
        for (name, value) in other.counters {
            self.counters.insert(name, value);
        }
        for (name, count) in other.instants {
            *self.instants.entry(name).or_default() += count;
        }
        for (key, value) in other.extra {
            self.extra.insert(key, value);
        }
    }

    /// The flat, sorted `key → value` view of everything recorded.
    pub fn to_flat(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for ((category, name), a) in &self.spans {
            let base = format!("span.{category}.{name}");
            out.insert(format!("{base}.count"), a.count as f64);
            out.insert(format!("{base}.total_ns"), a.total_ns);
            for (arg, sum) in &a.arg_sums {
                out.insert(format!("{base}.{arg}"), *sum);
            }
        }
        for (name, value) in &self.counters {
            out.insert(format!("counter.{name}"), *value);
        }
        for (name, count) in &self.instants {
            out.insert(format!("event.{name}.count"), *count as f64);
        }
        for (key, value) in &self.extra {
            out.insert(key.clone(), *value);
        }
        out
    }

    /// Serialize the flat metrics as a pretty JSON object.
    ///
    /// # Errors
    ///
    /// Reserved for fallible exporters; the built-in writer always
    /// returns `Ok`.
    pub fn to_json_string(&self) -> Result<String, ObsError> {
        let flat = self.to_flat();
        let mut out = String::from("{");
        for (i, (key, value)) in flat.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            crate::json::write_str(&mut out, key);
            out.push_str(": ");
            crate::json::write_f64(&mut out, *value);
        }
        if !flat.is_empty() {
            out.push('\n');
        }
        out.push('}');
        Ok(out)
    }

    /// Render the flat metrics as `metric,value` CSV lines (with header).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (k, v) in self.to_flat() {
            out.push_str(&format!("{k},{v}\n"));
        }
        out
    }

    /// Serialize and write to `path`: CSV when the extension is `.csv`,
    /// JSON otherwise.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), ObsError> {
        let path = path.as_ref();
        let text = if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("csv")) {
            self.to_csv_string()
        } else {
            self.to_json_string()?
        };
        std::fs::write(path, text).map_err(ObsError::from)
    }
}

impl Sink for MetricsSink {
    fn span(&mut self, event: SpanEvent) {
        let a = self.spans.entry((event.category, event.name)).or_default();
        a.count += 1;
        a.total_ns += event.dur_ns;
        for (key, value) in event.args {
            if let ArgValue::Num(v) = value {
                *a.arg_sums.entry(key).or_default() += v;
            }
        }
    }

    fn instant(&mut self, event: InstantEvent) {
        *self.instants.entry(event.name).or_default() += 1;
    }

    fn counter(&mut self, event: CounterEvent) {
        for (series, value) in event.values {
            self.counters.insert(format!("{}.{series}", event.name), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TrackId;

    fn filled() -> MetricsSink {
        let mut m = MetricsSink::new();
        m.span(
            SpanEvent::new("fc", "arithmetic", TrackId(1), 0.0, 10.0).with_arg("energy_pj", 3.0),
        );
        m.span(
            SpanEvent::new("fc", "arithmetic", TrackId(1), 10.0, 5.0).with_arg("energy_pj", 2.0),
        );
        m.span(SpanEvent::new("attn", "data-movement", TrackId(1), 15.0, 7.0));
        m.instant(InstantEvent::new("ring-step", "ring", TrackId(2), 1.0));
        m.counter(CounterEvent::sample("util", TrackId(3), 2.0, "busy", 0.5));
        m.counter(CounterEvent::sample("util", TrackId(3), 4.0, "busy", 0.75));
        m.push_metric("sim.latency_ns", 22.0);
        m
    }

    #[test]
    fn aggregates_spans_by_category_and_name() {
        let flat = filled().to_flat();
        assert_eq!(flat["span.arithmetic.fc.count"], 2.0);
        assert_eq!(flat["span.arithmetic.fc.total_ns"], 15.0);
        assert_eq!(flat["span.arithmetic.fc.energy_pj"], 5.0);
        assert_eq!(flat["span.data-movement.attn.total_ns"], 7.0);
        assert_eq!(flat["event.ring-step.count"], 1.0);
        assert_eq!(flat["counter.util.busy"], 0.75); // last value wins
        assert_eq!(flat["sim.latency_ns"], 22.0);
    }

    #[test]
    fn merging_split_streams_matches_one_shared_sink() {
        // Split the event stream of `filled()` across two per-job sinks;
        // merging them in submission order must reproduce the shared sink.
        let mut first = MetricsSink::new();
        first.span(
            SpanEvent::new("fc", "arithmetic", TrackId(1), 0.0, 10.0).with_arg("energy_pj", 3.0),
        );
        first.counter(CounterEvent::sample("util", TrackId(3), 2.0, "busy", 0.5));
        let mut second = MetricsSink::new();
        second.span(
            SpanEvent::new("fc", "arithmetic", TrackId(1), 10.0, 5.0).with_arg("energy_pj", 2.0),
        );
        second.span(SpanEvent::new("attn", "data-movement", TrackId(1), 15.0, 7.0));
        second.instant(InstantEvent::new("ring-step", "ring", TrackId(2), 1.0));
        second.counter(CounterEvent::sample("util", TrackId(3), 4.0, "busy", 0.75));
        second.push_metric("sim.latency_ns", 22.0);

        let mut merged = MetricsSink::new();
        merged.merge(first);
        merged.merge(second);
        assert_eq!(merged.to_flat(), filled().to_flat());
        // Counter order matters: the later job's value wins, as in serial.
        assert_eq!(merged.to_flat()["counter.util.busy"], 0.75);
    }

    #[test]
    fn json_export_parses_back() {
        let json = filled().to_json_string().unwrap();
        let v: BTreeMap<String, f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(v, filled().to_flat());
    }

    #[test]
    fn csv_has_header_and_one_line_per_metric() {
        let m = filled();
        let csv = m.to_csv_string();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "metric,value");
        assert_eq!(lines.len(), 1 + m.to_flat().len());
        assert!(lines.iter().any(|l| l.starts_with("span.arithmetic.fc.total_ns,")));
    }
}
