//! Chrome-tracing / Perfetto JSON sink.
//!
//! Produces the JSON-array flavor of the [trace-event format] that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: complete spans (`ph: "X"`), instants (`ph: "i"`), counters
//! (`ph: "C"`), and thread-name metadata (`ph: "M"`). Timestamps are
//! exported in microseconds, in non-decreasing order.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{ArgValue, CounterEvent, InstantEvent, SpanEvent, TrackId};
use crate::json;
use crate::sink::Sink;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One serialized trace-event-format record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Comma-separated category list.
    pub cat: String,
    /// Phase: `X` (complete), `i` (instant), `C` (counter), `M` (metadata).
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (complete spans only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub dur: Option<f64>,
    /// Process id (the simulator is one process).
    pub pid: u32,
    /// Thread id — the [`TrackId`] of the emitting timeline.
    pub tid: u64,
    /// Event arguments.
    #[serde(skip_serializing_if = "BTreeMap::is_empty", default)]
    pub args: BTreeMap<String, ArgValue>,
}

impl ChromeEvent {
    /// Append this record as one trace-event JSON object (the shape the
    /// serde derive produces: optional fields omitted when empty).
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("{\"name\":");
        json::write_str(out, &self.name);
        out.push_str(",\"cat\":");
        json::write_str(out, &self.cat);
        out.push_str(",\"ph\":");
        json::write_str(out, &self.ph);
        out.push_str(",\"ts\":");
        json::write_f64(out, self.ts);
        if let Some(dur) = self.dur {
            out.push_str(",\"dur\":");
            json::write_f64(out, dur);
        }
        let _ = write!(out, ",\"pid\":{},\"tid\":{}", self.pid, self.tid);
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(out, key);
                out.push(':');
                match value {
                    ArgValue::Num(n) => json::write_f64(out, *n),
                    ArgValue::Str(s) => json::write_str(out, s),
                }
            }
            out.push('}');
        }
        out.push('}');
    }
}

const PID: u32 = 1;
const NS_PER_US: f64 = 1000.0;

fn args_map(args: Vec<(String, ArgValue)>) -> BTreeMap<String, ArgValue> {
    args.into_iter().collect()
}

/// Sink that accumulates trace-event records and serializes them as one
/// JSON array. Costs memory proportional to the event count; attach it only
/// when a trace was requested.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<ChromeEvent>,
}

impl ChromeTraceSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty sink behind the shared handle plumbing: keep the returned
    /// `Rc` to read the trace back after the run, and pass
    /// `SinkHandle::from_shared(rc.clone())` to the simulation.
    pub fn shared() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(Self::new()))
    }

    /// Append another sink's events after this one's.
    ///
    /// Absorbing per-job sinks **in submission order** reproduces the
    /// event sequence one shared sink would have recorded from a serial
    /// run: [`sorted_events`](Self::sorted_events) sorts stably, so
    /// records with equal `(ts, tid)` keep their append order.
    pub fn absorb(&mut self, other: ChromeTraceSink) {
        self.events.extend(other.events);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, sorted by timestamp (then track), with
    /// metadata records first.
    pub fn sorted_events(&self) -> Vec<ChromeEvent> {
        let mut out = self.events.clone();
        out.sort_by(|a, b| {
            let meta = |e: &ChromeEvent| u8::from(e.ph != "M");
            meta(a)
                .cmp(&meta(b))
                .then(a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.tid.cmp(&b.tid))
        });
        out
    }

    /// Serialize the trace as a JSON array document. The built-in writer
    /// streams the events into one string and cannot fail; the `Result`
    /// keeps serialization failures in the signature for callers that
    /// swap in a fallible exporter.
    ///
    /// # Errors
    ///
    /// Reserved for fallible exporters; the built-in writer always
    /// returns `Ok`.
    pub fn to_json_string(&self) -> Result<String, crate::ObsError> {
        let events = self.sorted_events();
        let mut out = String::with_capacity(events.len() * 96 + 2);
        out.push('[');
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.write_json(&mut out);
        }
        out.push(']');
        Ok(out)
    }

    /// Serialize and write the trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), crate::ObsError> {
        std::fs::write(path, self.to_json_string()?).map_err(crate::ObsError::from)
    }
}

impl Sink for ChromeTraceSink {
    fn span(&mut self, event: SpanEvent) {
        self.events.push(ChromeEvent {
            name: event.name,
            cat: event.category,
            ph: "X".into(),
            ts: event.start_ns / NS_PER_US,
            dur: Some(event.dur_ns / NS_PER_US),
            pid: PID,
            tid: event.track.0,
            args: args_map(event.args),
        });
    }

    fn instant(&mut self, event: InstantEvent) {
        self.events.push(ChromeEvent {
            name: event.name,
            cat: event.category,
            ph: "i".into(),
            ts: event.ts_ns / NS_PER_US,
            dur: None,
            pid: PID,
            tid: event.track.0,
            args: args_map(event.args),
        });
    }

    fn counter(&mut self, event: CounterEvent) {
        self.events.push(ChromeEvent {
            name: event.name,
            cat: "counter".into(),
            ph: "C".into(),
            ts: event.ts_ns / NS_PER_US,
            dur: None,
            pid: PID,
            tid: event.track.0,
            args: event.values.into_iter().map(|(k, v)| (k, ArgValue::Num(v))).collect(),
        });
    }

    fn track_name(&mut self, track: TrackId, name: &str) {
        self.events.push(ChromeEvent {
            name: "thread_name".into(),
            cat: "__metadata".into(),
            ph: "M".into(),
            ts: 0.0,
            dur: None,
            pid: PID,
            tid: track.0,
            args: std::iter::once(("name".to_owned(), ArgValue::Str(name.to_owned()))).collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> ChromeTraceSink {
        let mut s = ChromeTraceSink::new();
        s.track_name(TrackId(2), "arithmetic");
        s.span(
            SpanEvent::new("fc", "arithmetic", TrackId(2), 2000.0, 1000.0)
                .with_arg("energy_pj", 7.0),
        );
        s.span(SpanEvent::new("attn", "data-movement", TrackId(1), 0.0, 2000.0));
        s.counter(CounterEvent::sample("util", TrackId(3), 500.0, "busy", 0.25));
        s.instant(InstantEvent::new("mark", "ring", TrackId(4), 1500.0));
        s
    }

    #[test]
    fn exports_parseable_sorted_json() {
        let s = filled();
        let json = s.to_json_string().unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 5);
        // Metadata first, then non-decreasing timestamps.
        assert_eq!(events[0]["ph"], "M");
        let ts: Vec<f64> = events[1..].iter().map(|e| e["ts"].as_f64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be sorted: {ts:?}");
    }

    #[test]
    fn span_units_are_microseconds() {
        let s = filled();
        let events = s.sorted_events();
        let fc = events.iter().find(|e| e.name == "fc").unwrap();
        assert_eq!(fc.ts, 2.0);
        assert_eq!(fc.dur, Some(1.0));
        assert_eq!(fc.args["energy_pj"], ArgValue::Num(7.0));
    }

    #[test]
    fn roundtrips_through_serde() {
        let s = filled();
        let json = s.to_json_string().unwrap();
        let back: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s.sorted_events());
    }

    #[test]
    fn absorbing_split_streams_matches_one_shared_sink() {
        let mut first = ChromeTraceSink::new();
        first.track_name(TrackId(2), "arithmetic");
        first.span(
            SpanEvent::new("fc", "arithmetic", TrackId(2), 2000.0, 1000.0)
                .with_arg("energy_pj", 7.0),
        );
        let mut second = ChromeTraceSink::new();
        second.span(SpanEvent::new("attn", "data-movement", TrackId(1), 0.0, 2000.0));
        second.counter(CounterEvent::sample("util", TrackId(3), 500.0, "busy", 0.25));
        second.instant(InstantEvent::new("mark", "ring", TrackId(4), 1500.0));

        let mut merged = ChromeTraceSink::new();
        merged.absorb(first);
        merged.absorb(second);
        assert_eq!(merged.to_json_string().unwrap(), filled().to_json_string().unwrap());
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        assert_eq!(ChromeTraceSink::new().to_json_string().unwrap(), "[]");
    }
}
