//! Scoped std-thread job pool for the evaluation grid and functional
//! kernels.
//!
//! The offline build forbids third-party crates (no rayon), so this is a
//! deliberately small parallel layer on `std::thread::scope`:
//!
//! * **Chunked work queue** — jobs sit behind a mutex; idle workers pull
//!   the next one, so uneven cell costs (a 6144-token Pegasus-Arxiv cell
//!   next to a 512-token IMDb cell) load-balance automatically.
//! * **Deterministic result ordering** — results land in a slot indexed by
//!   submission order, so [`run`]`(1, jobs)` and [`run`]`(16, jobs)` return
//!   identical vectors and downstream JSON/CSV output is byte-identical.
//! * **Panic propagation** — a panicking job unwinds out of [`run`] on the
//!   caller's thread with the original payload (via `std::thread::scope`'s
//!   join semantics), never a silent hang or a lost result.
//! * **Thread-count control** — callers pass an explicit count (bench
//!   binaries wire `--jobs N` through); [`max_threads`] resolves the
//!   default from `TRANSPIM_THREADS` or `available_parallelism()`.
//!
//! `threads == 1` (or a single job) runs inline on the caller's thread —
//! the serial path *is* the parallel path with no workers, which is what
//! makes the determinism guarantee trivial to audit.

use std::sync::{Mutex, PoisonError};

/// Default worker count: `TRANSPIM_THREADS` if set to a positive integer,
/// else [`std::thread::available_parallelism`], else 1.
pub fn max_threads() -> usize {
    threads_from(std::env::var("TRANSPIM_THREADS").ok().as_deref())
}

/// [`max_threads`] with the environment value passed explicitly (testable).
pub fn threads_from(env: Option<&str>) -> usize {
    if let Some(v) = env {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `jobs` on up to `threads` workers and return their results **in
/// submission order**.
///
/// Workers pull jobs from a shared queue (dynamic load balancing); each
/// result is stored by its submission index, so the output vector is
/// independent of scheduling. With `threads <= 1` or fewer than two jobs
/// everything runs inline on the caller's thread.
///
/// # Panics
///
/// Re-raises the panic of any panicking job after all workers have joined.
pub fn run<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = jobs.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }

    let queue = Mutex::new(jobs.into_iter().enumerate());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    // A panicking sibling poisons the queue mutex mid-drain;
                    // recover the guard so the panic that reaches the caller
                    // is the job's own payload, not a PoisonError.
                    let next = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                    let Some((index, job)) = next else { break };
                    let value = job();
                    *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                })
            })
            .collect();
        // Join explicitly and re-raise the original payload — letting the
        // scope do the join would replace it with "a scoped thread
        // panicked". All workers are joined before re-raising.
        let mut panic_payload = None;
        for worker in workers {
            if let Err(payload) = worker.join() {
                panic_payload.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("scope joined all workers, so every job ran")
        })
        .collect()
}

/// [`run`] with [`max_threads`] workers.
pub fn run_default<T, F>(jobs: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    run(max_threads(), jobs)
}

/// Split `0..len` into at most `pieces` contiguous ranges of near-equal
/// length, in ascending order. Returns fewer pieces when `len < pieces`;
/// empty for `len == 0`.
pub fn chunk_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.clamp(1, len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / pieces;
    let extra = len % pieces;
    let mut ranges = Vec::with_capacity(pieces);
    let mut start = 0;
    for p in 0..pieces {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Apply `f` to contiguous mutable chunks of `data`, `chunk_len` elements
/// each (last chunk may be shorter), in parallel over the shared queue.
/// `f` receives the chunk's starting element index.
pub fn for_each_chunk_mut<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let f = &f;
    let jobs: Vec<_> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| move || f(i * chunk_len, chunk))
        .collect();
    run(threads, jobs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_queue_returns_empty() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert_eq!(run(8, jobs), Vec::<u32>::new());
    }

    #[test]
    fn single_job_runs_inline() {
        let caller = std::thread::current().id();
        let out = run(8, vec![move || std::thread::current().id() == caller]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn results_keep_submission_order() {
        // Jobs finish in scrambled wall-clock order; results must not.
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
                    i * i
                }
            })
            .collect();
        let out = run(8, jobs);
        assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let make = || (0..40u32).map(|i| move || i.wrapping_mul(2654435761)).collect::<Vec<_>>();
        assert_eq!(run(1, make()), run(8, make()));
    }

    #[test]
    fn panic_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            run(
                4,
                (0..8)
                    .map(|i| move || if i == 5 { panic!("job five failed") } else { i })
                    .collect::<Vec<_>>(),
            )
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job five failed"), "unexpected payload: {msg}");
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..100).map(|_| || counter.fetch_add(1, Ordering::Relaxed)).collect();
        let out = run(7, jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        let mut seen: Vec<_> = out;
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        // Invalid or non-positive values fall back to machine parallelism.
        let fallback = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(threads_from(Some("0")), fallback);
        assert_eq!(threads_from(Some("lots")), fallback);
        assert_eq!(threads_from(None), fallback);
    }

    #[test]
    fn chunk_ranges_cover_everything() {
        assert_eq!(chunk_ranges(0, 4), vec![]);
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(2, 8), vec![0..1, 1..2]);
        let ranges = chunk_ranges(1000, 7);
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(1000));
        assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
    }

    #[test]
    fn chunked_mutation_touches_every_element() {
        let mut data = vec![0u32; 103];
        for_each_chunk_mut(4, &mut data, 10, |start, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = (start + off) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
    }
}
