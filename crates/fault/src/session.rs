//! Run-time fault sessions: a validated scenario bound to a concrete
//! system, with deterministic flip draws and degradation accounting.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use transpim_pim::ecc::EccScheme;

use crate::scenario::{Fault, FaultError, FaultScenario};

/// The slice of the machine geometry a session validates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemInfo {
    pub total_banks: u32,
    pub total_groups: u32,
    pub subarrays_per_bank: u32,
}

/// Degraded-mode accounting attached to a `SimReport`.
///
/// `overhead_latency_ns`/`overhead_energy_pj` are the *incremental* cost of
/// degradation accumulated lump by lump (ECC checks, retries, corrections,
/// stuck-plane serialization, divider fallback) — for scenarios that do not
/// change the program shape (no failed banks, no link faults) the degraded
/// run equals the fault-free run plus exactly this overhead.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Individual fault events injected (static faults + drawn flips).
    pub injected: u64,
    /// Events the machine noticed (BIST for static faults, ECC for flips).
    pub detected: u64,
    /// Events absorbed by a degradation policy or ECC correction.
    pub corrected: u64,
    /// Events no policy could absorb (the run surfaces a `SimError`).
    pub uncorrectable: u64,
    /// Static fault inventory, for the report reader.
    pub failed_banks: u32,
    pub stuck_planes: u32,
    pub dead_links: u32,
    pub degraded_links: u32,
    pub broken_dividers: u32,
    /// Incremental latency added by degradation, in scaled engine time.
    pub overhead_latency_ns: f64,
    /// Incremental energy added by degradation.
    pub overhead_energy_pj: f64,
}

/// What happened to the flips drawn on one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipOutcome {
    /// No flip on this transfer.
    None,
    /// SECDED repaired the flips in place; price a per-flip correction.
    Corrected(u64),
    /// Parity detected the flips; price one bounded retry of the transfer.
    Retry(u64),
    /// Unprotected flips: the run must surface an error.
    Uncorrectable(u64),
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const BYTES_PER_GIB: f64 = (1u64 << 30) as f64;

/// A validated fault scenario bound to a machine, ready to be consulted by
/// the executor while pricing a program.
///
/// The session is deliberately *not* shared between runs: each simulated
/// cell builds its own session from the scenario, so the flip stream is a
/// pure function of `(seed, lump sequence)` and results are independent of
/// job count and scheduling order.
#[derive(Debug, Clone)]
pub struct FaultSession {
    seed: u64,
    draws: u64,
    ecc: EccScheme,
    flip_per_gib: f64,
    failed_banks: BTreeSet<u32>,
    stuck: BTreeMap<u32, u32>,
    dead_links: BTreeSet<u32>,
    degraded_links: BTreeMap<u32, f64>,
    broken_dividers: BTreeSet<u32>,
    sys: SystemInfo,
    empty: bool,
    injected: u64,
    detected: u64,
    corrected: u64,
    uncorrectable: u64,
    overhead_latency_ns: f64,
    overhead_energy_pj: f64,
    track_named: bool,
}

impl FaultSession {
    /// Validate `scenario` against `sys` and build a session.
    ///
    /// # Errors
    ///
    /// [`FaultError::Invalid`] when a fault references hardware outside the
    /// geometry or carries a nonsensical parameter;
    /// [`FaultError::Uncorrectable`] when the static faults alone already
    /// exceed every degradation policy (every bank failed, or every
    /// subarray of a bank stuck).
    pub fn new(scenario: &FaultScenario, sys: SystemInfo) -> Result<Self, FaultError> {
        if sys.total_banks == 0 || sys.subarrays_per_bank == 0 {
            return Err(FaultError::Invalid("degenerate system geometry".into()));
        }
        let mut s = Self {
            seed: splitmix64(scenario.seed),
            draws: 0,
            ecc: scenario.ecc,
            flip_per_gib: 0.0,
            failed_banks: BTreeSet::new(),
            stuck: BTreeMap::new(),
            dead_links: BTreeSet::new(),
            degraded_links: BTreeMap::new(),
            broken_dividers: BTreeSet::new(),
            sys,
            empty: scenario.is_empty(),
            injected: 0,
            detected: 0,
            corrected: 0,
            uncorrectable: 0,
            overhead_latency_ns: 0.0,
            overhead_energy_pj: 0.0,
            track_named: false,
        };
        for fault in &scenario.faults {
            match *fault {
                Fault::FailedBank { bank } => {
                    s.check_bank(bank)?;
                    s.failed_banks.insert(bank);
                }
                Fault::StuckBitPlanes { bank, planes } => {
                    s.check_bank(bank)?;
                    if planes == 0 {
                        return Err(FaultError::Invalid(format!(
                            "StuckBitPlanes on bank {bank} with zero planes"
                        )));
                    }
                    let total = s.stuck.entry(bank).or_insert(0);
                    *total = total.saturating_add(planes);
                    if *total >= sys.subarrays_per_bank {
                        return Err(FaultError::Uncorrectable(format!(
                            "all {} subarrays of bank {bank} have stuck bit-planes",
                            sys.subarrays_per_bank
                        )));
                    }
                }
                Fault::DeadLink { group } => {
                    s.check_group(group)?;
                    s.degraded_links.remove(&group);
                    s.dead_links.insert(group);
                }
                Fault::DegradedLink { group, factor } => {
                    s.check_group(group)?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(FaultError::Invalid(format!(
                            "DegradedLink factor {factor} outside (0, 1]"
                        )));
                    }
                    if !s.dead_links.contains(&group) {
                        // Two degradations on one link compound.
                        let f = s.degraded_links.entry(group).or_insert(1.0);
                        *f *= factor;
                    }
                }
                Fault::TransientFlips { per_gib } => {
                    if !(per_gib.is_finite() && per_gib >= 0.0) {
                        return Err(FaultError::Invalid(format!(
                            "TransientFlips rate {per_gib} must be finite and non-negative"
                        )));
                    }
                    s.flip_per_gib += per_gib;
                }
                Fault::BrokenDivider { bank } => {
                    s.check_bank(bank)?;
                    s.broken_dividers.insert(bank);
                }
            }
        }
        if s.failed_banks.len() as u32 >= sys.total_banks {
            return Err(FaultError::Uncorrectable(format!(
                "all {} banks failed; no pool left to re-shard onto",
                sys.total_banks
            )));
        }
        // Static faults are found by power-on self-test: each is injected,
        // detected, and — since the session built — absorbed by a policy.
        let static_faults = (s.failed_banks.len()
            + s.stuck.len()
            + s.dead_links.len()
            + s.degraded_links.len()
            + s.broken_dividers.len()) as u64;
        s.injected = static_faults;
        s.detected = static_faults;
        s.corrected = static_faults;
        Ok(s)
    }

    fn check_bank(&self, bank: u32) -> Result<(), FaultError> {
        if bank >= self.sys.total_banks {
            return Err(FaultError::Invalid(format!(
                "bank {bank} out of range ({} banks)",
                self.sys.total_banks
            )));
        }
        Ok(())
    }

    fn check_group(&self, group: u32) -> Result<(), FaultError> {
        if group >= self.sys.total_groups {
            return Err(FaultError::Invalid(format!(
                "group {group} out of range ({} groups)",
                self.sys.total_groups
            )));
        }
        Ok(())
    }

    /// True when the originating scenario perturbs nothing; such a session
    /// leaves every priced lump untouched.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    pub fn ecc(&self) -> EccScheme {
        self.ecc
    }

    /// Per-transfer bandwidth tax of the ECC check bits.
    pub fn ecc_overhead_fraction(&self) -> f64 {
        self.ecc.overhead_fraction()
    }

    pub fn failed_banks(&self) -> &BTreeSet<u32> {
        &self.failed_banks
    }

    pub fn failed_bank_count(&self) -> u32 {
        self.failed_banks.len() as u32
    }

    pub fn dead_links(&self) -> &BTreeSet<u32> {
        &self.dead_links
    }

    pub fn degraded_links(&self) -> &BTreeMap<u32, f64> {
        &self.degraded_links
    }

    pub fn broken_dividers(&self) -> &BTreeSet<u32> {
        &self.broken_dividers
    }

    /// Fraction of banks whose ACU divider is broken.
    pub fn broken_divider_fraction(&self) -> f64 {
        self.broken_dividers.len() as f64 / f64::from(self.sys.total_banks)
    }

    /// Latency multiplier (>= 1) for in-memory arithmetic: banks run in
    /// lockstep, so the bank with the most fenced-off subarrays gates every
    /// phase — work serializes over its surviving subarrays.
    pub fn pim_slowdown(&self) -> f64 {
        let worst = self.stuck.values().copied().max().unwrap_or(0);
        if worst == 0 {
            return 1.0;
        }
        f64::from(self.sys.subarrays_per_bank) / f64::from(self.sys.subarrays_per_bank - worst)
    }

    /// Deterministically draw transient flips for a transfer of `bytes`
    /// and classify them under the session's ECC scheme.
    pub fn observe_transfer(&mut self, bytes: f64) -> FlipOutcome {
        if self.flip_per_gib <= 0.0 || bytes <= 0.0 {
            return FlipOutcome::None;
        }
        let expected = bytes * self.flip_per_gib / BYTES_PER_GIB;
        let base = expected.floor();
        self.draws = self.draws.wrapping_add(1);
        let h = splitmix64(self.seed ^ self.draws);
        // 53 uniform mantissa bits → [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let flips = base as u64 + u64::from(u < expected - base);
        if flips == 0 {
            return FlipOutcome::None;
        }
        self.injected += flips;
        // Flips on distinct transfers land in distinct words, so each is a
        // single-bit-per-word event for the ECC capability check.
        if self.ecc.can_correct(1) {
            self.detected += flips;
            self.corrected += flips;
            FlipOutcome::Corrected(flips)
        } else if self.ecc.can_detect(1) {
            self.detected += flips;
            self.corrected += flips; // absorbed by the bounded retry
            FlipOutcome::Retry(flips)
        } else {
            self.uncorrectable += flips;
            FlipOutcome::Uncorrectable(flips)
        }
    }

    /// Record incremental degradation cost (already in scaled engine time).
    pub fn add_overhead(&mut self, latency_ns: f64, energy_pj: f64) {
        self.overhead_latency_ns += latency_ns;
        self.overhead_energy_pj += energy_pj;
    }

    /// Returns true exactly once, for naming the fault trace track lazily
    /// (so fault-free traces stay byte-identical).
    pub fn mark_fault_track_named(&mut self) -> bool {
        if self.track_named {
            return false;
        }
        self.track_named = true;
        true
    }

    /// Snapshot the accounting for a `SimReport`.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected: self.injected,
            detected: self.detected,
            corrected: self.corrected,
            uncorrectable: self.uncorrectable,
            failed_banks: self.failed_banks.len() as u32,
            stuck_planes: self.stuck.values().sum(),
            dead_links: self.dead_links.len() as u32,
            degraded_links: self.degraded_links.len() as u32,
            broken_dividers: self.broken_dividers.len() as u32,
            overhead_latency_ns: self.overhead_latency_ns,
            overhead_energy_pj: self.overhead_energy_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemInfo {
        SystemInfo { total_banks: 32, total_groups: 8, subarrays_per_bank: 64 }
    }

    fn session(faults: Vec<Fault>, ecc: EccScheme) -> Result<FaultSession, FaultError> {
        FaultSession::new(&FaultScenario { seed: 7, ecc, faults }, sys())
    }

    #[test]
    fn out_of_range_faults_are_invalid() {
        for fault in [
            Fault::FailedBank { bank: 32 },
            Fault::StuckBitPlanes { bank: 99, planes: 1 },
            Fault::DeadLink { group: 8 },
            Fault::BrokenDivider { bank: 1000 },
        ] {
            let err = session(vec![fault], EccScheme::None).expect_err("must be rejected");
            assert!(matches!(err, FaultError::Invalid(_)), "{err}");
        }
        let err = session(vec![Fault::DegradedLink { group: 0, factor: 0.0 }], EccScheme::None)
            .expect_err("zero factor rejected");
        assert!(matches!(err, FaultError::Invalid(_)));
    }

    #[test]
    fn exhausted_hardware_is_uncorrectable_at_build() {
        let all = (0..32).map(|b| Fault::FailedBank { bank: b }).collect();
        let err = session(all, EccScheme::None).expect_err("no pool left");
        assert!(matches!(err, FaultError::Uncorrectable(_)));
        let err = session(vec![Fault::StuckBitPlanes { bank: 0, planes: 64 }], EccScheme::None)
            .expect_err("whole bank stuck");
        assert!(matches!(err, FaultError::Uncorrectable(_)));
    }

    #[test]
    fn slowdown_is_gated_by_the_worst_bank() {
        let s = session(
            vec![
                Fault::StuckBitPlanes { bank: 0, planes: 16 },
                Fault::StuckBitPlanes { bank: 1, planes: 32 },
            ],
            EccScheme::None,
        )
        .expect("valid");
        assert!((s.pim_slowdown() - 2.0).abs() < 1e-12); // 64 / (64 - 32)
    }

    #[test]
    fn flip_stream_is_deterministic_and_ecc_dependent() {
        let faults = vec![Fault::TransientFlips { per_gib: 8.0 }];
        let mut a = session(faults.clone(), EccScheme::Secded).expect("valid");
        let mut b = session(faults.clone(), EccScheme::Secded).expect("valid");
        let seq_a: Vec<_> = (0..64).map(|_| a.observe_transfer((512u64 << 20) as f64)).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.observe_transfer((512u64 << 20) as f64)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same draws");
        assert!(seq_a.iter().any(|o| matches!(o, FlipOutcome::Corrected(_))));
        assert!(!seq_a.iter().any(|o| matches!(o, FlipOutcome::Uncorrectable(_))));

        let mut none = session(faults, EccScheme::None).expect("valid");
        let outcomes: Vec<_> =
            (0..64).map(|_| none.observe_transfer((512u64 << 20) as f64)).collect();
        assert!(outcomes.iter().any(|o| matches!(o, FlipOutcome::Uncorrectable(_))));
    }

    #[test]
    fn static_faults_are_counted_as_detected_and_corrected() {
        let s = session(
            vec![
                Fault::FailedBank { bank: 3 },
                Fault::DeadLink { group: 2 },
                Fault::DegradedLink { group: 1, factor: 0.5 },
                Fault::BrokenDivider { bank: 9 },
            ],
            EccScheme::None,
        )
        .expect("valid");
        let stats = s.stats();
        assert_eq!(stats.injected, 4);
        assert_eq!(stats.detected, 4);
        assert_eq!(stats.corrected, 4);
        assert_eq!(stats.uncorrectable, 0);
        assert_eq!(stats.failed_banks, 1);
        assert_eq!(stats.dead_links, 1);
        assert_eq!(stats.degraded_links, 1);
        assert_eq!(stats.broken_dividers, 1);
    }

    #[test]
    fn dead_link_supersedes_degraded_link() {
        let s = session(
            vec![
                Fault::DegradedLink { group: 2, factor: 0.5 },
                Fault::DeadLink { group: 2 },
                Fault::DegradedLink { group: 2, factor: 0.25 },
            ],
            EccScheme::None,
        )
        .expect("valid");
        assert!(s.dead_links().contains(&2));
        assert!(s.degraded_links().is_empty());
    }
}
