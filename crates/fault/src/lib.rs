//! Deterministic fault injection and graceful degradation for TransPIM.
//!
//! Production memory systems do not get to panic on a bit flip. This crate
//! models the failure surface a deployed TransPIM inherits from HBM2 —
//! failed banks, stuck bit-planes inside subarrays, degraded or dead ring
//! links between neighboring banks, transient data-buffer flips, and broken
//! ACU dividers — as serde-able, seeded [`scenario::FaultScenario`]s, and
//! turns a scenario into a [`session::FaultSession`]: the mutable run-time
//! object the executor consults while pricing a program.
//!
//! Degradation is priced with the paper's own mechanisms:
//!
//! * failed banks → token re-sharding over the surviving pool
//!   (`dataflow::sharding`),
//! * dead ring links → the Figure 9 fallback from the dedicated neighbor
//!   link (3T) to the shared channel bus (8T) (`hbm::resource` routing),
//! * stuck bit-planes → fewer usable subarrays, so in-memory arithmetic
//!   serializes and slows down,
//! * broken dividers → the ACU Softmax division falls back to the
//!   in-array Newton–Raphson reciprocal of the PIM-only baseline,
//! * transient flips → priced through the [`transpim_pim::ecc`] model:
//!   SECDED corrects in place, parity detects and forces one bounded
//!   retry of the transfer, and an unprotected flip surfaces as an
//!   uncorrectable fault instead of silent corruption.
//!
//! Everything is deterministic: the session draws flips from a counter-based
//! splitmix64 stream seeded by the scenario, so the same seed and scenario
//! produce byte-identical reports regardless of job count or scheduling.

#![deny(clippy::unwrap_used)]

pub mod scenario;
pub mod session;

pub use scenario::{Fault, FaultError, FaultScenario};
pub use session::{FaultSession, FaultStats, FlipOutcome, SystemInfo};
// Scenarios name their ECC scheme; re-export it so scenario builders need
// only this crate.
pub use transpim_pim::ecc::EccScheme;
