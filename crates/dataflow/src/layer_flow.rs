//! The layer-based baseline dataflow (Section II-C).
//!
//! Prior memory-based DNN accelerators schedule at layer granularity: the
//! whole memory processes one layer at a time, so *all* of a layer's
//! operands are loaded (and duplicated for parallelism) before compute, and
//! every intermediate result is written back and re-distributed for the
//! next layer. For attention this is expensive twice over:
//!
//! * each bank computing score rows needs the **full** `K` (and later `V`)
//!   matrix — a one-to-many duplication ([`Step::BroadcastDup`]) whose
//!   loaded volume grows with the number of active banks,
//! * the `h × L × L` score matrix itself is written out after the score
//!   stage, reloaded for Softmax, and reloaded again for the weighted-value
//!   stage — the quadratic term of Figure 3(b).
//!
//! Compute work is identical to the token dataflow (same arithmetic, spread
//! over all banks); only the movement differs — which is exactly the
//! comparison the paper's Figure 10/11 makes.

use crate::ir::{BankRange, Precision, Program, RepeatCompressor, Step};
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

/// Compile `workload` under the layer-based dataflow for `total_banks`.
pub fn compile(workload: &Workload, total_banks: u32) -> Program {
    compile_with(workload, total_banks, Precision::default())
}

/// Compile with explicit precision.
pub fn compile_with(workload: &Workload, total_banks: u32, p: Precision) -> Program {
    let mut prog = Program::new();
    let cfg = &workload.model;
    let b = workload.batch as u64;

    prog.push(Step::scope("load.input"));
    prog.push(Step::HostScatter {
        total_bytes: workload.batch_tokens() * cfg.d_model as u64 * u64::from(p.act_bits) / 8,
    });

    let enc_layers = if cfg.encoder_layers > 0 { cfg.encoder_layers } else { cfg.decoder_layers };
    for _ in 0..enc_layers {
        encoder_layer(&mut prog, cfg, workload.seq_len as u64, b, total_banks, p);
    }

    if cfg.decoder_layers > 0 && workload.decode_len > 0 {
        // Loop-compressed emission: the per-token block (all layers) is fed
        // to the compressor, which folds consecutive blocks whenever every
        // step is affine in its predecessor. The `ceil((l+t)/N)` per-bank
        // sizes are only piecewise-affine, so runs flush at plateau edges —
        // compression is opportunistic, the denoted step sequence is
        // unchanged either way.
        let mut comp = RepeatCompressor::new();
        let mut block = Vec::new();
        for t in 0..workload.decode_len as u64 {
            for _ in 0..cfg.decoder_layers {
                decoder_step_layer(&mut block, cfg, workload.seq_len as u64, t, b, total_banks, p);
            }
            comp.push_block(&mut prog, &mut block);
        }
        comp.flush(&mut prog);
    }
    prog
}

/// Bytes loaded for one encoder layer at sequence length `l` — the
/// Figure 3(b) accounting, exposed for the motivation experiment.
pub fn encoder_layer_loaded_bytes(
    cfg: &ModelConfig,
    l: u64,
    active_banks: u64,
    p: Precision,
) -> [(&'static str, u64); 4] {
    let d = cfg.d_model as u64;
    let h = cfg.heads as u64;
    let dff = cfg.d_ff as u64;
    let act_b = u64::from(p.act_bits) / 8;
    let sm_b = u64::from(p.softmax_bits) / 8;
    let fc = 3 * l * d * act_b + 3 * d * d * act_b;
    // Q scatter + K and V duplicated into every active bank + the score
    // matrix written, reloaded for Softmax, and reloaded again.
    let attn =
        l * d * act_b + 2 * l * d * act_b * active_banks + 3 * h * l * l * sm_b + d * d * act_b;
    let softmax = 2 * h * l * l * sm_b;
    let ffn = l * d * act_b + 2 * d * dff * act_b + l * dff * act_b;
    [("fc", fc), ("attention", attn), ("softmax", softmax), ("ffn", ffn)]
}

fn encoder_layer(
    prog: &mut Program,
    cfg: &ModelConfig,
    l: u64,
    b: u64,
    total_banks: u32,
    p: Precision,
) {
    let n = u64::from(total_banks);
    let d = cfg.d_model as u64;
    let h = cfg.heads as u64;
    let dh = d / h;
    let dff = cfg.d_ff as u64;
    let act_b = u64::from(p.act_bits) / 8;
    let sm_b = u64::from(p.softmax_bits) / 8;
    let per_bank = |total: u64| total.div_ceil(n);

    // ---- FC: reload inputs (duplicated 3× for the Q/K/V banks), broadcast
    // weights, compute, store Q/K/V.
    prog.push(Step::scope("enc.fc"));
    prog.push(Step::ShuffleAll { total_bytes: 3 * l * d * act_b * b });
    prog.push(Step::HostBroadcast { bytes: 3 * d * d * act_b, banks: total_banks });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(3 * l * d * d * b),
        total_elems: 3 * l * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(3 * l * d * b),
        total_vectors: 3 * l * d * b,
    });
    prog.push(Step::MemTouch {
        bytes_per_bank: per_bank(3 * l * d * act_b * b),
        total_bytes: 3 * l * d * act_b * b,
    });

    // ---- Attention scores: Q scattered to the banks owning score rows,
    // K duplicated into every one of them.
    prog.push(Step::scope("enc.attn"));
    prog.push(Step::ShuffleAll { total_bytes: l * d * act_b * b });
    prog.push(Step::BroadcastDup { bytes: l * d * act_b * b, banks: total_banks });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(l * l * d * b),
        total_elems: l * l * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: dh as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(l * l * h * b),
        total_vectors: l * l * h * b,
    });
    // Score matrix written out for the Softmax stage.
    prog.push(Step::MemTouch {
        bytes_per_bank: per_bank(h * l * l * sm_b * b),
        total_bytes: h * l * l * sm_b * b,
    });

    // ---- Softmax: scores reloaded and redistributed row-wise, then
    // written back — the quadratic reload of Figure 3(b).
    prog.push(Step::scope("enc.softmax"));
    prog.push(Step::ShuffleAll { total_bytes: 2 * h * l * l * sm_b * b });
    prog.push(Step::Exp {
        elems_per_bank: per_bank(l * l * h * b),
        total_elems: l * l * h * b,
        bits: p.softmax_bits,
        order: p.taylor_order,
    });
    prog.push(Step::Reduce {
        vec_len: l as u32,
        bits: p.softmax_bits,
        vectors_per_bank: per_bank(l * h * b),
        total_vectors: l * h * b,
    });
    prog.push(Step::Recip { per_bank: per_bank(l * h * b), total: l * h * b });
    prog.push(Step::Replicate {
        value_bits: p.softmax_bits,
        copies: l as u32,
        count_per_bank: per_bank(l * h * b),
        total_count: l * h * b,
    });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(l * l * h * b),
        total_elems: l * l * h * b,
        a_bits: p.softmax_bits,
        b_bits: p.softmax_bits,
    });

    // ---- Weighted values: probabilities reloaded, V duplicated.
    prog.push(Step::scope("enc.attn"));
    prog.push(Step::ShuffleAll { total_bytes: h * l * l * sm_b * b });
    prog.push(Step::BroadcastDup { bytes: l * d * act_b * b, banks: total_banks });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(l * l * d * b),
        total_elems: l * l * d * b,
        a_bits: p.softmax_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: l as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(l * d * b),
        total_vectors: l * d * b,
    });
    prog.push(Step::HostBroadcast { bytes: d * d * act_b, banks: total_banks });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(l * d * d * b),
        total_elems: l * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(l * d * b),
        total_vectors: l * d * b,
    });
    prog.push(Step::PointwiseAdd {
        elems_per_bank: per_bank(l * d * b),
        total_elems: l * d * b,
        bits: p.act_bits,
    });

    // ---- FFN: attention output reloaded, weights broadcast.
    prog.push(Step::scope("enc.ffn"));
    prog.push(Step::ShuffleAll { total_bytes: l * d * act_b * b });
    prog.push(Step::HostBroadcast { bytes: 2 * d * dff * act_b, banks: total_banks });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(l * d * dff * b),
        total_elems: l * d * dff * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(l * dff * b),
        total_vectors: l * dff * b,
    });
    prog.push(Step::PointwiseMul {
        elems_per_bank: per_bank(l * dff * d * b),
        total_elems: l * dff * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: dff as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(l * d * b),
        total_vectors: l * d * b,
    });
    prog.push(Step::PointwiseAdd {
        elems_per_bank: per_bank(l * d * b),
        total_elems: l * d * b,
        bits: p.act_bits,
    });
    prog.push(Step::MemTouch {
        bytes_per_bank: per_bank(l * d * act_b * b),
        total_bytes: l * d * act_b * b,
    });
}

fn decoder_step_layer(
    out: &mut Vec<Step>,
    cfg: &ModelConfig,
    l: u64,
    t: u64,
    b: u64,
    total_banks: u32,
    p: Precision,
) {
    let n = u64::from(total_banks);
    let banks = BankRange::new(0, total_banks);
    let d = cfg.d_model as u64;
    let h = cfg.heads as u64;
    let dff = cfg.d_ff as u64;
    let act_b = u64::from(p.act_bits) / 8;
    let sm_b = u64::from(p.softmax_bits) / 8;
    let per_bank = |total: u64| total.div_ceil(n);
    let ctx = l + t; // attended positions

    // Whole-memory-per-layer: the decoder's single-token matvecs are
    // output-split across the banks, so this layer's weights are
    // *scattered* (each bank holds only its output columns) and re-streamed
    // every step, while the new token's state is duplicated to every bank.
    out.push(Step::scope("dec.fc"));
    let weight_bytes =
        (4 * d * d + if cfg.cross_attention { 4 * d * d } else { 0 } + 2 * d * dff) * act_b;
    out.push(Step::HostScatter { total_bytes: weight_bytes });
    out.push(Step::ShuffleAll { total_bytes: (2 * ctx * d * act_b + d * act_b) * b });
    out.push(Step::PointwiseMul {
        elems_per_bank: per_bank(3 * d * d * b),
        total_elems: 3 * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(3 * d * b),
        total_vectors: 3 * d * b,
    });

    out.push(Step::scope("dec.attn"));
    out.push(Step::BroadcastDup { bytes: d * act_b * b, banks: total_banks }); // q to all banks
    out.push(Step::PointwiseMul {
        elems_per_bank: per_bank(ctx * d * b),
        total_elems: ctx * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: (d / h) as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(ctx * h * b),
        total_vectors: ctx * h * b,
    });
    out.push(Step::Exp {
        elems_per_bank: per_bank(ctx * h * b),
        total_elems: ctx * h * b,
        bits: p.softmax_bits,
        order: p.taylor_order,
    });
    out.push(Step::Reduce {
        vec_len: ctx.div_ceil(n).max(1) as u32,
        bits: p.softmax_bits,
        vectors_per_bank: h,
        total_vectors: h * n * b,
    });
    out.push(Step::PairwiseReduceTree {
        banks,
        bytes: h * sm_b,
        bits: p.softmax_bits,
        elems: h,
        parallel: b as u32,
    });
    out.push(Step::Recip { per_bank: h, total: h * b });
    out.push(Step::BroadcastDup { bytes: h * sm_b * b, banks: total_banks });
    out.push(Step::PointwiseMul {
        elems_per_bank: per_bank(ctx * h * b),
        total_elems: ctx * h * b,
        a_bits: p.softmax_bits,
        b_bits: p.softmax_bits,
    });
    out.push(Step::PointwiseMul {
        elems_per_bank: per_bank(ctx * d * b),
        total_elems: ctx * d * b,
        a_bits: p.softmax_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: ctx.div_ceil(n).max(1) as u32,
        bits: p.acc_bits,
        vectors_per_bank: d,
        total_vectors: d * n * b,
    });
    out.push(Step::PairwiseReduceTree {
        banks,
        bytes: d * sm_b,
        bits: p.acc_bits,
        elems: d,
        parallel: b as u32,
    });
    let proj_matvecs: u64 = if cfg.cross_attention { 4 } else { 2 };
    out.push(Step::PointwiseMul {
        elems_per_bank: per_bank(proj_matvecs * d * d * b),
        total_elems: proj_matvecs * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(proj_matvecs * d * b),
        total_vectors: proj_matvecs * d * b,
    });

    out.push(Step::scope("dec.ffn"));
    out.push(Step::PointwiseMul {
        elems_per_bank: per_bank(2 * d * dff * b),
        total_elems: 2 * d * dff * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: per_bank(2 * dff * b),
        total_vectors: 2 * dff * b,
    });
    out.push(Step::MemTouch {
        bytes_per_bank: per_bank(d * act_b * b),
        total_bytes: d * act_b * b,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token_flow;
    use transpim_transformer::workload::Workload;

    #[test]
    fn layer_flow_moves_far_more_than_token_flow() {
        let w = Workload::triviaqa();
        let layer = compile(&w, 2048);
        let token = token_flow::compile(&w, 2048);
        let lm = layer.internal_movement_bytes();
        let tm = token.internal_movement_bytes();
        assert!(lm > 3 * tm, "layer {lm} should dwarf token {tm}");
    }

    #[test]
    fn compute_work_matches_token_flow() {
        let w = Workload::imdb();
        let layer = compile(&w, 2048);
        let token = token_flow::compile(&w, 2048);
        assert_eq!(layer.total_mul_elems(), token.total_mul_elems());
    }

    #[test]
    fn loaded_bytes_grow_quadratically_in_attention() {
        // Figure 3(b): the attention/softmax loads are quadratic in L.
        let cfg = transpim_transformer::model::ModelConfig::roberta_base();
        let p = Precision::default();
        let at = |l: u64| {
            encoder_layer_loaded_bytes(&cfg, l, 2048, p)
                .iter()
                .find(|(k, _)| *k == "softmax")
                .unwrap()
                .1 as f64
        };
        let ratio = at(2048) / at(512);
        assert!((ratio - 16.0).abs() < 1.0, "softmax reload ratio {ratio} should be ~16 for 4x L");
    }

    #[test]
    fn no_ring_broadcasts_in_layer_flow() {
        let w = Workload::imdb();
        let prog = compile(&w, 2048);
        assert!(!prog.steps().iter().any(|s| matches!(s, Step::RingBroadcast { .. })));
        assert!(prog.steps().iter().any(|s| matches!(s, Step::BroadcastDup { .. })));
    }
}
