//! The token-based dataflow compiler (Sections III-B and III-C).
//!
//! Encoder blocks (Figure 4): each bank computes FC projections for its
//! token shard with a full local weight copy; attention scores are produced
//! block-by-block as `K` shards ring-broadcast around the sequence's banks;
//! Softmax is entirely local (each bank owns whole score rows); the
//! attention output repeats the ring with `V`; FFN is again local.
//!
//! Decoder blocks (Figure 5): the new token's Q/K/V projections are
//! computed output-parallel across the banks holding the (resident) weight
//! slices, `Q_new` is broadcast to all banks, each bank computes attention
//! against its locally-held `K`/`V` columns, and the partial outputs are
//! combined with the multi-step pairwise reduction tree of Section IV-B2.

use crate::ir::{BankRange, Precision, Program, RepeatCompressor, Step};
use crate::sharding::Sharding;
use serde::{Deserialize, Serialize};
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

/// Where the decoder places each generated token's K/V rows
/// (Section III-C: "for each new token, we allocate the bank with the
/// minimum number of tokens to balance computation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DecoderPlacement {
    /// The paper's policy: least-loaded bank — per-bank attention work
    /// grows as `ceil(t / N)`.
    #[default]
    Balanced,
    /// Naive policy: every generated token stays in the FC bank — that
    /// bank's attention work grows linearly with `t` and becomes the
    /// critical path (the ablation the paper's balancing argument implies).
    LastBank,
}

/// Compile `workload` for a system with `total_banks` banks using the
/// default (paper) precision.
pub fn compile(workload: &Workload, total_banks: u32) -> Program {
    let sharding = Sharding::new(total_banks, workload.batch as u32, workload.seq_len as u32);
    compile_with(workload, &sharding, Precision::default())
}

/// Compile with an explicit sharding and precision.
pub fn compile_with(workload: &Workload, sharding: &Sharding, p: Precision) -> Program {
    compile_full(workload, sharding, p, DecoderPlacement::Balanced)
}

/// Compile with every knob exposed (sharding, precision, decoder
/// placement policy).
pub fn compile_full(
    workload: &Workload,
    sharding: &Sharding,
    p: Precision,
    placement: DecoderPlacement,
) -> Program {
    let mut prog = Program::new();
    let cfg = &workload.model;
    let shard = sharding.sequences[0];
    let batch = sharding.sequences.len() as u32;

    // Input embeddings: distinct per token → scattered from the host.
    prog.push(Step::scope("load.input"));
    prog.push(Step::HostScatter {
        total_bytes: workload.batch_tokens() * cfg.d_model as u64 * u64::from(p.act_bits) / 8,
    });

    // Encoder stack (or the decoder-only prefill pass, which has the same
    // cost shape: every context token flows through every block).
    // Every context token flows through every block, with full weight
    // copies broadcast to the banks layer by layer (they do not all fit
    // residently: 16 layers × ~11 MB per bank exceeds a 32 MB bank).
    let enc_layers = if cfg.encoder_layers > 0 { cfg.encoder_layers } else { cfg.decoder_layers };
    for _ in 0..enc_layers {
        encoder_layer(&mut prog, cfg, shard.banks, shard.seq_len, batch, p);
    }

    // Decoder generation loop.
    if cfg.decoder_layers > 0 && workload.decode_len > 0 {
        // Decoder weights are resident: scatter the slices once.
        prog.push(Step::scope("load.weights"));
        prog.push(Step::HostScatter {
            total_bytes: cfg.decoder_layers as u64
                * cfg.decoder_layer_params()
                * u64::from(p.act_bits)
                / 8,
        });
        // The generation loop is emitted loop-compressed: every decoder
        // block for token `t` depends on `t` only through `r_gen`, so
        // identical blocks fold into zero-delta `Step::Repeat`s and
        // affine-growing blocks (LastBank) fold with per-iteration deltas.
        // The compiled program is O(decoder_layers) steps, not
        // O(decode_len × decoder_layers).
        let decode = workload.decode_len as u64;
        let layers = cfg.decoder_layers as u64;
        let mut comp = RepeatCompressor::new();
        let mut block = Vec::new();
        match placement {
            DecoderPlacement::Balanced => {
                // `r_gen = ceil(t/N)` is constant over runs of N tokens:
                // emit one layer block per plateau and repeat it
                // arithmetically for every (token, layer) pair in the run.
                let n = u64::from(shard.banks.count);
                let mut t = 0;
                while t < decode {
                    let run_end = if t == 0 { 1 } else { (t.div_ceil(n) * n + 1).min(decode) };
                    decoder_step_layer(
                        &mut block,
                        cfg,
                        shard.banks,
                        shard.seq_len,
                        t,
                        batch,
                        p,
                        placement,
                    );
                    comp.push_block_times(&mut prog, &mut block, (run_end - t) * layers);
                    t = run_end;
                }
            }
            DecoderPlacement::LastBank => {
                // `r_gen = t` grows by one per token: per-token blocks (all
                // layers) fold into a single affine repeat.
                for t in 0..decode {
                    for _ in 0..layers {
                        decoder_step_layer(
                            &mut block,
                            cfg,
                            shard.banks,
                            shard.seq_len,
                            t,
                            batch,
                            p,
                            placement,
                        );
                    }
                    comp.push_block(&mut prog, &mut block);
                }
            }
        }
        comp.flush(&mut prog);
    }
    prog
}

/// Work sizes of one encoder block on one sequence shard, emitted once and
/// scaled to `batch` parallel sequences for energy.
#[allow(clippy::too_many_arguments)]
fn encoder_layer(
    prog: &mut Program,
    cfg: &ModelConfig,
    banks: BankRange,
    seq_len: u32,
    batch: u32,
    p: Precision,
) {
    let n = u64::from(banks.count);
    let r = u64::from(seq_len.div_ceil(banks.count)); // tokens per bank
    let l = u64::from(seq_len);
    let d = cfg.d_model as u64;
    let h = cfg.heads as u64;
    let dh = d / h;
    let dff = cfg.d_ff as u64;
    let b = u64::from(batch);
    let act_b = u64::from(p.act_bits) / 8;
    let sm_b = u64::from(p.softmax_bits) / 8;
    let active = banks.count * batch;

    // ---- FC layer: Q/K/V projections, weights broadcast to every bank.
    prog.push(Step::scope("enc.fc"));
    prog.push(Step::HostBroadcast { bytes: 3 * d * d * act_b, banks: active });
    // Figure 8(a): three replicated operand copies staged for row-parallel
    // point-wise multiplication.
    prog.push(Step::IntraBankCopy {
        bytes_per_bank: 3 * r * d * act_b,
        total_bytes: 3 * l * d * act_b * b,
    });
    prog.push(Step::PointwiseMul {
        elems_per_bank: 3 * r * d * d,
        total_elems: 3 * l * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: 3 * r * d,
        total_vectors: 3 * l * d * b,
    });
    prog.push(Step::MemTouch {
        bytes_per_bank: 3 * r * d * act_b,
        total_bytes: 3 * l * d * act_b * b,
    });

    // ---- Attention scores: intra-shard block plus N−1 ring steps with K.
    prog.push(Step::scope("enc.attn"));
    if n > 1 {
        prog.push(Step::RingBroadcast {
            banks,
            bytes_per_hop: r * d * act_b,
            repeat: n - 1,
            parallel: batch,
        });
    }
    prog.push(Step::PointwiseMul {
        elems_per_bank: r * l * d,
        total_elems: l * l * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: dh as u32,
        bits: p.acc_bits,
        vectors_per_bank: r * l * h,
        total_vectors: l * l * h * b,
    });
    prog.push(Step::MemTouch {
        bytes_per_bank: r * l * h * sm_b,
        total_bytes: l * l * h * sm_b * b,
    });

    // ---- Softmax: fully local (each bank owns its score rows).
    prog.push(Step::scope("enc.softmax"));
    prog.push(Step::Exp {
        elems_per_bank: r * l * h,
        total_elems: l * l * h * b,
        bits: p.softmax_bits,
        order: p.taylor_order,
    });
    prog.push(Step::Reduce {
        vec_len: seq_len,
        bits: p.softmax_bits,
        vectors_per_bank: r * h,
        total_vectors: l * h * b,
    });
    prog.push(Step::Recip { per_bank: r * h, total: l * h * b });
    prog.push(Step::Replicate {
        value_bits: p.softmax_bits,
        copies: seq_len,
        count_per_bank: r * h,
        total_count: l * h * b,
    });
    prog.push(Step::PointwiseMul {
        elems_per_bank: r * l * h,
        total_elems: l * l * h * b,
        a_bits: p.softmax_bits,
        b_bits: p.softmax_bits,
    });

    // ---- Attention output: ring with V, then the output projection.
    prog.push(Step::scope("enc.attn"));
    if n > 1 {
        prog.push(Step::RingBroadcast {
            banks,
            bytes_per_hop: r * d * act_b,
            repeat: n - 1,
            parallel: batch,
        });
    }
    prog.push(Step::PointwiseMul {
        elems_per_bank: r * l * d,
        total_elems: l * l * d * b,
        a_bits: p.softmax_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: seq_len,
        bits: p.acc_bits,
        vectors_per_bank: r * d,
        total_vectors: l * d * b,
    });
    prog.push(Step::HostBroadcast { bytes: d * d * act_b, banks: active });
    prog.push(Step::PointwiseMul {
        elems_per_bank: r * d * d,
        total_elems: l * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: r * d,
        total_vectors: l * d * b,
    });
    prog.push(Step::PointwiseAdd {
        elems_per_bank: r * d,
        total_elems: l * d * b,
        bits: p.act_bits,
    });

    // ---- FFN: two local matmuls with broadcast weights.
    prog.push(Step::scope("enc.ffn"));
    prog.push(Step::HostBroadcast { bytes: 2 * d * dff * act_b, banks: active });
    prog.push(Step::PointwiseMul {
        elems_per_bank: r * d * dff,
        total_elems: l * d * dff * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: r * dff,
        total_vectors: l * dff * b,
    });
    prog.push(Step::PointwiseMul {
        elems_per_bank: r * dff * d,
        total_elems: l * dff * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    prog.push(Step::Reduce {
        vec_len: dff as u32,
        bits: p.acc_bits,
        vectors_per_bank: r * d,
        total_vectors: l * d * b,
    });
    prog.push(Step::PointwiseAdd {
        elems_per_bank: r * d,
        total_elems: l * d * b,
        bits: p.act_bits,
    });
    prog.push(Step::MemTouch { bytes_per_bank: r * d * act_b, total_bytes: l * d * act_b * b });
}

/// One decoder block for generated-token index `t` (Section III-C,
/// Figure 5).
#[allow(clippy::too_many_arguments)]
fn decoder_step_layer(
    out: &mut Vec<Step>,
    cfg: &ModelConfig,
    banks: BankRange,
    seq_len: u32,
    t: u64,
    batch: u32,
    p: Precision,
    placement: DecoderPlacement,
) {
    let n = u64::from(banks.count);
    let d = cfg.d_model as u64;
    let h = cfg.heads as u64;
    let dff = cfg.d_ff as u64;
    let b = u64::from(batch);
    let act_b = u64::from(p.act_bits) / 8;
    let sm_b = u64::from(p.softmax_bits) / 8;

    // Context tokens the busiest bank attends over: the sharded encoder
    // context (cross-attention) or the sharded prefix (decoder-only), plus
    // the generated tokens placed per the policy.
    let r_ctx = u64::from(seq_len).div_ceil(n);
    let r_gen = match placement {
        DecoderPlacement::Balanced => t.div_ceil(n).max(if t > 0 { 1 } else { 0 }),
        DecoderPlacement::LastBank => t,
    };
    let r_att = r_ctx + r_gen;

    // ---- FC for the new token: output-parallel matvec on resident weight
    // slices, then Q_new broadcast (K_new/V_new stay with their owner).
    out.push(Step::scope("dec.fc"));
    out.push(Step::OneToAll { src: banks.start, banks, bytes: d * act_b, parallel: batch });
    let fc_mults = 3 * d * d;
    out.push(Step::PointwiseMul {
        elems_per_bank: fc_mults.div_ceil(n),
        total_elems: fc_mults * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: (3 * d).div_ceil(n),
        total_vectors: 3 * d * b,
    });
    out.push(Step::OneToAll { src: banks.start, banks, bytes: d * act_b, parallel: batch });

    // ---- Attention of the new token against distributed K/V columns.
    out.push(Step::scope("dec.attn"));
    out.push(Step::PointwiseMul {
        elems_per_bank: r_att * d,
        total_elems: r_att * d * n * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: (d / h) as u32,
        bits: p.acc_bits,
        vectors_per_bank: r_att * h,
        total_vectors: r_att * h * n * b,
    });
    // Distributed Softmax over the single score row: local exponents,
    // tree-reduced row sum, reciprocal broadcast back.
    out.push(Step::Exp {
        elems_per_bank: r_att * h,
        total_elems: r_att * h * n * b,
        bits: p.softmax_bits,
        order: p.taylor_order,
    });
    out.push(Step::Reduce {
        vec_len: r_att.max(1) as u32,
        bits: p.softmax_bits,
        vectors_per_bank: h,
        total_vectors: h * n * b,
    });
    out.push(Step::PairwiseReduceTree {
        banks,
        bytes: h * sm_b,
        bits: p.softmax_bits,
        elems: h,
        parallel: batch,
    });
    out.push(Step::Recip { per_bank: h, total: h * b });
    out.push(Step::OneToAll { src: banks.start, banks, bytes: h * sm_b, parallel: batch });
    out.push(Step::PointwiseMul {
        elems_per_bank: r_att * h,
        total_elems: r_att * h * n * b,
        a_bits: p.softmax_bits,
        b_bits: p.softmax_bits,
    });
    // Weighted values: per-bank partial output, then the reduction tree.
    out.push(Step::PointwiseMul {
        elems_per_bank: r_att * d,
        total_elems: r_att * d * n * b,
        a_bits: p.softmax_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: r_att.max(1) as u32,
        bits: p.acc_bits,
        vectors_per_bank: d,
        total_vectors: d * n * b,
    });
    out.push(Step::PairwiseReduceTree {
        banks,
        bytes: d * sm_b,
        bits: p.acc_bits,
        elems: d,
        parallel: batch,
    });

    // Cross-attention repeats the score/softmax/value pattern against the
    // encoder context (already included in r_att for cost purposes when
    // cross_attention is on; the extra Q/O projections are charged here).
    let proj_matvecs: u64 = if cfg.cross_attention { 2 + 2 } else { 2 }; // Wo (+Wq2, Wo2)
    out.push(Step::PointwiseMul {
        elems_per_bank: (proj_matvecs * d * d).div_ceil(n),
        total_elems: proj_matvecs * d * d * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: (proj_matvecs * d).div_ceil(n),
        total_vectors: proj_matvecs * d * b,
    });

    // ---- FFN matvecs, output-parallel on resident slices.
    out.push(Step::scope("dec.ffn"));
    out.push(Step::PointwiseMul {
        elems_per_bank: (2 * d * dff).div_ceil(n),
        total_elems: 2 * d * dff * b,
        a_bits: p.act_bits,
        b_bits: p.act_bits,
    });
    out.push(Step::Reduce {
        vec_len: d as u32,
        bits: p.acc_bits,
        vectors_per_bank: (2 * dff).div_ceil(n),
        total_vectors: 2 * dff * b,
    });
    out.push(Step::MemTouch { bytes_per_bank: d * act_b, total_bytes: d * act_b * n * b });
}

#[cfg(test)]
mod tests {
    use super::*;
    use transpim_transformer::workload::Workload;

    #[test]
    fn encoder_only_program_has_expected_structure() {
        let w = Workload::imdb();
        let prog = compile(&w, 2048);
        // 12 layers, each with 2 ring broadcasts (batched IMDB shards span
        // 128 banks each).
        let rings = prog.steps().iter().filter(|s| matches!(s, Step::RingBroadcast { .. })).count();
        assert_eq!(rings, 24);
        assert!(prog.host_bytes() > 0);
    }

    #[test]
    fn compute_work_is_conserved() {
        // Total point-wise multiplies must equal the workload's MAC count
        // up to the softmax/normalization extras (which add, not remove).
        let w = Workload::triviaqa();
        let prog = compile(&w, 2048);
        let macs = w.total_macs();
        let muls = prog.total_mul_elems();
        assert!(muls >= macs, "muls {muls} < macs {macs}");
        assert!(muls < 2 * macs, "muls {muls} more than double macs {macs}");
    }

    #[test]
    fn decoder_workload_emits_reduction_trees() {
        let mut w = Workload::pubmed();
        w.decode_len = 2; // keep the program small
        let prog = compile(&w, 256);
        // The compiled program is loop-compressed; count in the unrolled
        // expansion, which denotes the same step sequence.
        let unrolled = prog.unroll();
        let trees = unrolled
            .steps()
            .iter()
            .filter(|s| matches!(s, Step::PairwiseReduceTree { .. }))
            .count();
        // 2 trees (softmax sum + output) × 16 layers × 2 steps.
        assert_eq!(trees, 2 * 16 * 2);
        // And the compressed form is far smaller than the expansion.
        assert!(prog.len() < unrolled.len());
    }

    #[test]
    fn single_bank_sequence_skips_rings() {
        let mut w = Workload::imdb();
        w.batch = 1;
        w.seq_len = 4;
        let prog = compile(&w, 1);
        assert!(!prog.steps().iter().any(|s| matches!(s, Step::RingBroadcast { .. })));
    }

    #[test]
    fn ring_traffic_per_bank_scales_linearly_with_sequence_length() {
        // The paper: with token sharding "the size of moved data only
        // increases linearly" — each bank receives the K and V matrices
        // (O(L·D)) regardless of how many banks participate.
        let per_bank = |l: usize| {
            let w = Workload::synthetic_roberta(l);
            let prog = compile(&w, 2048);
            let banks = l.min(2048) as f64; // batch 1: one bank per token
            prog.internal_movement_bytes() as f64 / banks
        };
        let ratio = per_bank(2048) / per_bank(512);
        assert!(ratio > 2.0 && ratio < 8.0, "per-bank movement ratio {ratio} not ~4x for 4x L");
    }

    #[test]
    fn last_bank_placement_inflates_decoder_work() {
        use crate::ir::Precision;
        let mut w = Workload::pubmed();
        w.model.encoder_layers = 1;
        w.model.decoder_layers = 1;
        w.decode_len = 64;
        w.seq_len = 256;
        let sharding = Sharding::new(256, 1, 256);
        let balanced =
            compile_full(&w, &sharding, Precision::default(), DecoderPlacement::Balanced);
        let last = compile_full(&w, &sharding, Precision::default(), DecoderPlacement::LastBank);
        // The busiest bank's attention lanes grow linearly under LastBank,
        // so the summed per-bank exponent work (critical path) inflates.
        let sum_attn = |p: &Program| -> u64 {
            p.unroll()
                .steps()
                .iter()
                .filter_map(|s| match s {
                    Step::Exp { elems_per_bank, .. } => Some(*elems_per_bank),
                    _ => None,
                })
                .sum()
        };
        assert!(sum_attn(&last) > 2 * sum_attn(&balanced));
    }

    #[test]
    fn decoder_only_prefill_counts_layers() {
        let mut w = Workload::lm();
        w.decode_len = 0;
        let prog = compile(&w, 2048);
        let fc_scopes =
            prog.steps().iter().filter(|s| matches!(s, Step::Scope(l) if l == "enc.fc")).count();
        assert_eq!(fc_scopes, 24, "prefill passes through all 24 GPT-2 blocks");
    }
}
