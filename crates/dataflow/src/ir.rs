//! Architecture-independent dataflow IR.
//!
//! A [`Program`] is a list of [`Step`]s in execution order. Each step names
//! *what* happens (a point-wise PIM batch, a vector reduction, a ring
//! broadcast round, …) with its per-bank and system-wide work sizes; the
//! execution engine in the `transpim` crate prices each step for a concrete
//! architecture (TransPIM, TransPIM-NB, OriginalPIM, NBP) and feeds the
//! phase engine.

use serde::{Deserialize, Serialize};
use transpim_hbm::geometry::BankId;

/// A contiguous, ring-ordered range of banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankRange {
    /// First bank id.
    pub start: u32,
    /// Number of banks.
    pub count: u32,
}

impl BankRange {
    /// A range of `count` banks starting at `start`.
    pub fn new(start: u32, count: u32) -> Self {
        Self { start, count }
    }

    /// Iterate over the bank ids.
    pub fn iter(&self) -> impl Iterator<Item = BankId> {
        (self.start..self.start + self.count).map(BankId)
    }

    /// Bank ids as a vector.
    pub fn to_vec(&self) -> Vec<BankId> {
        self.iter().collect()
    }

    /// Number of banks.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Arithmetic widths used when lowering (Section V-B: 8-bit FC/FFN, 16-bit
/// Softmax, 5th-order Taylor exponent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Precision {
    /// Activation/weight width for matmuls.
    pub act_bits: u32,
    /// Accumulator/product width streamed into reductions.
    pub acc_bits: u32,
    /// Softmax fixed-point width.
    pub softmax_bits: u32,
    /// Taylor order for the exponential.
    pub taylor_order: u32,
}

impl Default for Precision {
    fn default() -> Self {
        Self { act_bits: 8, acc_bits: 16, softmax_bits: 16, taylor_order: 5 }
    }
}

/// One dataflow step. Sizes follow two conventions:
///
/// * `*_per_bank` — work in the busiest active bank (sets latency),
/// * `total_*` — system-wide work (sets energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Set the scope label for subsequent steps (layer-wise breakdown).
    Scope(String),

    /// Point-wise multiply of `a_bits`×`b_bits` operands in the subarrays.
    PointwiseMul {
        /// Lanes in the busiest bank.
        elems_per_bank: u64,
        /// Lanes system-wide.
        total_elems: u64,
        /// Width of the first operand.
        a_bits: u32,
        /// Width of the second operand.
        b_bits: u32,
    },

    /// Point-wise add at `bits` width.
    PointwiseAdd {
        /// Lanes in the busiest bank.
        elems_per_bank: u64,
        /// Lanes system-wide.
        total_elems: u64,
        /// Operand width.
        bits: u32,
    },

    /// Point-wise Taylor exponential (Softmax step 1).
    Exp {
        /// Lanes in the busiest bank.
        elems_per_bank: u64,
        /// Lanes system-wide.
        total_elems: u64,
        /// Fixed-point width (16 for Softmax).
        bits: u32,
        /// Taylor order (5 in the paper).
        order: u32,
    },

    /// Vector reductions (dot-product accumulation, Softmax row sums).
    Reduce {
        /// Length of each reduced vector.
        vec_len: u32,
        /// Element width.
        bits: u32,
        /// Vectors reduced in the busiest bank.
        vectors_per_bank: u64,
        /// Vectors reduced system-wide.
        total_vectors: u64,
    },

    /// Reciprocals in the ACU divider (Softmax normalization).
    Recip {
        /// Reciprocals in the busiest bank.
        per_bank: u64,
        /// Reciprocals system-wide.
        total: u64,
    },

    /// Replicate a scalar across a row (reciprocal spreading,
    /// Figure 8(b) steps 3–4).
    Replicate {
        /// Width of the replicated value.
        value_bits: u32,
        /// Copies per replication.
        copies: u32,
        /// Replications in the busiest bank.
        count_per_bank: u64,
        /// Replications system-wide.
        total_count: u64,
    },

    /// Broadcast identical data (weights) from the host to every active
    /// bank using per-channel broadcast writes.
    HostBroadcast {
        /// Payload bytes (one copy; it reaches all banks).
        bytes: u64,
        /// Banks that latch the broadcast.
        banks: u32,
    },

    /// Scatter distinct data (input embeddings) from the host to banks.
    HostScatter {
        /// Total bytes across all banks.
        total_bytes: u64,
    },

    /// `repeat` identical ring-broadcast steps over `banks`, each bank
    /// forwarding `bytes_per_hop` to its successor per step.
    RingBroadcast {
        /// The ring (one sequence's banks).
        banks: BankRange,
        /// Shard payload per hop.
        bytes_per_hop: u64,
        /// Number of ring steps (`N−1` for a full broadcast).
        repeat: u64,
        /// Identical disjoint rings running concurrently (batched
        /// sequences); scales energy/bytes, not latency.
        parallel: u32,
    },

    /// One-to-all broadcast of `bytes` from a source bank to every bank in
    /// the range (decoder `Q_new` distribution).
    OneToAll {
        /// Source bank.
        src: u32,
        /// Receivers.
        banks: BankRange,
        /// Payload bytes.
        bytes: u64,
        /// Concurrent disjoint broadcasts (batched sequences).
        parallel: u32,
    },

    /// Multi-step parallel partial-sum reduction across banks: `log2(N)`
    /// rounds of pairwise transfers plus in-bank adds (decoder output).
    PairwiseReduceTree {
        /// Participating banks.
        banks: BankRange,
        /// Partial-sum payload per transfer.
        bytes: u64,
        /// Partial-sum element width.
        bits: u32,
        /// Elements per partial sum (added after each transfer).
        elems: u64,
        /// Concurrent disjoint trees (batched sequences).
        parallel: u32,
    },

    /// Layer-based dataflow: one payload duplicated into many banks (the
    /// full `K`/`V` matrix every bank needs for its score rows). On the
    /// original datapath each bank's copy is a separate shared-bus
    /// transfer; TransPIM's broadcast write delivers one copy per channel —
    /// the source of the paper's 18.2× layer-dataflow movement gain.
    BroadcastDup {
        /// Payload bytes (one copy).
        bytes: u64,
        /// Receiving banks.
        banks: u32,
    },

    /// Intra-bank data reorganization (transposes, operand staging) done
    /// through the data buffer (or the row buffer when absent).
    IntraBankCopy {
        /// Bytes moved in the busiest bank.
        bytes_per_bank: u64,
        /// Bytes moved system-wide.
        total_bytes: u64,
    },

    /// Inter-layer shuffle of the layer-based dataflow: operands and
    /// results stream over the shared datapath between layers, including
    /// bit-serial layout reorganization.
    ShuffleAll {
        /// Total bytes crossing the datapath.
        total_bytes: u64,
    },

    /// Plain result reads/stores ("other" in the Figure 11 breakdown).
    MemTouch {
        /// Bytes in the busiest bank.
        bytes_per_bank: u64,
        /// Bytes system-wide.
        total_bytes: u64,
    },
}

impl Step {
    /// Scope constructor.
    pub fn scope(label: impl Into<String>) -> Self {
        Step::Scope(label.into())
    }
}

/// A compiled dataflow program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total bytes loaded from the host (weights + inputs) — the
    /// Figure 3(b) "loaded data" metric for host traffic.
    pub fn host_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::HostBroadcast { bytes, .. } => *bytes,
                Step::HostScatter { total_bytes } => *total_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes moved between or inside banks (ring broadcast, shuffles,
    /// copies, reduction trees).
    pub fn internal_movement_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::RingBroadcast { banks, bytes_per_hop, repeat, parallel } => {
                    u64::from(banks.count) * bytes_per_hop * repeat * u64::from(*parallel)
                }
                Step::OneToAll { banks, bytes, parallel, .. } => {
                    u64::from(banks.count) * bytes * u64::from(*parallel)
                }
                Step::PairwiseReduceTree { banks, bytes, parallel, .. } => {
                    u64::from(banks.count.saturating_sub(1)) * bytes * u64::from(*parallel)
                }
                Step::BroadcastDup { bytes, banks } => bytes * u64::from(*banks),
                Step::IntraBankCopy { total_bytes, .. } => *total_bytes,
                Step::ShuffleAll { total_bytes } => *total_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total point-wise multiply lanes (≈ MAC count) — used by sanity tests
    /// to check work conservation across dataflows.
    pub fn total_mul_elems(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::PointwiseMul { total_elems, .. } => *total_elems,
                _ => 0,
            })
            .sum()
    }
}

impl Extend<Step> for Program {
    fn extend<T: IntoIterator<Item = Step>>(&mut self, iter: T) {
        self.steps.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_range_iteration() {
        let r = BankRange::new(4, 3);
        let ids: Vec<u32> = r.iter().map(|b| b.0).collect();
        assert_eq!(ids, vec![4, 5, 6]);
        assert!(!r.is_empty());
        assert!(BankRange::new(0, 0).is_empty());
    }

    #[test]
    fn program_accounting() {
        let mut p = Program::new();
        p.push(Step::HostBroadcast { bytes: 100, banks: 8 });
        p.push(Step::HostScatter { total_bytes: 50 });
        p.push(Step::RingBroadcast {
            banks: BankRange::new(0, 4),
            bytes_per_hop: 10,
            repeat: 3,
            parallel: 2,
        });
        p.push(Step::ShuffleAll { total_bytes: 200 });
        p.push(Step::BroadcastDup { bytes: 7, banks: 10 });
        p.push(Step::PointwiseMul { elems_per_bank: 5, total_elems: 20, a_bits: 8, b_bits: 8 });
        assert_eq!(p.host_bytes(), 150);
        assert_eq!(p.internal_movement_bytes(), 4 * 10 * 3 * 2 + 200 + 70);
        assert_eq!(p.total_mul_elems(), 20);
        assert_eq!(p.len(), 6);
    }
}
