//! Architecture-independent dataflow IR.
//!
//! A [`Program`] is a list of [`Step`]s in execution order. Each step names
//! *what* happens (a point-wise PIM batch, a vector reduction, a ring
//! broadcast round, …) with its per-bank and system-wide work sizes; the
//! execution engine in the `transpim` crate prices each step for a concrete
//! architecture (TransPIM, TransPIM-NB, OriginalPIM, NBP) and feeds the
//! phase engine.
//!
//! # Loop compression
//!
//! Autoregressive decoding repeats one block of steps per generated token,
//! with only the KV-length-dependent sizes changing — and those change as an
//! *affine* function of the token index (the cache grows by one row per
//! step). [`Step::Repeat`] captures that structure: a body emitted once,
//! an iteration count, and one [`StepDelta`] per body step giving the
//! per-iteration increments of its varying size fields. Iteration `i`'s
//! step `j` is exactly `body[j]` advanced `i` times by `delta[j]`
//! ([`Step::at`]), so a compressed program denotes precisely the same step
//! sequence as its [`Program::unroll`]. The [`RepeatCompressor`] folds
//! per-token blocks into `Repeat` steps opportunistically — a block that is
//! not affine in the previous one simply flushes, so compression is a pure
//! encoding choice, never a semantic one.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use transpim_hbm::geometry::BankId;

/// A contiguous, ring-ordered range of banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankRange {
    /// First bank id.
    pub start: u32,
    /// Number of banks.
    pub count: u32,
}

impl BankRange {
    /// A range of `count` banks starting at `start`.
    pub fn new(start: u32, count: u32) -> Self {
        Self { start, count }
    }

    /// Iterate over the bank ids.
    pub fn iter(&self) -> impl Iterator<Item = BankId> {
        (self.start..self.start + self.count).map(BankId)
    }

    /// Bank ids as a vector.
    pub fn to_vec(&self) -> Vec<BankId> {
        self.iter().collect()
    }

    /// Number of banks.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Arithmetic widths used when lowering (Section V-B: 8-bit FC/FFN, 16-bit
/// Softmax, 5th-order Taylor exponent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Precision {
    /// Activation/weight width for matmuls.
    pub act_bits: u32,
    /// Accumulator/product width streamed into reductions.
    pub acc_bits: u32,
    /// Softmax fixed-point width.
    pub softmax_bits: u32,
    /// Taylor order for the exponential.
    pub taylor_order: u32,
}

impl Default for Precision {
    fn default() -> Self {
        Self { act_bits: 8, acc_bits: 16, softmax_bits: 16, taylor_order: 5 }
    }
}

/// Maximum number of iteration-varying size fields any [`Step`] variant has.
pub const MAX_VARYING: usize = 3;

/// Per-iteration increments of one repeated step's varying size fields, in
/// the canonical order [`Step::varying`] lists them. Structural fields
/// (bank ranges, bit widths, source banks, parallelism) never vary inside a
/// [`Step::Repeat`]; only work sizes do, and they may only grow (the KV
/// cache never shrinks), so deltas are unsigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepDelta {
    /// Increment per varying field (slots past `len` are zero).
    pub d: [u64; MAX_VARYING],
    /// Number of varying fields of the step variant.
    pub len: u8,
}

impl StepDelta {
    /// Delta of a variant with no varying fields.
    pub fn none() -> Self {
        Self { d: [0; MAX_VARYING], len: 0 }
    }

    /// All-zero delta for a variant with `len` varying fields.
    pub fn zeros(len: u8) -> Self {
        Self { d: [0; MAX_VARYING], len }
    }

    /// Whether every increment is zero (the repeated step is identical in
    /// every iteration).
    pub fn is_zero(&self) -> bool {
        self.d[..self.len as usize].iter().all(|&x| x == 0)
    }

    /// The increments as a slice.
    pub fn values(&self) -> &[u64] {
        &self.d[..self.len as usize]
    }
}

fn delta_of(vals: &[u64]) -> StepDelta {
    debug_assert!(vals.len() <= MAX_VARYING);
    let mut d = StepDelta { d: [0; MAX_VARYING], len: vals.len() as u8 };
    d.d[..vals.len()].copy_from_slice(vals);
    d
}

/// One dataflow step. Sizes follow two conventions:
///
/// * `*_per_bank` — work in the busiest active bank (sets latency),
/// * `total_*` — system-wide work (sets energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Set the scope label for subsequent steps (layer-wise breakdown).
    /// Labels are interned as `Cow<'static, str>`: the compilers' fixed
    /// vocabulary borrows, deserialized programs own.
    Scope(Cow<'static, str>),

    /// Point-wise multiply of `a_bits`×`b_bits` operands in the subarrays.
    PointwiseMul {
        /// Lanes in the busiest bank.
        elems_per_bank: u64,
        /// Lanes system-wide.
        total_elems: u64,
        /// Width of the first operand.
        a_bits: u32,
        /// Width of the second operand.
        b_bits: u32,
    },

    /// Point-wise add at `bits` width.
    PointwiseAdd {
        /// Lanes in the busiest bank.
        elems_per_bank: u64,
        /// Lanes system-wide.
        total_elems: u64,
        /// Operand width.
        bits: u32,
    },

    /// Point-wise Taylor exponential (Softmax step 1).
    Exp {
        /// Lanes in the busiest bank.
        elems_per_bank: u64,
        /// Lanes system-wide.
        total_elems: u64,
        /// Fixed-point width (16 for Softmax).
        bits: u32,
        /// Taylor order (5 in the paper).
        order: u32,
    },

    /// Vector reductions (dot-product accumulation, Softmax row sums).
    Reduce {
        /// Length of each reduced vector.
        vec_len: u32,
        /// Element width.
        bits: u32,
        /// Vectors reduced in the busiest bank.
        vectors_per_bank: u64,
        /// Vectors reduced system-wide.
        total_vectors: u64,
    },

    /// Reciprocals in the ACU divider (Softmax normalization).
    Recip {
        /// Reciprocals in the busiest bank.
        per_bank: u64,
        /// Reciprocals system-wide.
        total: u64,
    },

    /// Replicate a scalar across a row (reciprocal spreading,
    /// Figure 8(b) steps 3–4).
    Replicate {
        /// Width of the replicated value.
        value_bits: u32,
        /// Copies per replication.
        copies: u32,
        /// Replications in the busiest bank.
        count_per_bank: u64,
        /// Replications system-wide.
        total_count: u64,
    },

    /// Broadcast identical data (weights) from the host to every active
    /// bank using per-channel broadcast writes.
    HostBroadcast {
        /// Payload bytes (one copy; it reaches all banks).
        bytes: u64,
        /// Banks that latch the broadcast.
        banks: u32,
    },

    /// Scatter distinct data (input embeddings) from the host to banks.
    HostScatter {
        /// Total bytes across all banks.
        total_bytes: u64,
    },

    /// `repeat` identical ring-broadcast steps over `banks`, each bank
    /// forwarding `bytes_per_hop` to its successor per step.
    RingBroadcast {
        /// The ring (one sequence's banks).
        banks: BankRange,
        /// Shard payload per hop.
        bytes_per_hop: u64,
        /// Number of ring steps (`N−1` for a full broadcast).
        repeat: u64,
        /// Identical disjoint rings running concurrently (batched
        /// sequences); scales energy/bytes, not latency.
        parallel: u32,
    },

    /// One-to-all broadcast of `bytes` from a source bank to every bank in
    /// the range (decoder `Q_new` distribution).
    OneToAll {
        /// Source bank.
        src: u32,
        /// Receivers.
        banks: BankRange,
        /// Payload bytes.
        bytes: u64,
        /// Concurrent disjoint broadcasts (batched sequences).
        parallel: u32,
    },

    /// Multi-step parallel partial-sum reduction across banks: `log2(N)`
    /// rounds of pairwise transfers plus in-bank adds (decoder output).
    PairwiseReduceTree {
        /// Participating banks.
        banks: BankRange,
        /// Partial-sum payload per transfer.
        bytes: u64,
        /// Partial-sum element width.
        bits: u32,
        /// Elements per partial sum (added after each transfer).
        elems: u64,
        /// Concurrent disjoint trees (batched sequences).
        parallel: u32,
    },

    /// Layer-based dataflow: one payload duplicated into many banks (the
    /// full `K`/`V` matrix every bank needs for its score rows). On the
    /// original datapath each bank's copy is a separate shared-bus
    /// transfer; TransPIM's broadcast write delivers one copy per channel —
    /// the source of the paper's 18.2× layer-dataflow movement gain.
    BroadcastDup {
        /// Payload bytes (one copy).
        bytes: u64,
        /// Receiving banks.
        banks: u32,
    },

    /// Intra-bank data reorganization (transposes, operand staging) done
    /// through the data buffer (or the row buffer when absent).
    IntraBankCopy {
        /// Bytes moved in the busiest bank.
        bytes_per_bank: u64,
        /// Bytes moved system-wide.
        total_bytes: u64,
    },

    /// Inter-layer shuffle of the layer-based dataflow: operands and
    /// results stream over the shared datapath between layers, including
    /// bit-serial layout reorganization.
    ShuffleAll {
        /// Total bytes crossing the datapath.
        total_bytes: u64,
    },

    /// Plain result reads/stores ("other" in the Figure 11 breakdown).
    MemTouch {
        /// Bytes in the busiest bank.
        bytes_per_bank: u64,
        /// Bytes system-wide.
        total_bytes: u64,
    },

    /// `count` iterations of `body`, where iteration `i`'s step `j` is
    /// `body[j]` advanced `i` times by `delta[j]` ([`Step::at`]). Denotes
    /// exactly the unrolled sequence — the executor prices it either by
    /// replaying the first iteration's phase stream (all deltas zero) or by
    /// advancing a scratch copy of the body in place, both byte-identical
    /// to pricing the unrolled program.
    Repeat {
        /// Number of iterations.
        count: u64,
        /// Steps of iteration 0.
        body: Vec<Step>,
        /// Per-iteration increments, parallel to `body`.
        delta: Vec<StepDelta>,
    },
}

impl Step {
    /// Scope constructor.
    pub fn scope(label: impl Into<Cow<'static, str>>) -> Self {
        Step::Scope(label.into())
    }

    /// Repeat constructor; validates that `delta` is parallel to `body` and
    /// shaped like each step's varying-field list.
    pub fn repeat(count: u64, body: Vec<Step>, delta: Vec<StepDelta>) -> Self {
        assert_eq!(body.len(), delta.len(), "delta must be parallel to body");
        debug_assert!(
            body.iter().zip(&delta).all(|(s, d)| s.varying().len == d.len),
            "delta shapes must match the steps' varying fields"
        );
        Step::Repeat { count, body, delta }
    }

    /// Current values of this step's iteration-varying size fields, in the
    /// canonical order [`StepDelta`] increments them. Structural fields
    /// (bank ranges, widths, parallelism, labels) are not listed — they
    /// must be equal across the iterations of a [`Step::Repeat`].
    pub fn varying(&self) -> StepDelta {
        match self {
            Step::Scope(_) | Step::Repeat { .. } => StepDelta::none(),
            Step::PointwiseMul { elems_per_bank, total_elems, .. } => {
                delta_of(&[*elems_per_bank, *total_elems])
            }
            Step::PointwiseAdd { elems_per_bank, total_elems, .. } => {
                delta_of(&[*elems_per_bank, *total_elems])
            }
            Step::Exp { elems_per_bank, total_elems, .. } => {
                delta_of(&[*elems_per_bank, *total_elems])
            }
            Step::Reduce { vec_len, vectors_per_bank, total_vectors, .. } => {
                delta_of(&[u64::from(*vec_len), *vectors_per_bank, *total_vectors])
            }
            Step::Recip { per_bank, total } => delta_of(&[*per_bank, *total]),
            Step::Replicate { copies, count_per_bank, total_count, .. } => {
                delta_of(&[u64::from(*copies), *count_per_bank, *total_count])
            }
            Step::HostBroadcast { bytes, .. } => delta_of(&[*bytes]),
            Step::HostScatter { total_bytes } => delta_of(&[*total_bytes]),
            Step::RingBroadcast { bytes_per_hop, repeat, .. } => {
                delta_of(&[*bytes_per_hop, *repeat])
            }
            Step::OneToAll { bytes, .. } => delta_of(&[*bytes]),
            Step::PairwiseReduceTree { bytes, elems, .. } => delta_of(&[*bytes, *elems]),
            Step::BroadcastDup { bytes, .. } => delta_of(&[*bytes]),
            Step::IntraBankCopy { bytes_per_bank, total_bytes } => {
                delta_of(&[*bytes_per_bank, *total_bytes])
            }
            Step::ShuffleAll { total_bytes } => delta_of(&[*total_bytes]),
            Step::MemTouch { bytes_per_bank, total_bytes } => {
                delta_of(&[*bytes_per_bank, *total_bytes])
            }
        }
    }

    /// Add `d` to the varying fields in place (one iteration forward). The
    /// executor's per-iteration fallback advances a scratch body this way —
    /// no allocation, cache-hot.
    pub fn advance(&mut self, d: &StepDelta) {
        debug_assert_eq!(self.varying().len, d.len, "delta shape mismatch");
        match self {
            Step::Scope(_) | Step::Repeat { .. } => {}
            Step::PointwiseMul { elems_per_bank, total_elems, .. }
            | Step::PointwiseAdd { elems_per_bank, total_elems, .. }
            | Step::Exp { elems_per_bank, total_elems, .. } => {
                *elems_per_bank += d.d[0];
                *total_elems += d.d[1];
            }
            Step::Reduce { vec_len, vectors_per_bank, total_vectors, .. } => {
                *vec_len = (u64::from(*vec_len) + d.d[0]) as u32;
                *vectors_per_bank += d.d[1];
                *total_vectors += d.d[2];
            }
            Step::Recip { per_bank, total } => {
                *per_bank += d.d[0];
                *total += d.d[1];
            }
            Step::Replicate { copies, count_per_bank, total_count, .. } => {
                *copies = (u64::from(*copies) + d.d[0]) as u32;
                *count_per_bank += d.d[1];
                *total_count += d.d[2];
            }
            Step::HostBroadcast { bytes, .. } => *bytes += d.d[0],
            Step::HostScatter { total_bytes } => *total_bytes += d.d[0],
            Step::RingBroadcast { bytes_per_hop, repeat, .. } => {
                *bytes_per_hop += d.d[0];
                *repeat += d.d[1];
            }
            Step::OneToAll { bytes, .. } => *bytes += d.d[0],
            Step::PairwiseReduceTree { bytes, elems, .. } => {
                *bytes += d.d[0];
                *elems += d.d[1];
            }
            Step::BroadcastDup { bytes, .. } => *bytes += d.d[0],
            Step::IntraBankCopy { bytes_per_bank, total_bytes }
            | Step::MemTouch { bytes_per_bank, total_bytes } => {
                *bytes_per_bank += d.d[0];
                *total_bytes += d.d[1];
            }
            Step::ShuffleAll { total_bytes } => *total_bytes += d.d[0],
        }
    }

    /// The step as it appears in iteration `i` of a repeat with delta `d`.
    pub fn at(&self, d: &StepDelta, i: u64) -> Step {
        let mut s = self.clone();
        let scaled = StepDelta { d: [d.d[0] * i, d.d[1] * i, d.d[2] * i], len: d.len };
        s.advance(&scaled);
        s
    }

    /// The per-iteration delta that turns `self` into `next`, if `next` is
    /// the same variant with equal structural fields and size fields that
    /// did not shrink. Returns `None` otherwise — callers flush and start a
    /// new run, so affinity is an optimization, never an assumption.
    pub fn affine_delta(&self, next: &Step) -> Option<StepDelta> {
        if std::mem::discriminant(self) != std::mem::discriminant(next) {
            return None;
        }
        let a = self.varying();
        let b = next.varying();
        debug_assert_eq!(a.len, b.len);
        let mut d = StepDelta::zeros(a.len);
        for k in 0..a.len as usize {
            d.d[k] = b.d[k].checked_sub(a.d[k])?;
        }
        // Structural fields are checked wholesale: advancing `self` by the
        // candidate delta must reproduce `next` exactly.
        let mut probe = self.clone();
        probe.advance(&d);
        (probe == *next).then_some(d)
    }
}

/// `(host, movement, mul)` accumulators for the program's O(1) accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Totals {
    host: u64,
    movement: u64,
    mul: u64,
}

impl Totals {
    fn add(self, o: Totals) -> Totals {
        Totals {
            host: self.host + o.host,
            movement: self.movement + o.movement,
            mul: self.mul + o.mul,
        }
    }

    fn scale(self, m: u64) -> Totals {
        Totals { host: self.host * m, movement: self.movement * m, mul: self.mul * m }
    }
}

/// Σ_{i=0}^{m−1} i = m(m−1)/2.
fn s1(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        m * (m - 1) / 2
    }
}

/// Σ_{i=0}^{m−1} i² = (m−1)m(2m−1)/6.
fn s2(m: u64) -> u64 {
    if m == 0 {
        0
    } else {
        (m - 1) * m * (2 * m - 1) / 6
    }
}

/// Σ_{i=0}^{m−1} (base + i·d) = m·base + d·S1(m).
fn affine_sum(base: u64, d: u64, m: u64) -> u64 {
    m * base + d * s1(m)
}

/// Closed-form totals of `step` summed over `m` iterations with per-field
/// increments `d`. Every metric is affine or bilinear in the varying
/// fields, so arithmetic-series sums are exact (this is integer
/// accounting, not f64 pricing — no rounding concerns).
fn repeated_step_totals(step: &Step, d: &StepDelta, m: u64) -> Totals {
    let mut t = Totals::default();
    match step {
        Step::HostBroadcast { bytes, .. } => t.host = affine_sum(*bytes, d.d[0], m),
        Step::HostScatter { total_bytes } => t.host = affine_sum(*total_bytes, d.d[0], m),
        Step::RingBroadcast { banks, bytes_per_hop, repeat, parallel } => {
            // Σ (b0 + i·db)(r0 + i·dr) — the one bilinear metric.
            let c = u64::from(banks.count) * u64::from(*parallel);
            let (b0, db) = (*bytes_per_hop, d.d[0]);
            let (r0, dr) = (*repeat, d.d[1]);
            t.movement = c * (m * b0 * r0 + (b0 * dr + r0 * db) * s1(m) + db * dr * s2(m));
        }
        Step::OneToAll { banks, bytes, parallel, .. } => {
            t.movement =
                u64::from(banks.count) * u64::from(*parallel) * affine_sum(*bytes, d.d[0], m);
        }
        Step::PairwiseReduceTree { banks, bytes, parallel, .. } => {
            t.movement = u64::from(banks.count.saturating_sub(1))
                * u64::from(*parallel)
                * affine_sum(*bytes, d.d[0], m);
        }
        Step::BroadcastDup { bytes, banks } => {
            t.movement = u64::from(*banks) * affine_sum(*bytes, d.d[0], m);
        }
        Step::IntraBankCopy { total_bytes, .. } => {
            t.movement = affine_sum(*total_bytes, d.d[1], m);
        }
        Step::ShuffleAll { total_bytes } => t.movement = affine_sum(*total_bytes, d.d[0], m),
        Step::PointwiseMul { total_elems, .. } => t.mul = affine_sum(*total_elems, d.d[1], m),
        Step::Repeat { .. } => {
            // Nested repeats carry no delta of their own (their varying
            // list is empty): every outer iteration contributes the same
            // inner totals.
            t = step_totals(step).scale(m);
        }
        _ => {}
    }
    t
}

fn step_totals(step: &Step) -> Totals {
    match step {
        Step::Repeat { count, body, delta } => {
            let mut t = Totals::default();
            for (s, d) in body.iter().zip(delta) {
                t = t.add(repeated_step_totals(s, d, *count));
            }
            t
        }
        // With m = 1 the delta never contributes (S1(1) = S2(1) = 0).
        other => repeated_step_totals(other, &StepDelta::none(), 1),
    }
}

fn step_count(step: &Step) -> u64 {
    match step {
        Step::Repeat { count, body, .. } => count * body.iter().map(step_count).sum::<u64>(),
        _ => 1,
    }
}

/// A compiled dataflow program.
///
/// Byte totals ([`Program::host_bytes`], [`Program::internal_movement_bytes`],
/// [`Program::total_mul_elems`]) are maintained incrementally at push time —
/// including exact closed-form sums over [`Step::Repeat`] — so report
/// generation is O(1) per program instead of a full step-stream rescan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    steps: Vec<Step>,
    host_bytes: u64,
    movement_bytes: u64,
    mul_elems: u64,
}

// On the wire a program is just its step list (the `{"steps": [...]}`
// shape the CLI's `--dump-ir` documents); the cached totals are rebuilt by
// re-pushing on read, so they can never go stale through serialization.
impl Serialize for Program {
    fn to_plain(&self) -> serde::Plain {
        serde::Plain::Map(vec![("steps".to_string(), self.steps.to_plain())])
    }
}

impl<'de> Deserialize<'de> for Program {
    fn from_plain(plain: &serde::Plain) -> Result<Self, serde::DeError> {
        let steps =
            plain.get("steps").ok_or_else(|| serde::DeError::missing("Program", "steps"))?;
        let steps: Vec<Step> = Deserialize::from_plain(steps)?;
        let mut p = Program::new();
        for s in steps {
            p.push(s);
        }
        Ok(p)
    }
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a step, folding its contribution into the cached totals.
    pub fn push(&mut self, step: Step) {
        let t = step_totals(&step);
        self.host_bytes += t.host;
        self.movement_bytes += t.movement;
        self.mul_elems += t.mul;
        self.steps.push(step);
    }

    /// The steps, in execution order ([`Step::Repeat`] not expanded).
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of top-level steps ([`Step::Repeat`] counts as one).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Number of steps with every [`Step::Repeat`] expanded — the length
    /// of [`Program::unroll`] without materializing it.
    pub fn unrolled_len(&self) -> u64 {
        self.steps.iter().map(step_count).sum()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The fully unrolled program: every [`Step::Repeat`] expanded to its
    /// per-iteration steps. The compressed program denotes exactly this
    /// sequence; the executor prices both identically.
    pub fn unroll(&self) -> Program {
        fn expand(out: &mut Program, step: &Step) {
            if let Step::Repeat { count, body, delta } = step {
                let mut cur: Vec<Step> = body.clone();
                for i in 0..*count {
                    if i > 0 {
                        for (s, d) in cur.iter_mut().zip(delta) {
                            s.advance(d);
                        }
                    }
                    for s in &cur {
                        expand(out, s);
                    }
                }
            } else {
                out.push(step.clone());
            }
        }
        let mut out = Program::new();
        for s in &self.steps {
            expand(&mut out, s);
        }
        out
    }

    /// Total bytes loaded from the host (weights + inputs) — the
    /// Figure 3(b) "loaded data" metric for host traffic. O(1): cached at
    /// push time.
    pub fn host_bytes(&self) -> u64 {
        self.host_bytes
    }

    /// Total bytes moved between or inside banks (ring broadcast, shuffles,
    /// copies, reduction trees). O(1): cached at push time.
    pub fn internal_movement_bytes(&self) -> u64 {
        self.movement_bytes
    }

    /// Total point-wise multiply lanes (≈ MAC count) — used by sanity tests
    /// to check work conservation across dataflows. O(1): cached at push
    /// time.
    pub fn total_mul_elems(&self) -> u64 {
        self.mul_elems
    }
}

impl Extend<Step> for Program {
    fn extend<T: IntoIterator<Item = Step>>(&mut self, iter: T) {
        for s in iter {
            self.push(s);
        }
    }
}

/// Folds a stream of per-iteration step blocks into [`Step::Repeat`]s.
///
/// Feed one block per loop iteration with [`RepeatCompressor::push_block`]
/// (consecutive blocks fold while each step is affine in its predecessor,
/// [`Step::affine_delta`]) or a pre-counted identical block with
/// [`RepeatCompressor::push_block_times`] (zero-delta runs the compiler
/// derived arithmetically — the decoder's `ceil(t/N)` plateaus). Call
/// [`RepeatCompressor::flush`] at the end. Blocks that do not fold are
/// emitted raw, so the output always unrolls to exactly the input stream.
#[derive(Debug, Default)]
pub struct RepeatCompressor {
    /// Iteration-0 body of the pending run.
    body: Vec<Step>,
    /// Committed per-step deltas (empty while only one block is pending).
    delta: Vec<StepDelta>,
    /// Iterations accumulated in the pending run (0 = no pending run).
    count: u64,
    /// `body` advanced `count` times — what the next block must equal to
    /// extend the run (maintained incrementally; no per-block allocation).
    expected: Vec<Step>,
}

impl RepeatCompressor {
    /// Fresh compressor with no pending run.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, block: &mut Vec<Step>) {
        self.body.clear();
        self.body.append(block);
        self.delta.clear();
        self.expected.clear();
        self.count = 1;
    }

    fn advance_expected(&mut self) {
        for (s, d) in self.expected.iter_mut().zip(&self.delta) {
            s.advance(d);
        }
    }

    /// Append one iteration's block (drained from `block`, which is left
    /// empty for reuse). Folds into the pending run when affine; flushes
    /// and restarts otherwise.
    pub fn push_block(&mut self, prog: &mut Program, block: &mut Vec<Step>) {
        if block.is_empty() {
            return;
        }
        if self.count == 0 {
            self.begin(block);
            return;
        }
        if block.len() == self.body.len() {
            if self.count == 1 && self.delta.is_empty() {
                // Second block of a candidate run: derive the deltas.
                let deltas: Option<Vec<StepDelta>> =
                    self.body.iter().zip(block.iter()).map(|(a, b)| a.affine_delta(b)).collect();
                if let Some(deltas) = deltas {
                    self.delta = deltas;
                    self.count = 2;
                    self.expected.clear();
                    self.expected.append(block);
                    self.advance_expected();
                    return;
                }
            } else if *block == self.expected {
                self.count += 1;
                self.advance_expected();
                block.clear();
                return;
            }
        }
        self.flush(prog);
        self.begin(block);
    }

    /// Append `times` consecutive iterations of one identical block
    /// (zero delta). Extends a pending zero-delta run of the same block;
    /// otherwise flushes and starts a new run.
    pub fn push_block_times(&mut self, prog: &mut Program, block: &mut Vec<Step>, times: u64) {
        if times == 0 || block.is_empty() {
            block.clear();
            return;
        }
        if self.count > 0 && self.delta.iter().all(StepDelta::is_zero) && *block == self.body {
            if self.delta.is_empty() {
                // A single pending block from push_block: commit zero deltas.
                self.delta = self.body.iter().map(|s| StepDelta::zeros(s.varying().len)).collect();
                self.expected = self.body.clone();
            }
            self.count += times;
            block.clear();
            return;
        }
        self.flush(prog);
        self.begin(block);
        self.delta = self.body.iter().map(|s| StepDelta::zeros(s.varying().len)).collect();
        self.expected = self.body.clone();
        self.count = times;
    }

    /// Emit the pending run: raw steps for a single iteration, one
    /// [`Step::Repeat`] otherwise.
    pub fn flush(&mut self, prog: &mut Program) {
        match self.count {
            0 => {}
            1 => {
                for s in self.body.drain(..) {
                    prog.push(s);
                }
            }
            _ => prog.push(Step::Repeat {
                count: self.count,
                body: std::mem::take(&mut self.body),
                delta: std::mem::take(&mut self.delta),
            }),
        }
        self.body.clear();
        self.delta.clear();
        self.expected.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_range_iteration() {
        let r = BankRange::new(4, 3);
        let ids: Vec<u32> = r.iter().map(|b| b.0).collect();
        assert_eq!(ids, vec![4, 5, 6]);
        assert!(!r.is_empty());
        assert!(BankRange::new(0, 0).is_empty());
    }

    #[test]
    fn program_accounting() {
        let mut p = Program::new();
        p.push(Step::HostBroadcast { bytes: 100, banks: 8 });
        p.push(Step::HostScatter { total_bytes: 50 });
        p.push(Step::RingBroadcast {
            banks: BankRange::new(0, 4),
            bytes_per_hop: 10,
            repeat: 3,
            parallel: 2,
        });
        p.push(Step::ShuffleAll { total_bytes: 200 });
        p.push(Step::BroadcastDup { bytes: 7, banks: 10 });
        p.push(Step::PointwiseMul { elems_per_bank: 5, total_elems: 20, a_bits: 8, b_bits: 8 });
        assert_eq!(p.host_bytes(), 150);
        assert_eq!(p.internal_movement_bytes(), 4 * 10 * 3 * 2 + 200 + 70);
        assert_eq!(p.total_mul_elems(), 20);
        assert_eq!(p.len(), 6);
        assert_eq!(p.unrolled_len(), 6);
    }

    fn mul(per_bank: u64, total: u64) -> Step {
        Step::PointwiseMul { elems_per_bank: per_bank, total_elems: total, a_bits: 8, b_bits: 8 }
    }

    #[test]
    fn affine_delta_requires_structural_equality() {
        let a = mul(5, 20);
        let b = mul(7, 26);
        assert_eq!(a.affine_delta(&b), Some(delta_of(&[2, 6])));
        // Shrinking fields never fold.
        assert_eq!(b.affine_delta(&a), None);
        // Structural (width) mismatch never folds.
        let c = Step::PointwiseMul { elems_per_bank: 7, total_elems: 26, a_bits: 16, b_bits: 8 };
        assert_eq!(a.affine_delta(&c), None);
        // Variant mismatch never folds.
        assert_eq!(a.affine_delta(&Step::HostScatter { total_bytes: 1 }), None);
        // Scope labels fold only when equal (zero-delta).
        assert_eq!(Step::scope("x").affine_delta(&Step::scope("x")), Some(StepDelta::none()));
        assert_eq!(Step::scope("x").affine_delta(&Step::scope("y")), None);
    }

    #[test]
    fn at_advances_i_times() {
        let s = Step::RingBroadcast {
            banks: BankRange::new(0, 4),
            bytes_per_hop: 10,
            repeat: 3,
            parallel: 2,
        };
        let d = delta_of(&[5, 1]);
        let s3 = s.at(&d, 3);
        assert_eq!(
            s3,
            Step::RingBroadcast {
                banks: BankRange::new(0, 4),
                bytes_per_hop: 25,
                repeat: 6,
                parallel: 2,
            }
        );
        let mut manual = s.clone();
        for _ in 0..3 {
            manual.advance(&d);
        }
        assert_eq!(s3, manual);
    }

    /// Repeat totals must be exact: compare closed-form accounting against
    /// the unrolled program, including the bilinear ring term.
    #[test]
    fn repeat_totals_match_unrolled_totals() {
        let body = vec![
            Step::scope("dec"),
            Step::HostScatter { total_bytes: 64 },
            Step::RingBroadcast {
                banks: BankRange::new(0, 8),
                bytes_per_hop: 100,
                repeat: 7,
                parallel: 3,
            },
            mul(10, 1000),
            Step::OneToAll { src: 0, banks: BankRange::new(0, 8), bytes: 32, parallel: 2 },
            Step::MemTouch { bytes_per_bank: 8, total_bytes: 512 },
        ];
        let delta = vec![
            StepDelta::none(),
            delta_of(&[16]),
            delta_of(&[10, 1]), // both ring fields vary: bilinear
            delta_of(&[1, 100]),
            delta_of(&[4]),
            delta_of(&[0, 64]),
        ];
        let mut p = Program::new();
        p.push(Step::repeat(9, body, delta));
        let u = p.unroll();
        assert_eq!(p.host_bytes(), u.host_bytes());
        assert_eq!(p.internal_movement_bytes(), u.internal_movement_bytes());
        assert_eq!(p.total_mul_elems(), u.total_mul_elems());
        assert_eq!(p.unrolled_len(), u.len() as u64);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn nested_repeat_totals_and_unroll() {
        let inner = Step::repeat(3, vec![mul(1, 10)], vec![delta_of(&[0, 0])]);
        let mut p = Program::new();
        p.push(Step::repeat(4, vec![inner], vec![StepDelta::none()]));
        assert_eq!(p.total_mul_elems(), 4 * 3 * 10);
        let u = p.unroll();
        assert_eq!(u.len(), 12);
        assert_eq!(u.total_mul_elems(), 120);
    }

    #[test]
    fn compressor_folds_affine_blocks() {
        let mut prog = Program::new();
        let mut comp = RepeatCompressor::new();
        let mut block = Vec::new();
        for t in 0..10u64 {
            block.clear();
            block.push(Step::scope("dec"));
            block.push(mul(5 + t, 100 + 3 * t));
            comp.push_block(&mut prog, &mut block);
        }
        comp.flush(&mut prog);
        assert_eq!(prog.len(), 1, "ten affine blocks fold into one repeat");
        match &prog.steps()[0] {
            Step::Repeat { count, body, delta } => {
                assert_eq!(*count, 10);
                assert_eq!(body.len(), 2);
                assert_eq!(delta[1], delta_of(&[1, 3]));
            }
            other => panic!("expected a repeat, got {other:?}"),
        }
        // Unrolls to exactly the input stream.
        let u = prog.unroll();
        assert_eq!(u.len(), 20);
        assert_eq!(u.steps()[19], mul(5 + 9, 100 + 27));
    }

    #[test]
    fn compressor_flushes_non_affine_blocks() {
        let mut prog = Program::new();
        let mut comp = RepeatCompressor::new();
        let mut block = Vec::new();
        // Two affine blocks, then a shrinking (non-affine) one.
        for per_bank in [5u64, 6, 2, 3] {
            block.clear();
            block.push(mul(per_bank, per_bank * 10));
            comp.push_block(&mut prog, &mut block);
        }
        comp.flush(&mut prog);
        // [5,6] folds, [2,3] folds — two repeats.
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.unrolled_len(), 4);
        let u = prog.unroll();
        let sizes: Vec<u64> = u
            .steps()
            .iter()
            .map(|s| match s {
                Step::PointwiseMul { elems_per_bank, .. } => *elems_per_bank,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![5, 6, 2, 3]);
    }

    #[test]
    fn compressor_push_block_times_merges_plateaus() {
        let mut prog = Program::new();
        let mut comp = RepeatCompressor::new();
        let mut block = vec![mul(5, 100)];
        comp.push_block_times(&mut prog, &mut block, 4);
        let mut block = vec![mul(5, 100)];
        comp.push_block_times(&mut prog, &mut block, 3); // same block: merges
        let mut block = vec![mul(9, 100)];
        comp.push_block_times(&mut prog, &mut block, 2); // different: new run
        comp.flush(&mut prog);
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.unrolled_len(), 9);
        assert_eq!(prog.total_mul_elems(), 9 * 100);
    }

    #[test]
    fn compressor_single_block_emits_raw() {
        let mut prog = Program::new();
        let mut comp = RepeatCompressor::new();
        let mut block = vec![mul(5, 100), Step::HostScatter { total_bytes: 8 }];
        comp.push_block(&mut prog, &mut block);
        comp.flush(&mut prog);
        assert_eq!(prog.len(), 2);
        assert!(!prog.steps().iter().any(|s| matches!(s, Step::Repeat { .. })));
    }

    #[test]
    fn compressed_program_roundtrips_through_serde() {
        let mut p = Program::new();
        p.push(Step::scope("dec.attn"));
        p.push(Step::repeat(
            5,
            vec![mul(3, 30), Step::HostScatter { total_bytes: 16 }],
            vec![delta_of(&[1, 10]), delta_of(&[0])],
        ));
        let json = serde_json::to_string(&p).expect("serialize");
        let back: Program = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
        assert_eq!(back.host_bytes(), p.host_bytes());
        assert_eq!(back.total_mul_elems(), p.total_mul_elems());
    }
}
