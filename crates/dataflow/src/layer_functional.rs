//! Numerical execution of the layer-based baseline dataflow.
//!
//! The layer dataflow distributes each layer's *output elements* over the
//! banks: a bank owns a slice of score rows (receiving the full duplicated
//! `K`/`V`), results are written back to a logically-shared intermediate
//! and redistributed before the next stage. This module executes that
//! organization numerically, stage by stage with explicit write-back /
//! reload boundaries, so the baseline being costed is proven semantically
//! valid too (mirroring [`crate::functional`] for the token dataflow).

use crate::functional::shard_rows;
use transpim_transformer::layers::EncoderLayerWeights;
use transpim_transformer::matrix::Matrix;
use transpim_transformer::softmax::{softmax, SoftmaxKind};

/// A logically-shared intermediate buffer: the layer dataflow's "write
/// everything back to memory, reload for the next stage" boundary.
#[derive(Debug, Clone, Default)]
pub struct SharedIntermediate {
    slots: std::collections::BTreeMap<String, Matrix>,
}

impl SharedIntermediate {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a stage result back (the `MemTouch`/`ShuffleAll` the cost
    /// model charges).
    pub fn store(&mut self, name: &str, value: Matrix) {
        self.slots.insert(name.to_owned(), value);
    }

    /// Reload a stage input.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never written — a dataflow ordering bug.
    pub fn load(&self, name: &str) -> &Matrix {
        self.slots
            .get(name)
            .unwrap_or_else(|| panic!("layer dataflow loaded '{name}' before storing it"))
    }

    /// Bytes currently resident (f32 accounting), for tests.
    pub fn resident_bytes(&self) -> usize {
        self.slots.values().map(|m| m.rows() * m.cols() * 4).sum()
    }
}

/// One encoder layer executed under the layer-based organization over
/// `n_banks` banks:
///
/// 1. **FC stage**: input rows are distributed; every bank computes Q/K/V
///    for its rows; results are written back whole.
/// 2. **Score stage**: banks own disjoint score-row slices; each receives
///    the *full* `K` (the duplication the cost model charges) and writes
///    its `S` slice back.
/// 3. **Softmax stage**: `S` is reloaded row-distributed and normalized.
/// 4. **Weighted-value stage**: probabilities reload with the full
///    duplicated `V`; output projection and FFN follow the same
///    distribute/compute/write-back pattern.
///
/// Must equal the monolithic reference exactly (same per-stage math, just
/// reorganized) — asserted by the integration tests.
pub fn encoder_layer_layerflow(
    x: &Matrix,
    w: &EncoderLayerWeights,
    heads: usize,
    kind: SoftmaxKind,
    n_banks: usize,
) -> Matrix {
    let l = x.rows();
    let d = x.cols();
    assert!(heads >= 1 && d.is_multiple_of(heads), "bad head split");
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut mem = SharedIntermediate::new();
    mem.store("x", x.clone());

    // Stage 1: FC — row-distributed matmuls, results written back whole.
    let stage_matmul = |mem: &SharedIntermediate, input: &str, weight: &Matrix| -> Matrix {
        let input = mem.load(input);
        let parts: Vec<Matrix> = shard_rows(input.rows(), n_banks)
            .into_iter()
            .map(|(lo, hi)| input.slice_rows(lo, hi).matmul(weight))
            .collect();
        Matrix::vcat(&parts)
    };
    let q = stage_matmul(&mem, "x", &w.attn.wq);
    let k = stage_matmul(&mem, "x", &w.attn.wk);
    let v = stage_matmul(&mem, "x", &w.attn.wv);
    mem.store("q", q);
    mem.store("k", k);
    mem.store("v", v);

    // Stage 2: scores — each bank gets a row slice of Q plus the FULL K.
    let mut head_probs: Vec<Matrix> = Vec::with_capacity(heads);
    for h in 0..heads {
        let (c0, c1) = (h * dh, (h + 1) * dh);
        let qh = mem.load("q").slice_cols(c0, c1);
        let kh_full = mem.load("k").slice_cols(c0, c1); // duplicated to every bank
        let score_parts: Vec<Matrix> = shard_rows(l, n_banks)
            .into_iter()
            .map(|(lo, hi)| qh.slice_rows(lo, hi).matmul_transb(&kh_full).scale(scale))
            .collect();
        let scores = Matrix::vcat(&score_parts);

        // Stage 3: softmax — S reloaded row-distributed.
        let prob_parts: Vec<Matrix> = shard_rows(scores.rows(), n_banks)
            .into_iter()
            .map(|(lo, hi)| softmax(&scores.slice_rows(lo, hi), kind))
            .collect();
        head_probs.push(Matrix::vcat(&prob_parts));
    }

    // Stage 4: weighted values — probabilities row-distributed, V duplicated.
    let mut head_outs: Vec<Matrix> = Vec::with_capacity(heads);
    for (h, probs) in head_probs.iter().enumerate() {
        let (c0, c1) = (h * dh, (h + 1) * dh);
        let vh_full = mem.load("v").slice_cols(c0, c1);
        let parts: Vec<Matrix> = shard_rows(l, n_banks)
            .into_iter()
            .map(|(lo, hi)| probs.slice_rows(lo, hi).matmul(&vh_full))
            .collect();
        head_outs.push(Matrix::vcat(&parts));
    }
    mem.store("attn", Matrix::hcat(&head_outs));

    // Output projection + residual, then FFN, each a distribute/compute/
    // write-back stage.
    let proj = stage_matmul(&mem, "attn", &w.attn.wo).add(mem.load("x"));
    mem.store("attn_out", proj);
    let inner = stage_matmul(&mem, "attn_out", &w.w1).map(|v| v.max(0.0));
    mem.store("ffn_inner", inner);
    let out = stage_matmul(&mem, "ffn_inner", &w.w2).add(mem.load("attn_out"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use transpim_transformer::layers::encoder_layer;
    use transpim_transformer::model::{ModelConfig, ModelWeights};

    fn case() -> (ModelConfig, ModelWeights, Matrix) {
        let cfg = ModelConfig::tiny_test();
        let w = ModelWeights::random(&cfg, 17);
        let x = Matrix::from_fn(11, cfg.d_model, |r, c| {
            (((r * 29 + c * 7) % 83) as f32 / 83.0 - 0.5) * 1.3
        });
        (cfg, w, x)
    }

    #[test]
    fn layer_flow_matches_reference_across_bank_counts() {
        let (cfg, w, x) = case();
        let reference = encoder_layer(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact);
        for banks in [1usize, 2, 3, 5, 11, 16] {
            let got =
                encoder_layer_layerflow(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact, banks);
            let diff = reference.max_abs_diff(&got);
            assert!(diff < 1e-4, "banks={banks}: diff {diff}");
        }
    }

    #[test]
    fn layer_flow_matches_token_flow() {
        // Both organizations compute the same function; the cost model's
        // comparison between them is therefore apples to apples.
        let (cfg, w, x) = case();
        let layer = encoder_layer_layerflow(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact, 4);
        let token = crate::functional::encoder_layer_sharded(
            &x,
            &w.encoder[0],
            cfg.heads,
            SoftmaxKind::Exact,
            4,
        );
        assert!(layer.max_abs_diff(&token) < 1e-4);
    }

    #[test]
    fn intermediates_accumulate_in_shared_memory() {
        // The write-back boundaries the cost model charges are real: after
        // a layer, the shared store has held x, Q, K, V, attention and FFN
        // intermediates.
        let mut mem = SharedIntermediate::new();
        mem.store("a", Matrix::zeros(4, 4));
        mem.store("b", Matrix::zeros(2, 8));
        assert_eq!(mem.resident_bytes(), (16 + 16) * 4);
        assert_eq!(mem.load("a").shape(), (4, 4));
    }

    #[test]
    #[should_panic(expected = "before storing")]
    fn loading_unwritten_slot_is_a_dataflow_bug() {
        SharedIntermediate::new().load("nope");
    }
}
