//! Per-bank memory footprint accounting for the token-based dataflow.
//!
//! The dataflow keeps each shard's working set resident in its bank: the
//! current layer's full weight copy, the shard's activations (with the
//! Figure 8(a) operand replicas), the in-flight ring buffers, and — the
//! quadratic term — the shard's rows of the attention score matrix
//! (`r × L × h` softmax-width values, where `r = ceil(L/N)`). A 32 MiB bank
//! therefore bounds the sequence length a fixed bank count can host, which
//! is the capacity side of the paper's Section V-F scalability argument
//! (more stacks extend the reachable `L`, unlike a fixed-memory GPU).

use crate::ir::Precision;
use serde::{Deserialize, Serialize};
use transpim_transformer::model::ModelConfig;

/// Peak bytes a single bank holds under the token dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BankFootprint {
    /// One layer's full weight copy (the largest layer's set).
    pub weights: u64,
    /// Shard activations: input/Q/K/V/O rows plus FFN intermediate, with
    /// the three row-parallel operand replicas of Figure 8(a).
    pub activations: u64,
    /// In-flight ring-broadcast buffers (one incoming + one outgoing
    /// K/V shard).
    pub ring_buffers: u64,
    /// The shard's attention-score rows at Softmax width (kept through
    /// exponentiation and the weighted-value pass).
    pub scores: u64,
    /// Decoder K/V cache share (context + generated tokens).
    pub kv_cache: u64,
}

impl BankFootprint {
    /// Total peak bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.activations + self.ring_buffers + self.scores + self.kv_cache
    }

    /// Whether the footprint fits a bank of `bank_bytes`.
    pub fn fits(&self, bank_bytes: u64) -> bool {
        self.total() <= bank_bytes
    }
}

/// Peak per-bank footprint of running `cfg` on an `seq_len`-token sequence
/// (plus `decode_len` generated tokens) sharded over `banks` banks.
///
/// # Panics
///
/// Panics if `banks == 0` or `seq_len == 0`.
pub fn token_flow_footprint(
    cfg: &ModelConfig,
    seq_len: u64,
    decode_len: u64,
    banks: u64,
    p: Precision,
) -> BankFootprint {
    assert!(banks > 0 && seq_len > 0, "degenerate footprint query");
    let r = seq_len.div_ceil(banks);
    let d = cfg.d_model as u64;
    let h = cfg.heads as u64;
    let dff = cfg.d_ff as u64;
    let act_b = u64::from(p.act_bits) / 8;
    let sm_b = u64::from(p.softmax_bits) / 8;

    // Largest single layer's weights (encoder block or decoder block).
    let enc_w = (4 * d * d + 2 * d * dff) * act_b;
    let dec_w = (4 * d * d + if cfg.cross_attention { 4 * d * d } else { 0 } + 2 * d * dff) * act_b;
    let weights = enc_w.max(if cfg.decoder_layers > 0 { dec_w } else { 0 });

    // x, Q, K, V, O rows (5 × r×D) with 3 operand replicas on the hot one,
    // plus the FFN intermediate r×D_ff.
    let activations = (5 * r * d + 2 * r * d + r * dff) * act_b;
    let ring_buffers = 2 * r * d * act_b;
    let scores = 2 * r * seq_len * h * sm_b; // raw + exponentiated
    let kv_cache = if cfg.decoder_layers > 0 {
        let cached = seq_len + decode_len;
        2 * cached.div_ceil(banks) * d * act_b * cfg.decoder_layers as u64
    } else {
        0
    };

    BankFootprint { weights, activations, ring_buffers, scores, kv_cache }
}

/// Bytes of K/V cache one generated token appends across the whole ring
/// (K and V rows for every decoder layer). Equivalently: each bank's
/// `kv_cache` footprint grows by this amount per full ring round of
/// `banks` generated tokens, since banks take appends in turn. This is
/// the steady per-token reservation the in-place `KvCache`/`ShardedKv`
/// appends amortize, and the linear `delta` the compiled decode loop's
/// `Step::Repeat` carries for its memory-touch steps.
pub fn kv_growth_per_token(cfg: &ModelConfig, p: Precision) -> u64 {
    2 * cfg.d_model as u64 * (u64::from(p.act_bits) / 8) * cfg.decoder_layers as u64
}

/// The largest sequence length whose token-dataflow footprint fits banks of
/// `bank_bytes` when sharded over `banks` banks (binary search; 0 if even
/// one token does not fit).
pub fn max_seq_len(cfg: &ModelConfig, banks: u64, bank_bytes: u64, p: Precision) -> u64 {
    let fits = |l: u64| l > 0 && token_flow_footprint(cfg, l, 0, banks, p).fits(bank_bytes);
    if !fits(1) {
        return 0;
    }
    let mut lo = 1u64;
    let mut hi = 1u64 << 28;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pegasus() -> ModelConfig {
        ModelConfig::pegasus_large()
    }

    const BANK: u64 = 32 * 1024 * 1024;

    #[test]
    fn pubmed_fits_comfortably() {
        let f = token_flow_footprint(&pegasus(), 4096, 256, 2048, Precision::default());
        assert!(f.fits(BANK), "PubMed footprint {} exceeds a bank", f.total());
        // Weights dominate at this scale (one full layer copy per bank).
        assert!(f.weights > f.scores);
    }

    #[test]
    fn scores_dominate_and_break_at_very_long_sequences() {
        let f64k = token_flow_footprint(&pegasus(), 64 * 1024, 0, 2048, Precision::default());
        assert!(
            f64k.scores > f64k.weights,
            "64K: scores {} vs weights {}",
            f64k.scores,
            f64k.weights
        );
        assert!(!f64k.fits(BANK), "64K over 2048 banks should not fit");
    }

    #[test]
    fn max_seq_len_is_consistent_with_fits() {
        let cfg = pegasus();
        let p = Precision::default();
        let max = max_seq_len(&cfg, 2048, BANK, p);
        assert!(max > 16 * 1024, "Pegasus should host >16K tokens, got {max}");
        assert!(token_flow_footprint(&cfg, max, 0, 2048, p).fits(BANK));
        assert!(!token_flow_footprint(&cfg, max + 1024, 0, 2048, p).fits(BANK));
    }

    #[test]
    fn more_banks_extend_the_reachable_length() {
        let cfg = pegasus();
        let p = Precision::default();
        let small = max_seq_len(&cfg, 256, BANK, p);
        let large = max_seq_len(&cfg, 2048, BANK, p);
        assert!(large > small, "scaling banks must extend L: {small} vs {large}");
    }

    #[test]
    fn kv_growth_matches_footprint_slope() {
        // One full ring round (`banks` generated tokens) grows each bank's
        // kv share by exactly the per-token growth constant.
        let cfg = pegasus();
        let p = Precision::default();
        let banks = 2048;
        let base = token_flow_footprint(&cfg, 4096, banks, banks, p).kv_cache;
        let next = token_flow_footprint(&cfg, 4096, 2 * banks, banks, p).kv_cache;
        assert_eq!(next - base, kv_growth_per_token(&cfg, p));
        assert!(kv_growth_per_token(&cfg, p) > 0);
    }

    #[test]
    fn tiny_bank_hosts_nothing() {
        assert_eq!(max_seq_len(&pegasus(), 2048, 1024, Precision::default()), 0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_banks_rejected() {
        token_flow_footprint(&pegasus(), 128, 0, 0, Precision::default());
    }
}
