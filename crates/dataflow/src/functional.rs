//! Numerical execution of the token-based dataflow.
//!
//! This module *actually computes* the sharded encoder layer and the
//! distributed decoder step, shard by shard and ring step by ring step,
//! using only the data a bank would physically hold plus what the ring
//! broadcast / reduction tree delivers. The integration tests compare the
//! results against the monolithic reference in `transpim-transformer` —
//! proving the dataflow reorganization (Figures 4 and 5) preserves the
//! Transformer's semantics.

use transpim_transformer::layers::{DecoderLayerWeights, EncoderLayerWeights};
use transpim_transformer::matrix::Matrix;
use transpim_transformer::softmax::{softmax, SoftmaxKind};
use transpim_transformer::Matrix as M;

/// Split `L` rows into `n` near-equal contiguous shards
/// (`ceil(L/n)` rows each, the last possibly short).
pub fn shard_rows(l: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(n >= 1, "need at least one shard");
    let r = l.div_ceil(n);
    (0..n).map(|i| (i * r, ((i + 1) * r).min(l))).filter(|(lo, hi)| lo < hi).collect()
}

/// One encoder layer executed shard-wise with ring broadcasts (Figure 4).
///
/// `n_banks` banks each own a contiguous token shard. Per head, every bank
/// first computes its diagonal score block from local `Q_i`/`K_i`
/// (intra-shard local attention), then receives each remote `K_j` in ring
/// order and fills in the off-diagonal blocks (inter-shard cross
/// attention); Softmax is bank-local; the weighted-value accumulation
/// receives `V_j` over the same ring. Returns the re-assembled `L × D`
/// layer output.
pub fn encoder_layer_sharded(
    x: &Matrix,
    w: &EncoderLayerWeights,
    heads: usize,
    kind: SoftmaxKind,
    n_banks: usize,
) -> Matrix {
    let l = x.rows();
    let d = x.cols();
    assert!(heads >= 1 && d.is_multiple_of(heads), "bad head split");
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let shards = shard_rows(l, n_banks);
    let n = shards.len();

    // (1) FC: every bank projects its own tokens with its full local
    // weight copy.
    let xs: Vec<Matrix> = shards.iter().map(|&(lo, hi)| x.slice_rows(lo, hi)).collect();
    let qs: Vec<Matrix> = xs.iter().map(|xi| xi.matmul(&w.attn.wq)).collect();
    let ks: Vec<Matrix> = xs.iter().map(|xi| xi.matmul(&w.attn.wk)).collect();
    let vs: Vec<Matrix> = xs.iter().map(|xi| xi.matmul(&w.attn.wv)).collect();

    let mut attn_shards: Vec<Matrix> = Vec::with_capacity(n);
    for i in 0..n {
        let rows_i = shards[i].1 - shards[i].0;
        let mut head_outs: Vec<Matrix> = Vec::with_capacity(heads);
        for h in 0..heads {
            let (c0, c1) = (h * dh, (h + 1) * dh);
            let qh = qs[i].slice_cols(c0, c1);

            // (2)+(3): local block, then ring-delivered remote blocks,
            // placed at the correct column offsets of the score row.
            let mut scores = M::zeros(rows_i, l);
            for s in 0..n {
                let j = (i + s) % n;
                let kh = ks[j].slice_cols(c0, c1);
                let block = qh.matmul_transb(&kh).scale(scale);
                let (jlo, _) = shards[j];
                for r in 0..rows_i {
                    for c in 0..block.cols() {
                        scores[(r, jlo + c)] = block[(r, c)];
                    }
                }
            }

            // Softmax: whole rows are bank-local.
            let probs = softmax(&scores, kind);

            // (4): weighted values, V_j arriving over the ring.
            let mut out = M::zeros(rows_i, dh);
            for s in 0..n {
                let j = (i + s) % n;
                let vh = vs[j].slice_cols(c0, c1);
                let (jlo, jhi) = shards[j];
                let pj = probs.slice_cols(jlo, jhi);
                out = out.add(&pj.matmul(&vh));
            }
            head_outs.push(out);
        }
        attn_shards.push(Matrix::hcat(&head_outs));
    }

    // Output projection + residual + FFN, all bank-local.
    let out_shards: Vec<Matrix> = attn_shards
        .iter()
        .zip(&xs)
        .map(|(a, xi)| {
            let attn_out = a.matmul(&w.attn.wo).add(xi);
            transpim_transformer::layers::ffn(&attn_out, &w.w1, &w.w2).add(&attn_out)
        })
        .collect();
    Matrix::vcat(&out_shards)
}

/// Distributed K/V state of a decoder running the token dataflow: the
/// context (encoder output or prefix) shards plus generated tokens assigned
/// to the least-loaded bank (Section III-C).
#[derive(Debug, Clone)]
pub struct ShardedKv {
    /// Per-bank keys (rows of `K` this bank owns).
    pub k: Vec<Matrix>,
    /// Per-bank values.
    pub v: Vec<Matrix>,
    d: usize,
}

impl ShardedKv {
    /// Empty state over `n_banks` banks for width-`d` keys.
    pub fn empty(n_banks: usize, d: usize) -> Self {
        Self { k: vec![Matrix::zeros(0, d); n_banks], v: vec![Matrix::zeros(0, d); n_banks], d }
    }

    /// Shard an existing `L × D` K/V pair (encoder context or prefix).
    pub fn from_context(k: &Matrix, v: &Matrix, n_banks: usize) -> Self {
        assert_eq!(k.shape(), v.shape(), "K/V shape mismatch");
        let shards = shard_rows(k.rows(), n_banks);
        let mut s = Self::empty(n_banks, k.cols());
        for (i, &(lo, hi)) in shards.iter().enumerate() {
            s.k[i] = k.slice_rows(lo, hi);
            s.v[i] = v.slice_rows(lo, hi);
        }
        s
    }

    /// Append a generated token's K/V row to the least-loaded bank
    /// (the paper's balancing policy).
    pub fn append_balanced(&mut self, k_new: Matrix, v_new: Matrix) {
        let i = (0..self.k.len()).min_by_key(|&i| self.k[i].rows()).expect("no banks");
        self.append_at(i, k_new, v_new);
    }

    /// Append to the last bank (the naive policy the balancing argument of
    /// Section III-C improves on); exists for the placement ablation.
    pub fn append_last(&mut self, k_new: Matrix, v_new: Matrix) {
        let i = self.k.len() - 1;
        self.append_at(i, k_new, v_new);
    }

    /// Append to a specific bank.
    ///
    /// In place and amortized O(rows appended) — the shard grows through
    /// [`Matrix::push_rows`], not a clone-and-concatenate, so decoding `T`
    /// tokens does O(T) row-copy work instead of O(T²).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or the widths mismatch.
    pub fn append_at(&mut self, bank: usize, k_new: Matrix, v_new: Matrix) {
        assert!(bank < self.k.len(), "bank {bank} out of range");
        assert_eq!(k_new.cols(), self.d, "width mismatch");
        self.k[bank].push_rows(&k_new);
        self.v[bank].push_rows(&v_new);
    }

    /// Tokens held by the fullest bank (the decoder's critical path).
    pub fn max_rows(&self) -> usize {
        self.k.iter().map(Matrix::rows).max().unwrap_or(0)
    }

    /// Total cached rows.
    pub fn len(&self) -> usize {
        self.k.iter().map(Matrix::rows).sum()
    }

    /// Whether no rows are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tree-combine per-bank values in the pairwise-reduction order of
/// Section IV-B2 (stride doubling).
fn tree_combine(mut vals: Vec<Matrix>) -> Matrix {
    assert!(!vals.is_empty(), "nothing to combine");
    let n = vals.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            vals[i] = vals[i].add(&vals[i + stride].clone());
            i += 2 * stride;
        }
        stride *= 2;
    }
    vals.swap_remove(0)
}

/// Multi-head attention of a single query against distributed K/V, with a
/// bank-local exponent pass, a tree-reduced row sum, and a tree-reduced
/// weighted-value partial sum — the decoder flow of Figure 5. Only the
/// hardware Softmax (no max subtraction) is distributable without an extra
/// global pass; for [`SoftmaxKind::Exact`] a preliminary tree max-reduction
/// is performed, matching the reference numerics.
pub fn attention_distributed(
    q: &Matrix,
    kv: &ShardedKv,
    heads: usize,
    kind: SoftmaxKind,
) -> Matrix {
    assert_eq!(q.rows(), 1, "one query row");
    let d = q.cols();
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let n = kv.k.len();

    let mut head_outs = Vec::with_capacity(heads);
    for h in 0..heads {
        let (c0, c1) = (h * dh, (h + 1) * dh);
        let qh = q.slice_cols(c0, c1);

        // Bank-local scores.
        let scores: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let kh = kv.k[i].slice_cols(c0, c1);
                (0..kh.rows())
                    .map(|r| {
                        qh.row(0).iter().zip(kh.row(r)).map(|(&a, &b)| a * b).sum::<f32>() * scale
                    })
                    .collect()
            })
            .collect();

        // Exact softmax needs the global max first (tree max-reduce).
        let max = match kind {
            SoftmaxKind::Exact => {
                scores.iter().flatten().copied().fold(f32::NEG_INFINITY, f32::max)
            }
            SoftmaxKind::HardwareTaylor => 0.0,
        };

        // Local exponents and partial row sums.
        let exps: Vec<Vec<f32>> = scores
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&x| match kind {
                        SoftmaxKind::Exact => (x - max).exp(),
                        SoftmaxKind::HardwareTaylor => {
                            transpim_transformer::softmax::taylor_exp(x, 5).max(0.0)
                        }
                    })
                    .collect()
            })
            .collect();
        let partial_sums: Vec<Matrix> =
            exps.iter().map(|e| Matrix::from_vec(1, 1, vec![e.iter().sum::<f32>()])).collect();
        let denom = tree_combine(partial_sums)[(0, 0)];
        let recip = if denom > 0.0 { 1.0 / denom } else { 0.0 };

        // Bank-local weighted values, tree-combined.
        let partials: Vec<Matrix> = (0..n)
            .map(|i| {
                let vh = kv.v[i].slice_cols(c0, c1);
                let mut acc = Matrix::zeros(1, dh);
                for r in 0..vh.rows() {
                    let p = exps[i][r] * recip;
                    for c in 0..dh {
                        acc[(0, c)] += p * vh[(r, c)];
                    }
                }
                acc
            })
            .collect();
        head_outs.push(tree_combine(partials));
    }
    Matrix::hcat(&head_outs)
}

/// One decoder block step under the token dataflow: FC projections for the
/// new token, balanced cache append, distributed self-attention, optional
/// distributed cross-attention, FFN.
pub fn decoder_layer_step_sharded(
    x: &Matrix,
    w: &DecoderLayerWeights,
    self_kv: &mut ShardedKv,
    cross_kv: Option<&ShardedKv>,
    heads: usize,
    kind: SoftmaxKind,
) -> Matrix {
    assert_eq!(x.rows(), 1, "one token at a time");
    let q = x.matmul(&w.self_attn.wq);
    let k_new = x.matmul(&w.self_attn.wk);
    let v_new = x.matmul(&w.self_attn.wv);
    self_kv.append_balanced(k_new, v_new);
    let attn = attention_distributed(&q, self_kv, heads, kind);
    let mut out = attn.matmul(&w.self_attn.wo).add(x);

    if let (Some(cw), Some(ckv)) = (&w.cross_attn, cross_kv) {
        let q = out.matmul(&cw.wq);
        let attn = attention_distributed(&q, ckv, heads, kind);
        out = attn.matmul(&cw.wo).add(&out);
    }

    transpim_transformer::layers::ffn(&out, &w.w1, &w.w2).add(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_rows_covers_everything() {
        assert_eq!(shard_rows(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(shard_rows(4, 8), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(shard_rows(6, 1), vec![(0, 6)]);
    }

    #[test]
    fn tree_combine_matches_sum() {
        for n in 1..=9 {
            let vals: Vec<Matrix> =
                (0..n).map(|i| Matrix::from_vec(1, 1, vec![i as f32 + 1.0])).collect();
            let total = tree_combine(vals)[(0, 0)];
            let expect: f32 = (1..=n).map(|i| i as f32).sum();
            assert!((total - expect).abs() < 1e-5, "n={n}");
        }
    }

    #[test]
    fn sharded_kv_balanced_append() {
        let mut kv = ShardedKv::empty(3, 4);
        for i in 0..7 {
            let m = Matrix::from_fn(1, 4, |_, c| (i * 4 + c) as f32);
            kv.append_balanced(m.clone(), m);
        }
        let sizes: Vec<usize> = kv.k.iter().map(Matrix::rows).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn sharded_append_matches_vcat_rebuild() {
        // In-place shard growth must be bitwise identical to rebuilding
        // each shard by concatenation.
        let mut kv = ShardedKv::empty(2, 3);
        let mut rebuilt: Vec<Vec<Matrix>> = vec![Vec::new(); 2];
        for i in 0..9 {
            let m = Matrix::from_fn(1, 3, |_, c| (i * 3 + c) as f32 * 0.5);
            let bank = i % 2;
            kv.append_at(bank, m.clone(), m.clone());
            rebuilt[bank].push(m);
        }
        for (bank, parts) in rebuilt.iter().enumerate() {
            let want = Matrix::vcat(parts);
            assert_eq!(kv.k[bank].as_slice(), want.as_slice());
            assert_eq!(kv.v[bank].as_slice(), want.as_slice());
        }
    }

    // The equivalence tests against the monolithic reference live in
    // `tests/` at the workspace root (they span crates).
}
