//! Token-based data sharding (Section III-A).
//!
//! The input tokens of each sequence are divided uniformly along the token
//! dimension and assigned to a contiguous range of banks in ring order;
//! each bank then owns its tokens' embeddings, Q/K/V rows, attention-score
//! rows and FFN activations for the entire inference. A batch of sequences
//! occupies disjoint bank ranges, which is how short-sequence workloads
//! (IMDB, TriviaQA) fill the memory (Section V-B measures per-batch time
//! for exactly this reason).

use crate::ir::BankRange;
use serde::{Deserialize, Serialize};

/// Shard assignment of one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqShard {
    /// Banks assigned to this sequence.
    pub banks: BankRange,
    /// Sequence length in tokens.
    pub seq_len: u32,
}

impl SeqShard {
    /// Tokens held by the fullest bank (`ceil(L / N)`).
    pub fn tokens_per_bank(&self) -> u32 {
        self.seq_len.div_ceil(self.banks.count.max(1))
    }
}

/// Token-based sharding of a batch across the memory system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sharding {
    /// Per-sequence shard assignments.
    pub sequences: Vec<SeqShard>,
    /// Total banks in the system.
    pub total_banks: u32,
}

impl Sharding {
    /// Shard `batch` sequences of `seq_len` tokens over `total_banks`
    /// banks: banks are split evenly among sequences, and no sequence gets
    /// more banks than it has tokens (a bank must own at least one token).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `seq_len == 0`, or `total_banks == 0`.
    pub fn new(total_banks: u32, batch: u32, seq_len: u32) -> Self {
        assert!(batch > 0 && seq_len > 0 && total_banks > 0, "degenerate sharding");
        let per_seq = (total_banks / batch).clamp(1, seq_len);
        let sequences = (0..batch)
            .map(|i| SeqShard {
                banks: BankRange::new(i * (total_banks / batch).max(1) % total_banks, per_seq),
                seq_len,
            })
            .collect();
        Self { sequences, total_banks }
    }

    /// Banks doing work (≤ total banks).
    pub fn active_banks(&self) -> u32 {
        self.sequences.iter().map(|s| s.banks.count).sum::<u32>().min(self.total_banks)
    }

    /// Bank utilization fraction (IMDB at batch 1 under-fills the system —
    /// the paper's explanation for its smaller speedup).
    pub fn utilization(&self) -> f64 {
        f64::from(self.active_banks()) / f64::from(self.total_banks)
    }

    /// Tokens in the fullest bank across the batch.
    pub fn max_tokens_per_bank(&self) -> u32 {
        self.sequences.iter().map(SeqShard::tokens_per_bank).max().unwrap_or(0)
    }

    /// Token re-sharding around failed banks — the degradation policy for
    /// whole-bank failures. The surviving banks keep their ring order and
    /// are renumbered contiguously (program bank `i` addresses the `i`-th
    /// healthy physical bank), so the batch is simply sharded over the
    /// shrunk pool and every downstream cost model sees a smaller ring.
    ///
    /// Returns `None` when no banks survive.
    pub fn around_failed(
        total_banks: u32,
        batch: u32,
        seq_len: u32,
        failed: &[u32],
    ) -> Option<Self> {
        let healthy = healthy_banks(total_banks, failed.iter().copied());
        if healthy == 0 {
            return None;
        }
        Some(Self::new(healthy, batch, seq_len))
    }
}

/// Banks still usable when `failed` banks are fenced off. Duplicate and
/// out-of-range entries are ignored (scenario validation reports those
/// separately).
pub fn healthy_banks(total_banks: u32, failed: impl IntoIterator<Item = u32>) -> u32 {
    let unique: std::collections::BTreeSet<u32> =
        failed.into_iter().filter(|&b| b < total_banks).collect();
    total_banks - unique.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pubmed_sharding_two_tokens_per_bank() {
        // L = 4096 over 2048 banks: 2 tokens per bank.
        let s = Sharding::new(2048, 1, 4096);
        assert_eq!(s.sequences.len(), 1);
        assert_eq!(s.sequences[0].banks.count, 2048);
        assert_eq!(s.max_tokens_per_bank(), 2);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn imdb_batch_fills_banks() {
        // 16 sequences × 128 tokens over 2048 banks: one token per bank.
        let s = Sharding::new(2048, 16, 128);
        assert_eq!(s.active_banks(), 2048);
        assert_eq!(s.max_tokens_per_bank(), 1);
    }

    #[test]
    fn short_sequence_at_batch_1_underutilizes() {
        let s = Sharding::new(2048, 1, 128);
        assert_eq!(s.active_banks(), 128);
        assert!(s.utilization() < 0.1);
    }

    #[test]
    fn figure4_example_three_tokens_three_banks() {
        let s = Sharding::new(3, 1, 3);
        assert_eq!(s.sequences[0].banks.count, 3);
        assert_eq!(s.max_tokens_per_bank(), 1);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_batch_rejected() {
        Sharding::new(8, 0, 4);
    }

    #[test]
    fn resharding_shrinks_the_pool() {
        // 4 failed banks out of 2048, duplicates and out-of-range ignored.
        let failed = [7, 7, 100, 2047, 3000, 512];
        assert_eq!(healthy_banks(2048, failed.iter().copied()), 2044);
        let s = Sharding::around_failed(2048, 1, 4096, &failed).expect("banks survive");
        assert_eq!(s.total_banks, 2044);
        assert_eq!(s.active_banks(), 2044);
        assert_eq!(s.max_tokens_per_bank(), 4096u32.div_ceil(2044));
        // Losing every bank is not shardable.
        let all: Vec<u32> = (0..8).collect();
        assert!(Sharding::around_failed(8, 1, 16, &all).is_none());
    }

    proptest! {
        #[test]
        fn resharding_covers_every_token(
            banks in 1u32..256, batch in 1u32..4, seq in 1u32..500, kill in 0u32..300
        ) {
            let failed: Vec<u32> = (0..kill.min(banks.saturating_sub(1))).collect();
            let healthy = healthy_banks(banks, failed.iter().copied());
            prop_assert!(healthy >= 1);
            let s = Sharding::around_failed(banks, batch, seq, &failed).expect("survivors");
            prop_assert_eq!(s.total_banks, healthy);
            for sh in &s.sequences {
                prop_assert!(
                    u64::from(sh.tokens_per_bank()) * u64::from(sh.banks.count)
                        >= u64::from(seq)
                );
            }
        }

        #[test]
        fn shards_are_disjoint_and_within_bounds(
            banks in 1u32..512, batch in 1u32..8, seq in 1u32..1000
        ) {
            let s = Sharding::new(banks, batch, seq);
            let mut seen = std::collections::HashSet::new();
            for sh in &s.sequences {
                prop_assert!(sh.banks.count >= 1);
                prop_assert!(sh.banks.count <= seq);
                for b in sh.banks.iter() {
                    prop_assert!(b.0 < banks, "bank {} out of {banks}", b.0);
                    // Ranges may wrap only when batch > banks; we only
                    // require disjointness when everything fits.
                    if u64::from(batch) * u64::from(sh.banks.count) <= u64::from(banks) {
                        prop_assert!(seen.insert(b.0), "bank {} double-assigned", b.0);
                    }
                }
            }
            // Every token is owned: tokens_per_bank × banks ≥ L.
            for sh in &s.sequences {
                prop_assert!(u64::from(sh.tokens_per_bank()) * u64::from(sh.banks.count) >= u64::from(seq));
            }
        }
    }
}
