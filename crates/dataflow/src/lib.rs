//! TransPIM dataflows (Section III of the paper).
//!
//! This crate lowers a Transformer workload into a [`ir::Program`] — a
//! sequence of architecture-independent steps (PIM batches, ACU reductions,
//! ring-broadcast rounds, host loads, …) that the `transpim` crate's
//! execution engine prices on a concrete architecture. Two compilers are
//! provided:
//!
//! * [`token_flow`] — the paper's contribution: input tokens are sharded
//!   across banks ([`sharding`]), every layer's computation for a shard
//!   stays in its bank, and only the inter-shard attention terms travel, by
//!   ring broadcast. The decoder scheme (Section III-C) computes new-token
//!   attention in place and combines partial sums with a parallel
//!   reduction tree.
//! * [`layer_flow`] — the layer-based baseline used by prior memory-based
//!   accelerators: every layer's operands are loaded (and duplicated) into
//!   the banks before compute, and intermediate results are written back
//!   and reloaded between layers, including the quadratically-growing
//!   attention score matrix (Figure 3(b)).
//!
//! [`functional`] executes the token dataflow *numerically*, shard by shard
//! and ring step by ring step, so the integration tests can prove the
//! dataflow computes exactly what the monolithic reference computes.
//! [`footprint`] accounts the per-bank working set and the sequence-length
//! capacity wall it implies.

pub mod footprint;
pub mod functional;
pub mod ir;
pub mod layer_flow;
pub mod layer_functional;
pub mod sharding;
pub mod token_flow;

pub use ir::{BankRange, Program, Step};
pub use sharding::Sharding;
pub use token_flow::DecoderPlacement;
