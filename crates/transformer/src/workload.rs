//! The paper's evaluation workloads (Section V-A3).
//!
//! | workload | model | task | sequence | decode |
//! |---|---|---|---|---|
//! | IMDB | RoBERTa | text classification | 128 | — |
//! | TriviaQA | RoBERTa | question answering | 512 | — |
//! | PubMed | Pegasus | summarization | 4096 | 256 |
//! | Arxiv | Pegasus | summarization | 6144 | 192 |
//! | LM | GPT-2-medium | language modeling | 1024 ctx | 128 |
//!
//! Sequence lengths follow the paper's Figure 14 axis (IMDB = 128,
//! PubMed = 4096) and the datasets' standard truncations. Token *values*
//! are synthetic (see DESIGN.md substitutions): simulated cost depends only
//! on lengths and shapes.

use crate::model::ModelConfig;
use serde::{Deserialize, Serialize};

/// One evaluation workload: a model plus sequence/decode lengths and the
/// batch size used to fill the memory-based accelerator (the paper measures
/// per-batch time because short workloads under-utilize the banks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name (dataset).
    pub name: String,
    /// Model configuration.
    pub model: ModelConfig,
    /// Encoder-side (or decoder-context) sequence length `L`.
    pub seq_len: usize,
    /// Decoder steps (0 for encoder-only tasks).
    pub decode_len: usize,
    /// Sequences per batch.
    pub batch: usize,
}

impl Workload {
    /// IMDB text classification on RoBERTa (L = 128).
    pub fn imdb() -> Self {
        Self {
            name: "IMDB".into(),
            model: ModelConfig::roberta_base(),
            seq_len: 128,
            decode_len: 0,
            batch: 16,
        }
    }

    /// TriviaQA question answering on RoBERTa (L = 512).
    pub fn triviaqa() -> Self {
        Self {
            name: "TriviaQA".into(),
            model: ModelConfig::roberta_base(),
            seq_len: 512,
            decode_len: 0,
            batch: 4,
        }
    }

    /// PubMed summarization on Pegasus (L = 4096, 256 generated tokens).
    pub fn pubmed() -> Self {
        Self {
            name: "PubMed".into(),
            model: ModelConfig::pegasus_large(),
            seq_len: 4096,
            decode_len: 256,
            batch: 1,
        }
    }

    /// Arxiv summarization on Pegasus: arXiv documents are longer than
    /// PubMed abstracts' sources (L = 6144) with shorter summaries.
    pub fn arxiv() -> Self {
        Self {
            name: "Arxiv".into(),
            model: ModelConfig::pegasus_large(),
            seq_len: 6144,
            decode_len: 192,
            batch: 1,
        }
    }

    /// Language modeling on GPT-2-medium: 1024-token context, generating
    /// 128 tokens one at a time (the SpAtten-comparable generative-stage
    /// benchmark the paper's Section V-B discusses).
    pub fn lm() -> Self {
        Self {
            name: "LM".into(),
            model: ModelConfig::gpt2_medium(),
            seq_len: 1024,
            decode_len: 128,
            batch: 1,
        }
    }

    /// The five paper workloads in Figure 10 order.
    pub fn paper_suite() -> Vec<Workload> {
        vec![Self::imdb(), Self::triviaqa(), Self::pubmed(), Self::arxiv(), Self::lm()]
    }

    /// A synthetic Pegasus summarization workload with an arbitrary
    /// sequence length (the Figure 11(b) 32 K point and the Figure 15
    /// scalability sweep).
    pub fn synthetic_pegasus(seq_len: usize) -> Self {
        Self {
            name: format!("synthetic-{seq_len}"),
            model: ModelConfig::pegasus_large(),
            seq_len,
            decode_len: 256,
            batch: 1,
        }
    }

    /// A synthetic RoBERTa encoder-only workload (Figure 14 power sweep).
    pub fn synthetic_roberta(seq_len: usize) -> Self {
        Self {
            name: format!("roberta-{seq_len}"),
            model: ModelConfig::roberta_base(),
            seq_len,
            decode_len: 0,
            batch: 1,
        }
    }

    /// Total tokens per batch (`batch × L`).
    pub fn batch_tokens(&self) -> u64 {
        (self.batch * self.seq_len) as u64
    }

    /// Total MACs of one batch: encoder stack per sequence plus the decode
    /// loop (self-attention grows with the generated prefix; cross-attention
    /// spans the encoder context).
    pub fn total_macs(&self) -> u64 {
        let m = &self.model;
        let enc = m.encoder_layers as u64 * m.encoder_layer_macs(self.seq_len as u64);
        let ctx = if m.cross_attention { self.seq_len as u64 } else { 0 };
        let mut dec = 0u64;
        for t in 0..self.decode_len as u64 {
            // Decoder-only models attend over context + generated prefix.
            let prefix = if m.cross_attention { t + 1 } else { self.seq_len as u64 + t + 1 };
            dec += m.decoder_layers as u64 * m.decoder_step_macs(prefix, ctx);
        }
        self.batch as u64 * (enc + dec)
    }

    /// Total arithmetic operations (2 ops per MAC) — the GOP numerator in
    /// the paper's throughput and GOP/J metrics.
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_expected_lengths() {
        let suite = Workload::paper_suite();
        let lens: Vec<usize> = suite.iter().map(|w| w.seq_len).collect();
        assert_eq!(lens, vec![128, 512, 4096, 6144, 1024]);
        assert_eq!(suite[2].decode_len, 256);
        assert_eq!(suite[4].model.name, "gpt2-medium");
    }

    #[test]
    fn long_sequences_dominate_mac_counts() {
        let short = Workload::imdb().total_macs() / Workload::imdb().batch as u64;
        let long = Workload::pubmed().total_macs();
        assert!(long > 50 * short);
    }

    #[test]
    fn decode_adds_work() {
        let mut w = Workload::pubmed();
        let with = w.total_macs();
        w.decode_len = 0;
        let without = w.total_macs();
        assert!(with > without);
    }

    #[test]
    fn batch_scales_macs_linearly() {
        let mut w = Workload::imdb();
        let one = {
            w.batch = 1;
            w.total_macs()
        };
        let eight = {
            w.batch = 8;
            w.total_macs()
        };
        assert_eq!(eight, 8 * one);
    }

    #[test]
    fn gops_are_plausible() {
        // PubMed on Pegasus-large at L=4096 plus 256 decode steps is a
        // multi-TOP workload (attention is quadratic in L).
        let ops = Workload::pubmed().total_ops();
        assert!(ops > 1000e9 as u64 && ops < 6000e9 as u64, "{ops}");
    }
}
