//! Model configurations and deterministic random weights.
//!
//! The paper evaluates RoBERTa (classification and question answering),
//! Pegasus (summarization, encoder-decoder), GPT-2-medium (language
//! modeling, decoder-only), and uses BERT for the design-space exploration.
//! We encode the standard published shapes; weight *values* are synthetic
//! (seeded random), which is the Section "substitutions" rule in DESIGN.md:
//! simulation cost depends only on shapes, and the functional checks only
//! need deterministic numbers.

use crate::layers::{
    AttentionWeights, CrossContext, DecoderLayerWeights, EncoderLayerWeights, KvCache,
};
use crate::matrix::Matrix;
use crate::softmax::SoftmaxKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of a Transformer model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of encoder blocks (0 for decoder-only models).
    pub encoder_layers: usize,
    /// Number of decoder blocks (0 for encoder-only models).
    pub decoder_layers: usize,
    /// Hidden width `D` (= `d_q` = `d_k` = `d_v` in the paper's notation).
    pub d_model: usize,
    /// Attention heads `h`.
    pub heads: usize,
    /// FFN inner width.
    pub d_ff: usize,
    /// Whether decoder blocks cross-attend to an encoder (false for GPT-2).
    pub cross_attention: bool,
}

impl ModelConfig {
    /// RoBERTa-base: 12 encoder layers, D = 768, 12 heads, FFN 3072.
    pub fn roberta_base() -> Self {
        Self {
            name: "roberta-base".into(),
            encoder_layers: 12,
            decoder_layers: 0,
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            cross_attention: false,
        }
    }

    /// BERT-base (same shape as RoBERTa-base) — the DSE model of Figure 13.
    pub fn bert_base() -> Self {
        Self { name: "bert-base".into(), ..Self::roberta_base() }
    }

    /// Pegasus-large: 16 + 16 layers, D = 1024, 16 heads, FFN 4096.
    pub fn pegasus_large() -> Self {
        Self {
            name: "pegasus-large".into(),
            encoder_layers: 16,
            decoder_layers: 16,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            cross_attention: true,
        }
    }

    /// GPT-2-medium: 24 decoder-only layers, D = 1024, 16 heads, FFN 4096.
    pub fn gpt2_medium() -> Self {
        Self {
            name: "gpt2-medium".into(),
            encoder_layers: 0,
            decoder_layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            cross_attention: false,
        }
    }

    /// GPT-2-small: 12 decoder-only layers, D = 768, 12 heads, FFN 3072.
    pub fn gpt2_small() -> Self {
        Self {
            name: "gpt2-small".into(),
            encoder_layers: 0,
            decoder_layers: 12,
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            cross_attention: false,
        }
    }

    /// GPT-2-large: 36 decoder-only layers, D = 1280, 20 heads, FFN 5120.
    pub fn gpt2_large() -> Self {
        Self {
            name: "gpt2-large".into(),
            encoder_layers: 0,
            decoder_layers: 36,
            d_model: 1280,
            heads: 20,
            d_ff: 5120,
            cross_attention: false,
        }
    }

    /// BERT-large: 24 encoder layers, D = 1024, 16 heads, FFN 4096.
    pub fn bert_large() -> Self {
        Self {
            name: "bert-large".into(),
            encoder_layers: 24,
            decoder_layers: 0,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            cross_attention: false,
        }
    }

    /// Pegasus-base: 12 + 12 layers, D = 768, 12 heads, FFN 3072.
    pub fn pegasus_base() -> Self {
        Self {
            name: "pegasus-base".into(),
            encoder_layers: 12,
            decoder_layers: 12,
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            cross_attention: true,
        }
    }

    /// Look up a preset by name (kebab-case, as the CLI accepts).
    ///
    /// Returns `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "roberta-base" => Some(Self::roberta_base()),
            "bert-base" => Some(Self::bert_base()),
            "bert-large" => Some(Self::bert_large()),
            "pegasus-base" => Some(Self::pegasus_base()),
            "pegasus-large" => Some(Self::pegasus_large()),
            "gpt2-small" => Some(Self::gpt2_small()),
            "gpt2-medium" => Some(Self::gpt2_medium()),
            "gpt2-large" => Some(Self::gpt2_large()),
            "tiny-test" => Some(Self::tiny_test()),
            _ => None,
        }
    }

    /// All published-model presets (excludes the test shape).
    pub fn zoo() -> Vec<Self> {
        vec![
            Self::roberta_base(),
            Self::bert_base(),
            Self::bert_large(),
            Self::pegasus_base(),
            Self::pegasus_large(),
            Self::gpt2_small(),
            Self::gpt2_medium(),
            Self::gpt2_large(),
        ]
    }

    /// A tiny encoder-decoder shape for functional tests (2+1 layers,
    /// D = 16, 2 heads, FFN 32).
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".into(),
            encoder_layers: 2,
            decoder_layers: 1,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            cross_attention: true,
        }
    }

    /// Head width `d_h = D / h`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d_model`.
    pub fn head_dim(&self) -> usize {
        assert!(self.heads > 0 && self.d_model.is_multiple_of(self.heads), "bad head split");
        self.d_model / self.heads
    }

    /// Parameters of one encoder block (4 D² attention + 2 D·D_ff FFN).
    pub fn encoder_layer_params(&self) -> u64 {
        let d = self.d_model as u64;
        4 * d * d + 2 * d * self.d_ff as u64
    }

    /// Parameters of one decoder block (adds 4 D² when cross-attending).
    pub fn decoder_layer_params(&self) -> u64 {
        let d = self.d_model as u64;
        let cross = if self.cross_attention { 4 * d * d } else { 0 };
        4 * d * d + cross + 2 * d * self.d_ff as u64
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.encoder_layers as u64 * self.encoder_layer_params()
            + self.decoder_layers as u64 * self.decoder_layer_params()
    }

    /// MAC count of one encoder block on an `L`-token sequence:
    /// FC projections (4 L D²), attention score + context (2 L² D),
    /// FFN (2 L D D_ff).
    pub fn encoder_layer_macs(&self, l: u64) -> u64 {
        let d = self.d_model as u64;
        4 * l * d * d + 2 * l * l * d + 2 * l * d * self.d_ff as u64
    }

    /// MAC count of one decoder block generating the token at position `t`
    /// with an encoder context of `l_ctx` tokens (0 for decoder-only).
    pub fn decoder_step_macs(&self, t: u64, l_ctx: u64) -> u64 {
        let d = self.d_model as u64;
        let self_attn = 4 * d * d + 2 * t * d;
        let cross = if self.cross_attention { 2 * d * d + 2 * l_ctx * d + 2 * d * d } else { 0 };
        let ffn = 2 * d * self.d_ff as u64;
        self_attn + cross + ffn
    }
}

/// All weights of a model, deterministically generated from a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWeights {
    /// Encoder blocks.
    pub encoder: Vec<EncoderLayerWeights>,
    /// Decoder blocks.
    pub decoder: Vec<DecoderLayerWeights>,
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    // Uniform(-a, a) with a = sqrt(3 / rows) keeps activations O(1).
    let a = (3.0 / rows as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

fn random_attention(rng: &mut StdRng, d: usize) -> AttentionWeights {
    AttentionWeights {
        wq: random_matrix(rng, d, d),
        wk: random_matrix(rng, d, d),
        wv: random_matrix(rng, d, d),
        wo: random_matrix(rng, d, d),
    }
}

impl ModelWeights {
    /// Generate deterministic random weights for `cfg`.
    pub fn random(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let encoder = (0..cfg.encoder_layers)
            .map(|_| EncoderLayerWeights {
                attn: random_attention(&mut rng, cfg.d_model),
                w1: random_matrix(&mut rng, cfg.d_model, cfg.d_ff),
                w2: random_matrix(&mut rng, cfg.d_ff, cfg.d_model),
            })
            .collect();
        let decoder = (0..cfg.decoder_layers)
            .map(|_| DecoderLayerWeights {
                self_attn: random_attention(&mut rng, cfg.d_model),
                cross_attn: cfg.cross_attention.then(|| random_attention(&mut rng, cfg.d_model)),
                w1: random_matrix(&mut rng, cfg.d_model, cfg.d_ff),
                w2: random_matrix(&mut rng, cfg.d_ff, cfg.d_model),
            })
            .collect();
        Self { encoder, decoder }
    }
}

/// Reference (monolithic) inference engine used as the ground truth for the
/// sharded dataflows.
#[derive(Debug, Clone)]
pub struct ReferenceModel<'a> {
    cfg: &'a ModelConfig,
    weights: &'a ModelWeights,
    kind: SoftmaxKind,
}

impl<'a> ReferenceModel<'a> {
    /// Build a reference engine.
    pub fn new(cfg: &'a ModelConfig, weights: &'a ModelWeights, kind: SoftmaxKind) -> Self {
        Self { cfg, weights, kind }
    }

    /// Run the encoder stack on an `L × D` input.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from `d_model`.
    pub fn encode(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.cfg.d_model, "input width mismatch");
        let mut x = input.clone();
        for layer in &self.weights.encoder {
            x = crate::layers::encoder_layer(&x, layer, self.cfg.heads, self.kind);
        }
        x
    }

    /// Greedily decode `steps` tokens starting from `start` (`1 × D`),
    /// cross-attending to `encoder_output` when the model has a decoder
    /// cross-attention. Each step feeds the previous output back in.
    /// Returns the per-step outputs stacked as a `steps × D` matrix.
    pub fn decode(&self, start: &Matrix, encoder_output: Option<&Matrix>, steps: usize) -> Matrix {
        assert_eq!(start.rows(), 1, "decode starts from one token");
        let mut caches: Vec<KvCache> =
            self.weights.decoder.iter().map(|_| KvCache::new()).collect();
        let contexts: Vec<Option<CrossContext>> = self
            .weights
            .decoder
            .iter()
            .map(|l| match (&l.cross_attn, encoder_output) {
                (Some(w), Some(enc)) => Some(CrossContext::from_encoder_output(enc, w)),
                _ => None,
            })
            .collect();
        let mut x = start.clone();
        let mut outs = Vec::with_capacity(steps);
        for _ in 0..steps {
            for (i, layer) in self.weights.decoder.iter().enumerate() {
                x = crate::layers::decoder_layer_step(
                    &x,
                    layer,
                    &mut caches[i],
                    contexts[i].as_ref(),
                    self.cfg.heads,
                    self.kind,
                );
            }
            outs.push(x.clone());
        }
        Matrix::vcat(&outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shapes_match_published_models() {
        let r = ModelConfig::roberta_base();
        assert_eq!((r.encoder_layers, r.d_model, r.heads, r.d_ff), (12, 768, 12, 3072));
        let p = ModelConfig::pegasus_large();
        assert_eq!((p.encoder_layers, p.decoder_layers, p.d_model), (16, 16, 1024));
        let g = ModelConfig::gpt2_medium();
        assert_eq!((g.decoder_layers, g.d_model, g.cross_attention), (24, 1024, false));
    }

    #[test]
    fn zoo_presets_are_well_formed() {
        for cfg in ModelConfig::zoo() {
            assert!(cfg.d_model % cfg.heads == 0, "{}: bad head split", cfg.name);
            assert!(cfg.encoder_layers + cfg.decoder_layers > 0, "{}: no layers", cfg.name);
            assert_eq!(
                ModelConfig::by_name(&cfg.name).as_ref().map(|c| &c.name),
                Some(&cfg.name),
                "by_name roundtrip for {}",
                cfg.name
            );
        }
        assert!(ModelConfig::by_name("nonexistent").is_none());
        // Published parameter counts (attention+FFN only): GPT-2-large
        // ~708M total incl. embeddings; our accounting lands ~85% of that.
        let large = ModelConfig::gpt2_large().total_params();
        assert!(large > 500_000_000 && large < 800_000_000, "{large}");
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // GPT-2-medium ≈ 345 M params; our attention+FFN accounting (no
        // embeddings or layer norms) should land in the low hundreds of M.
        let g = ModelConfig::gpt2_medium();
        let params = g.total_params();
        assert!(params > 250_000_000 && params < 350_000_000, "{params}");
    }

    #[test]
    fn macs_grow_quadratically_with_sequence_length() {
        let cfg = ModelConfig::roberta_base();
        let m1 = cfg.encoder_layer_macs(512) as f64;
        let m2 = cfg.encoder_layer_macs(4096) as f64;
        // The attention term dominates at 4 K, so scaling is superlinear.
        assert!(m2 / m1 > 8.0 * 1.5);
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let cfg = ModelConfig::tiny_test();
        let a = ModelWeights::random(&cfg, 42);
        let b = ModelWeights::random(&cfg, 42);
        let c = ModelWeights::random(&cfg, 43);
        assert_eq!(a, b);
        assert!(a.encoder[0].attn.wq.max_abs_diff(&c.encoder[0].attn.wq) > 0.0);
    }

    #[test]
    fn reference_encode_decode_shapes() {
        let cfg = ModelConfig::tiny_test();
        let w = ModelWeights::random(&cfg, 1);
        let m = ReferenceModel::new(&cfg, &w, SoftmaxKind::Exact);
        let input = Matrix::from_fn(5, cfg.d_model, |r, c| ((r * 7 + c) as f32 * 0.1).sin());
        let enc = m.encode(&input);
        assert_eq!(enc.shape(), (5, cfg.d_model));
        let start = Matrix::from_fn(1, cfg.d_model, |_, c| (c as f32 * 0.2).cos());
        let dec = m.decode(&start, Some(&enc), 3);
        assert_eq!(dec.shape(), (3, cfg.d_model));
        assert!(dec.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn decoder_only_model_decodes_without_context() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.cross_attention = false;
        cfg.encoder_layers = 0;
        let w = ModelWeights::random(&cfg, 2);
        let m = ReferenceModel::new(&cfg, &w, SoftmaxKind::Exact);
        let start = Matrix::from_fn(1, cfg.d_model, |_, c| (c as f32 * 0.2).sin());
        let out = m.decode(&start, None, 4);
        assert_eq!(out.shape(), (4, cfg.d_model));
    }
}
