//! A small dense row-major f32 matrix kernel.
//!
//! Deliberately minimal: just the operations Transformer inference needs
//! (matmul, matmul against a transpose, row slicing/concatenation,
//! point-wise maps), implemented so the sharded dataflow and the monolithic
//! reference share identical inner-loop summation order along the
//! contraction dimension.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Rows per parallel job in the blocked kernels. One job covers
/// `ROW_BLOCK` output rows, so submitting `rows / ROW_BLOCK` jobs to the
/// pool load-balances without slicing rows across workers.
const ROW_BLOCK: usize = 64;

/// Contraction-dimension block: the rows of `other` touched by one block
/// fit in L1/L2 and are reused across every row of the job's row block.
const K_BLOCK: usize = 256;

/// Multiply-add count below which the kernels stay single-threaded.
const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// Row-major dense matrix of `f32`.
///
/// # Example
///
/// ```
/// use transpim_transformer::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Self { rows: rows.len(), cols, data: rows.concat() }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of rows `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows, "bad row range {lo}..{hi}");
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Copy of columns `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.cols, "bad col range {lo}..{hi}");
        Matrix::from_fn(self.rows, hi - lo, |r, c| self[(r, lo + c)])
    }

    /// Vertical concatenation.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vcat(parts: &[Matrix]) -> Matrix {
        let cols = parts.first().map_or(0, Matrix::cols);
        assert!(parts.iter().all(|p| p.cols == cols), "column mismatch in vcat");
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Append `other`'s rows in place.
    ///
    /// Amortized O(rows of `other`): the backing vector grows
    /// geometrically, so repeated appends (a decoder's per-token K/V
    /// cache growth) cost O(total rows) overall instead of the O(total²)
    /// of rebuilding through [`Matrix::vcat`]. The result is bitwise
    /// identical to `Matrix::vcat(&[self, other])`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ (a 0×0 `self` adopts `other`'s
    /// column count).
    pub fn push_rows(&mut self, other: &Matrix) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = other.cols;
        }
        assert_eq!(self.cols, other.cols, "column mismatch in push_rows");
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
    }

    /// Pre-reserve capacity for `additional` more rows (a decoder that
    /// knows its decode length can make every subsequent
    /// [`Matrix::push_rows`] allocation-free).
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Horizontal concatenation.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(parts: &[Matrix]) -> Matrix {
        let rows = parts.first().map_or(0, Matrix::rows);
        assert!(parts.iter().all(|p| p.rows == rows), "row mismatch in hcat");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut at = 0;
            for p in parts {
                out.row_mut(r)[at..at + p.cols].copy_from_slice(p.row(r));
                at += p.cols;
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// `self × other`.
    ///
    /// Cache-blocked over the contraction dimension and parallelized over
    /// row blocks (via `transpim-par`) above [`PAR_FLOP_THRESHOLD`].
    /// Every output element accumulates its products in ascending `k`
    /// order regardless of blocking or thread count, so results are
    /// bitwise identical to the naive triple loop and to a serial run.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        if self.rows == 0 || cols == 0 || self.cols == 0 {
            return out;
        }
        let threads = self.kernel_threads(self.rows * self.cols * cols);
        transpim_par::for_each_chunk_mut(
            threads,
            &mut out.data,
            ROW_BLOCK * cols,
            |start, chunk| {
                self.matmul_rows_into(other, start / cols, chunk);
            },
        );
        out
    }

    /// Compute output rows `row0..row0 + chunk.len()/other.cols` of
    /// `self × other` into `chunk`. `k` is blocked so the touched rows of
    /// `other` stay cache-resident across the row block; blocks advance in
    /// ascending `k`, preserving the exact per-element summation order.
    fn matmul_rows_into(&self, other: &Matrix, row0: usize, chunk: &mut [f32]) {
        let cols = other.cols;
        let rows = chunk.len() / cols;
        for kb in (0..self.cols).step_by(K_BLOCK) {
            let kb_end = (kb + K_BLOCK).min(self.cols);
            for r in 0..rows {
                let a_row = self.row(row0 + r);
                let out_row = &mut chunk[r * cols..(r + 1) * cols];
                for (k, &a) in a_row.iter().enumerate().take(kb_end).skip(kb) {
                    let b_row = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
    }

    /// `self × otherᵀ` — attention scores `Q Kᵀ` without materializing the
    /// transpose. The contraction runs along the shared column dimension in
    /// index order, identical to the sharded execution; each dot product
    /// lives entirely in one job, so threading never reorders a sum.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transb shape mismatch {:?} × {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        let cols = other.rows;
        if self.rows == 0 || cols == 0 {
            return out;
        }
        let threads = self.kernel_threads(self.rows * self.cols * cols);
        transpim_par::for_each_chunk_mut(
            threads,
            &mut out.data,
            ROW_BLOCK * cols,
            |start, chunk| {
                let row0 = start / cols;
                let rows = chunk.len() / cols;
                // `j` outer keeps `other.row(j)` hot across the whole row block.
                for j in 0..cols {
                    let b_row = other.row(j);
                    for r in 0..rows {
                        let a_row = self.row(row0 + r);
                        chunk[r * cols + j] = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                    }
                }
            },
        );
        out
    }

    /// Worker count for a kernel of `flops` multiply-adds: single-threaded
    /// below [`PAR_FLOP_THRESHOLD`] (spawn overhead dominates the small
    /// matrices unit tests use), the pool default above it.
    fn kernel_threads(&self, flops: usize) -> usize {
        if flops >= PAR_FLOP_THRESHOLD {
            transpim_par::max_threads()
        } else {
            1
        }
    }

    /// Point-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Point-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Largest absolute element-wise difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// True when every element differs from `other` by at most
    /// `abs_tol + rel_tol·|other|`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn approx_eq(&self, other: &Matrix, abs_tol: f32, rel_tol: f32) -> bool {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .all(|(&a, &b)| (a - b).abs() <= abs_tol + rel_tol * b.abs())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range {:?}", self.shape());
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range {:?}", self.shape());
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|x| format!("{x:8.4}")).collect();
            writeln!(f, "  [{}{}]", shown.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r as f32) - (c as f32) * 0.1);
        let direct = a.matmul_transb(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&via_t) < 1e-5);
    }

    #[test]
    fn slicing_and_concat_roundtrip() {
        let m = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f32);
        let top = m.slice_rows(0, 3);
        let bottom = m.slice_rows(3, 6);
        assert_eq!(Matrix::vcat(&[top, bottom]), m);
        let left = m.slice_cols(0, 2);
        let right = m.slice_cols(2, 4);
        assert_eq!(Matrix::hcat(&[left, right]), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 7, |r, c| (r + 2 * c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_is_neutral() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * c) as f32 + 1.0);
        assert_eq!(m.matmul(&Matrix::identity(4)), m);
        assert_eq!(Matrix::identity(4).matmul(&m), m);
    }

    #[test]
    fn approx_eq_tolerances() {
        let a = Matrix::from_rows(&[vec![1.0, 100.0]]);
        let b = Matrix::from_rows(&[vec![1.0005, 100.05]]);
        assert!(a.approx_eq(&b, 1e-3, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5, 1e-6));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    /// Naive i→k→j reference: the exact pre-blocking implementation.
    fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            let a_row = a.row(i);
            let out_row = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for (k, &av) in a_row.iter().enumerate() {
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    #[test]
    fn blocked_parallel_matmul_is_bitwise_identical() {
        // 160×300 × 300×170 ≈ 8.2M MACs — crosses PAR_FLOP_THRESHOLD, so
        // this exercises the blocked kernel on multiple pool workers and
        // multiple k-blocks (300 > K_BLOCK). Equality is exact (`==` on
        // f32 data), not approximate: blocking and threading must not
        // perturb a single summation order.
        let a = Matrix::from_fn(160, 300, |r, c| ((r * 31 + c * 17) % 23) as f32 * 0.37 - 4.0);
        let b = Matrix::from_fn(300, 170, |r, c| ((r * 13 + c * 29) % 19) as f32 * 0.21 - 2.0);
        assert_eq!(a.matmul(&b), matmul_naive(&a, &b));

        let bt = Matrix::from_fn(170, 300, |r, c| ((r * 7 + c * 11) % 17) as f32 * 0.43 - 3.0);
        let reference = Matrix::from_fn(a.rows, bt.rows, |i, j| {
            a.row(i).iter().zip(bt.row(j)).map(|(&x, &y)| x * y).sum()
        });
        assert_eq!(a.matmul_transb(&bt), reference);
    }

    #[test]
    fn blocked_matmul_handles_degenerate_shapes() {
        let empty = Matrix::zeros(0, 5).matmul(&Matrix::zeros(5, 3));
        assert_eq!(empty.shape(), (0, 3));
        let inner_empty = Matrix::zeros(2, 0).matmul(&Matrix::zeros(0, 3));
        assert_eq!(inner_empty, Matrix::zeros(2, 3));
        let skinny = Matrix::zeros(3, 4).matmul_transb(&Matrix::zeros(0, 4));
        assert_eq!(skinny.shape(), (3, 0));
    }

    #[test]
    fn push_rows_matches_vcat_bitwise() {
        // The in-place grow path must be indistinguishable from rebuild-
        // by-vcat, including starting from the 0-row shard shapes the
        // KV caches use.
        let chunks: Vec<Matrix> = (0..5)
            .map(|i| Matrix::from_fn(i % 3 + 1, 4, |r, c| (i * 100 + r * 10 + c) as f32 * 0.25))
            .collect();
        let mut grown = Matrix::zeros(0, 4);
        grown.reserve_rows(16);
        for ch in &chunks {
            grown.push_rows(ch);
        }
        assert_eq!(grown, Matrix::vcat(&chunks));
        assert_eq!(grown.as_slice(), Matrix::vcat(&chunks).as_slice());

        let mut adopt = Matrix::zeros(0, 0);
        adopt.push_rows(&chunks[0]);
        assert_eq!(adopt, chunks[0]);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn push_rows_rejects_width_mismatch() {
        let mut m = Matrix::zeros(0, 3);
        m.push_rows(&Matrix::zeros(2, 4));
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", Matrix::zeros(2, 2));
        assert!(s.contains("Matrix 2×2"));
    }

    proptest! {
        #[test]
        fn matmul_associates_with_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u32..1000) {
            let m = Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 - 6.0);
            prop_assert_eq!(m.matmul(&Matrix::identity(cols)), m);
        }

        #[test]
        fn vcat_slice_roundtrip(rows in 2usize..8, cols in 1usize..6, split in 1usize..7) {
            let split = split.min(rows - 1);
            let m = Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
            let parts = [m.slice_rows(0, split), m.slice_rows(split, rows)];
            prop_assert_eq!(Matrix::vcat(&parts), m);
        }
    }
}
