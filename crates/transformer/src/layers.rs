//! Transformer layers: fully-connected projections, multi-head scaled
//! dot-product attention, feed-forward networks, and the encoder/decoder
//! blocks of Figure 1 — including the incremental (KV-cached) decoder that
//! generates one token per step, which is what the TransPIM decoder
//! dataflow (Section III-C) accelerates.

use crate::matrix::Matrix;
use crate::softmax::{softmax, SoftmaxKind};
use serde::{Deserialize, Serialize};

/// `x · w` — the FC projections of the paper's "FC layer".
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn linear(x: &Matrix, w: &Matrix) -> Matrix {
    x.matmul(w)
}

/// Point-wise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Point-wise GELU (tanh approximation), the activation real RoBERTa /
/// Pegasus / GPT-2 use. The paper's cost model treats it like any other
/// point-wise op; the functional library provides it for completeness.
pub fn gelu(x: &Matrix) -> Matrix {
    x.map(|v| {
        let c = (2.0f32 / std::f32::consts::PI).sqrt();
        0.5 * v * (1.0 + (c * (v + 0.044715 * v * v * v)).tanh())
    })
}

/// Row-wise layer normalization with learned-parameter-free unit
/// scale/shift: `(x − mean) / sqrt(var + eps)`.
///
/// # Panics
///
/// Panics if the matrix has zero columns.
pub fn layer_norm(x: &Matrix, eps: f32) -> Matrix {
    assert!(x.cols() > 0, "layer norm over zero columns");
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + eps).sqrt();
        for (o, &v) in out.row_mut(r).iter_mut().zip(row) {
            *o = (v - mean) * inv;
        }
    }
    out
}

/// Multi-head scaled dot-product attention.
///
/// `q` is `(Lq × D)`, `k`/`v` are `(Lk × D)`; `D` splits into `heads`
/// equal slices. Per head: `softmax(Q Kᵀ / √d_h) V`, heads concatenated.
///
/// # Panics
///
/// Panics if `D` is not divisible by `heads` or shapes disagree.
pub fn multi_head_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    heads: usize,
    kind: SoftmaxKind,
) -> Matrix {
    let d = q.cols();
    assert!(heads >= 1 && d.is_multiple_of(heads), "D={d} not divisible by {heads} heads");
    assert_eq!(k.cols(), d, "K width mismatch");
    assert_eq!(v.cols(), d, "V width mismatch");
    assert_eq!(k.rows(), v.rows(), "K/V length mismatch");
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut outs = Vec::with_capacity(heads);
    for h in 0..heads {
        let (lo, hi) = (h * dh, (h + 1) * dh);
        let qh = q.slice_cols(lo, hi);
        let kh = k.slice_cols(lo, hi);
        let vh = v.slice_cols(lo, hi);
        let scores = qh.matmul_transb(&kh).scale(scale);
        let probs = softmax(&scores, kind);
        outs.push(probs.matmul(&vh));
    }
    Matrix::hcat(&outs)
}

/// Multi-head attention with a causal mask: query row `i` may only attend
/// to key positions `0..=offset + i` (the decoder's autoregressive
/// constraint when processing several tokens at once; `offset` is the
/// number of already-cached positions).
///
/// # Panics
///
/// Panics on the same shape conditions as [`multi_head_attention`].
pub fn multi_head_attention_causal(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    heads: usize,
    kind: SoftmaxKind,
    offset: usize,
) -> Matrix {
    let d = q.cols();
    assert!(heads >= 1 && d.is_multiple_of(heads), "D={d} not divisible by {heads} heads");
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut outs = Vec::with_capacity(heads);
    for h in 0..heads {
        let (lo, hi) = (h * dh, (h + 1) * dh);
        let qh = q.slice_cols(lo, hi);
        let kh = k.slice_cols(lo, hi);
        let vh = v.slice_cols(lo, hi);
        let mut scores = qh.matmul_transb(&kh).scale(scale);
        for i in 0..scores.rows() {
            for j in (offset + i + 1)..scores.cols() {
                scores[(i, j)] = -1e9; // masked out
            }
        }
        let probs = softmax(&scores, kind);
        outs.push(probs.matmul(&vh));
    }
    Matrix::hcat(&outs)
}

/// Two-layer feed-forward network with ReLU: `relu(x·w1)·w2`.
pub fn ffn(x: &Matrix, w1: &Matrix, w2: &Matrix) -> Matrix {
    relu(&x.matmul(w1)).matmul(w2)
}

/// Weights of one attention sub-block (Q/K/V projections plus the output
/// projection).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionWeights {
    /// Query projection, `D × D`.
    pub wq: Matrix,
    /// Key projection, `D × D`.
    pub wk: Matrix,
    /// Value projection, `D × D`.
    pub wv: Matrix,
    /// Output projection, `D × D`.
    pub wo: Matrix,
}

impl AttentionWeights {
    /// Bytes of these weights at `bits_per_weight` precision.
    pub fn bytes(&self, bits_per_weight: u32) -> u64 {
        let params = 4 * self.wq.rows() as u64 * self.wq.cols() as u64;
        params * u64::from(bits_per_weight) / 8
    }
}

/// Weights of one encoder block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderLayerWeights {
    /// Self-attention weights.
    pub attn: AttentionWeights,
    /// First FFN matrix, `D × D_ff`.
    pub w1: Matrix,
    /// Second FFN matrix, `D_ff × D`.
    pub w2: Matrix,
}

/// Weights of one decoder block: masked self-attention, optional
/// cross-attention over the encoder output (absent in decoder-only models
/// like GPT-2), and the FFN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderLayerWeights {
    /// Masked self-attention weights.
    pub self_attn: AttentionWeights,
    /// Cross-attention weights (encoder-decoder models only).
    pub cross_attn: Option<AttentionWeights>,
    /// First FFN matrix.
    pub w1: Matrix,
    /// Second FFN matrix.
    pub w2: Matrix,
}

/// One encoder block: FC (Q/K/V) → self-attention → output projection →
/// FFN, with residual connections around the attention and FFN sub-layers.
pub fn encoder_layer(
    x: &Matrix,
    w: &EncoderLayerWeights,
    heads: usize,
    kind: SoftmaxKind,
) -> Matrix {
    let q = linear(x, &w.attn.wq);
    let k = linear(x, &w.attn.wk);
    let v = linear(x, &w.attn.wv);
    let attn = multi_head_attention(&q, &k, &v, heads, kind);
    let attn_out = linear(&attn, &w.attn.wo).add(x);
    ffn(&attn_out, &w.w1, &w.w2).add(&attn_out)
}

/// Growing key/value cache of a decoder self-attention sub-layer.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KvCache {
    k: Option<Matrix>,
    v: Option<Matrix>,
}

impl KvCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached sequence length.
    pub fn len(&self) -> usize {
        self.k.as_ref().map_or(0, Matrix::rows)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one (or more) new K/V rows.
    ///
    /// Amortized O(rows appended): rows land in the existing backing
    /// storage via [`Matrix::push_rows`], so a full decode of `T` tokens
    /// costs O(T) row-copies rather than the O(T²) of rebuilding the
    /// cache per token.
    ///
    /// # Panics
    ///
    /// Panics if the widths of `k_new`/`v_new` disagree with the cache.
    pub fn append(&mut self, k_new: Matrix, v_new: Matrix) {
        match &mut self.k {
            Some(k) => k.push_rows(&k_new),
            None => self.k = Some(k_new),
        }
        match &mut self.v {
            Some(v) => v.push_rows(&v_new),
            None => self.v = Some(v_new),
        }
    }

    /// Pre-reserve room for `tokens` more cached positions, making
    /// subsequent appends allocation-free up to that horizon.
    pub fn reserve(&mut self, tokens: usize) {
        if let Some(k) = &mut self.k {
            k.reserve_rows(tokens);
        }
        if let Some(v) = &mut self.v {
            v.reserve_rows(tokens);
        }
    }

    /// The cached keys.
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    pub fn k(&self) -> &Matrix {
        self.k.as_ref().expect("empty KV cache")
    }

    /// The cached values.
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    pub fn v(&self) -> &Matrix {
        self.v.as_ref().expect("empty KV cache")
    }
}

/// Pre-computed encoder-side K/V for a decoder's cross-attention ("context"
/// vectors in the paper's terms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossContext {
    /// Encoder keys, `L_enc × D`.
    pub k: Matrix,
    /// Encoder values, `L_enc × D`.
    pub v: Matrix,
}

impl CrossContext {
    /// Project the encoder output through a decoder layer's cross-attention
    /// K/V weights.
    pub fn from_encoder_output(enc: &Matrix, w: &AttentionWeights) -> Self {
        Self { k: linear(enc, &w.wk), v: linear(enc, &w.wv) }
    }
}

/// One decoder step for one layer: consumes the new token's hidden state
/// (`1 × D`), updates the self-attention KV cache, applies cross-attention
/// against `cross` when present, and runs the FFN. Returns the layer
/// output (`1 × D`).
pub fn decoder_layer_step(
    x: &Matrix,
    w: &DecoderLayerWeights,
    cache: &mut KvCache,
    cross: Option<&CrossContext>,
    heads: usize,
    kind: SoftmaxKind,
) -> Matrix {
    assert_eq!(x.rows(), 1, "decoder steps take one token at a time");
    // Self-attention over the cached prefix plus the new token.
    let q = linear(x, &w.self_attn.wq);
    let k_new = linear(x, &w.self_attn.wk);
    let v_new = linear(x, &w.self_attn.wv);
    cache.append(k_new, v_new);
    let attn = multi_head_attention(&q, cache.k(), cache.v(), heads, kind);
    let mut out = linear(&attn, &w.self_attn.wo).add(x);

    // Cross-attention over the encoder context.
    if let (Some(cw), Some(ctx)) = (&w.cross_attn, cross) {
        let q = linear(&out, &cw.wq);
        let attn = multi_head_attention(&q, &ctx.k, &ctx.v, heads, kind);
        out = linear(&attn, &cw.wo).add(&out);
    }

    ffn(&out, &w.w1, &w.w2).add(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, ModelWeights};

    fn tiny() -> (ModelConfig, ModelWeights) {
        let cfg = ModelConfig::tiny_test();
        let w = ModelWeights::random(&cfg, 7);
        (cfg, w)
    }

    #[test]
    fn attention_output_shape() {
        let q = Matrix::from_fn(5, 8, |r, c| ((r + c) as f32 * 0.2).sin());
        let k = Matrix::from_fn(5, 8, |r, c| ((r * c) as f32 * 0.1).cos());
        let v = Matrix::from_fn(5, 8, |r, c| (r as f32 - c as f32) * 0.05);
        let o = multi_head_attention(&q, &k, &v, 2, SoftmaxKind::Exact);
        assert_eq!(o.shape(), (5, 8));
    }

    #[test]
    fn attention_with_uniform_scores_averages_values() {
        // Identical keys → uniform attention → output is the mean of V rows.
        let q = Matrix::from_fn(1, 4, |_, c| c as f32 * 0.3);
        let k = Matrix::from_fn(3, 4, |_, c| c as f32 * 0.1);
        let v = Matrix::from_fn(3, 4, |r, _| r as f32);
        let o = multi_head_attention(&q, &k, &v, 1, SoftmaxKind::Exact);
        for c in 0..4 {
            assert!((o[(0, c)] - 1.0).abs() < 1e-5, "mean of 0,1,2 is 1");
        }
    }

    #[test]
    fn single_head_equals_multi_head_on_blockwise_identical_weights() {
        // With h heads over D, attention differs from 1 head in general;
        // but with Lk = 1 the softmax is trivially 1 and both reduce to V.
        let q = Matrix::from_fn(2, 8, |r, c| (r + c) as f32 * 0.1);
        let k = Matrix::from_fn(1, 8, |_, c| c as f32 * 0.2);
        let v = Matrix::from_fn(1, 8, |_, c| c as f32);
        for heads in [1usize, 2, 4] {
            let o = multi_head_attention(&q, &k, &v, heads, SoftmaxKind::Exact);
            for r in 0..2 {
                for c in 0..8 {
                    assert!((o[(r, c)] - v[(0, c)]).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn encoder_layer_shapes_and_determinism() {
        let (cfg, w) = tiny();
        let x = Matrix::from_fn(6, cfg.d_model, |r, c| ((r * 13 + c) as f32 * 0.07).sin());
        let y1 = encoder_layer(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact);
        let y2 = encoder_layer(&x, &w.encoder[0], cfg.heads, SoftmaxKind::Exact);
        assert_eq!(y1.shape(), (6, cfg.d_model));
        assert_eq!(y1, y2);
    }

    #[test]
    fn decoder_steps_grow_cache_and_match_batch_attention() {
        let (cfg, w) = tiny();
        let dec = &w.decoder[0];
        let mut cache = KvCache::new();
        let mut outs = Vec::new();
        for t in 0..4 {
            let x = Matrix::from_fn(1, cfg.d_model, |_, c| ((t * 31 + c) as f32 * 0.05).sin());
            outs.push(decoder_layer_step(&x, dec, &mut cache, None, cfg.heads, SoftmaxKind::Exact));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(outs[3].shape(), (1, cfg.d_model));
    }

    #[test]
    fn cross_attention_changes_output() {
        let (cfg, w) = tiny();
        let dec = &w.decoder[0];
        assert!(dec.cross_attn.is_some(), "tiny test model is encoder-decoder");
        let enc_out = Matrix::from_fn(5, cfg.d_model, |r, c| ((r + c) as f32 * 0.11).cos());
        let ctx = CrossContext::from_encoder_output(&enc_out, dec.cross_attn.as_ref().unwrap());
        let x = Matrix::from_fn(1, cfg.d_model, |_, c| (c as f32 * 0.09).sin());
        let mut c1 = KvCache::new();
        let mut c2 = KvCache::new();
        let with = decoder_layer_step(&x, dec, &mut c1, Some(&ctx), cfg.heads, SoftmaxKind::Exact);
        let without = decoder_layer_step(&x, dec, &mut c2, None, cfg.heads, SoftmaxKind::Exact);
        assert!(with.max_abs_diff(&without) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "one token at a time")]
    fn decoder_step_rejects_multi_token_input() {
        let (cfg, w) = tiny();
        let x = Matrix::zeros(2, cfg.d_model);
        let mut cache = KvCache::new();
        decoder_layer_step(&x, &w.decoder[0], &mut cache, None, cfg.heads, SoftmaxKind::Exact);
    }

    #[test]
    fn gelu_matches_known_values() {
        let x = Matrix::from_rows(&[vec![-3.0, -1.0, 0.0, 1.0, 3.0]]);
        let g = gelu(&x);
        // GELU(0)=0, GELU(1)≈0.8412, GELU(-1)≈-0.1588, saturates to x for
        // large positive and to 0 for large negative inputs.
        assert!((g[(0, 2)] - 0.0).abs() < 1e-6);
        assert!((g[(0, 3)] - 0.8412).abs() < 5e-3);
        assert!((g[(0, 1)] + 0.1588).abs() < 5e-3);
        assert!((g[(0, 4)] - 2.996).abs() < 5e-3);
        assert!(g[(0, 0)].abs() < 5e-3);
    }

    #[test]
    fn layer_norm_zero_mean_unit_variance() {
        let x = Matrix::from_fn(3, 16, |r, c| (r * 16 + c) as f32 * 0.37 - 2.0);
        let n = layer_norm(&x, 1e-5);
        for r in 0..3 {
            let row = n.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_constant_row_does_not_blow_up() {
        let x = Matrix::from_fn(1, 8, |_, _| 3.5);
        let n = layer_norm(&x, 1e-5);
        assert!(n.as_slice().iter().all(|v| v.is_finite() && v.abs() < 1.0));
    }

    #[test]
    fn causal_mask_blocks_the_future() {
        // With a causal mask and offset 0, the first query row can only see
        // key 0, so its output equals value row 0 exactly.
        let q = Matrix::from_fn(3, 8, |r, c| ((r * 8 + c) as f32 * 0.11).sin());
        let k = Matrix::from_fn(3, 8, |r, c| ((r + c) as f32 * 0.21).cos());
        let v = Matrix::from_fn(3, 8, |r, c| (r * 10 + c) as f32 * 0.01);
        let o = multi_head_attention_causal(&q, &k, &v, 2, SoftmaxKind::Exact, 0);
        for c in 0..8 {
            assert!((o[(0, c)] - v[(0, c)]).abs() < 1e-4, "col {c}");
        }
        // With a huge offset the mask is inert and matches plain attention.
        let unmasked = multi_head_attention(&q, &k, &v, 2, SoftmaxKind::Exact);
        let inert = multi_head_attention_causal(&q, &k, &v, 2, SoftmaxKind::Exact, 100);
        assert!(unmasked.max_abs_diff(&inert) < 1e-6);
    }

    #[test]
    fn causal_batch_equals_stepwise_decoding() {
        // Running T tokens through causal attention at once must equal
        // feeding them one by one through the KV-cached decoder step (the
        // standard prefill ≡ decode identity).
        let (cfg, w) = tiny();
        let dec = &w.decoder[0];
        let t_len = 5;
        let xs = Matrix::from_fn(t_len, cfg.d_model, |r, c| ((r * 7 + c) as f32 * 0.13).sin());

        // Batch: causal self-attention over all tokens at once.
        let q = linear(&xs, &dec.self_attn.wq);
        let k = linear(&xs, &dec.self_attn.wk);
        let v = linear(&xs, &dec.self_attn.wv);
        let batch = multi_head_attention_causal(&q, &k, &v, cfg.heads, SoftmaxKind::Exact, 0);

        // Step-wise: the KV cache grows one token at a time.
        let mut cache = KvCache::new();
        let mut rows = Vec::new();
        for t in 0..t_len {
            let x = xs.slice_rows(t, t + 1);
            let qt = linear(&x, &dec.self_attn.wq);
            cache.append(linear(&x, &dec.self_attn.wk), linear(&x, &dec.self_attn.wv));
            rows.push(multi_head_attention(
                &qt,
                cache.k(),
                cache.v(),
                cfg.heads,
                SoftmaxKind::Exact,
            ));
        }
        let stepwise = Matrix::vcat(&rows);
        assert!(batch.max_abs_diff(&stepwise) < 1e-4);
    }

    #[test]
    fn kv_cache_append_matches_vcat_rebuild() {
        // The amortized in-place append must leave the cache bitwise
        // identical to rebuilding it by concatenation each token.
        let chunks: Vec<(Matrix, Matrix)> = (0..6)
            .map(|t| {
                let gen = |r: usize, c: usize| ((t * 13 + r * 5 + c) as f32 * 0.31).cos();
                (Matrix::from_fn(1, 4, gen), Matrix::from_fn(1, 4, |r, c| gen(r, c) + 1.0))
            })
            .collect();
        let mut cache = KvCache::new();
        cache.reserve(6);
        for (k, v) in &chunks {
            cache.append(k.clone(), v.clone());
        }
        let ks: Vec<Matrix> = chunks.iter().map(|(k, _)| k.clone()).collect();
        let vs: Vec<Matrix> = chunks.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(cache.k().as_slice(), Matrix::vcat(&ks).as_slice());
        assert_eq!(cache.v().as_slice(), Matrix::vcat(&vs).as_slice());
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn ffn_relu_zeroes_negatives() {
        let x = Matrix::from_rows(&[vec![-1.0, 1.0]]);
        let w1 = Matrix::identity(2);
        let w2 = Matrix::identity(2);
        assert_eq!(ffn(&x, &w1, &w2), Matrix::from_rows(&[vec![0.0, 1.0]]));
    }
}
