//! Symmetric fixed-point quantization.
//!
//! The paper runs FC and FFN layers at 8-bit precision (citing GOBO's
//! finding that this suffices for Transformers) and Softmax at 16 bits to
//! cover the exponential's range. This module provides symmetric per-tensor
//! quantization with i32 accumulation, which is what the bit-serial PIM
//! layout stores (sign handled as two's complement in the bit-planes).

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A quantized matrix: int8 values plus a per-tensor scale such that
/// `real ≈ value × scale`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    /// Dequantization scale.
    pub scale: f32,
}

impl QuantMatrix {
    /// Quantize `m` symmetrically to int8 (scale = max|x| / 127).
    pub fn quantize(m: &Matrix) -> Self {
        let max = m.max_abs();
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let data =
            m.as_slice().iter().map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
        Self { rows: m.rows(), cols: m.cols(), data, scale }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw quantized value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Dequantize back to f32.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f32::from(v) * self.scale).collect(),
        )
    }

    /// Integer matmul with i32 accumulation, dequantized with the product
    /// of the two scales — the arithmetic the int8 PIM path performs.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_dequant(&self, other: &QuantMatrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "quantized matmul shape mismatch");
        let s = self.scale * other.scale;
        Matrix::from_fn(self.rows, other.cols, |i, j| {
            let mut acc: i32 = 0;
            for k in 0..self.cols {
                acc += i32::from(self.data[i * self.cols + k])
                    * i32::from(other.data[k * other.cols + j]);
            }
            acc as f32 * s
        })
    }
}

/// Quantize → dequantize, the error the int8 path introduces.
pub fn fake_quant(m: &Matrix) -> Matrix {
    QuantMatrix::quantize(m).dequantize()
}

/// Quantize a value to a signed 16-bit fixed-point grid with `frac_bits`
/// fractional bits, saturating — the Softmax datapath's number format.
pub fn to_q16(x: f32, frac_bits: u32) -> i16 {
    let scaled = (x * (1u32 << frac_bits) as f32).round();
    scaled.clamp(f32::from(i16::MIN), f32::from(i16::MAX)) as i16
}

/// Inverse of [`to_q16`].
pub fn from_q16(v: i16, frac_bits: u32) -> f32 {
    f32::from(v) / (1u32 << frac_bits) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let m = Matrix::from_fn(4, 4, |r, c| (r as f32 - 1.5) * (c as f32 + 0.25));
        let q = QuantMatrix::quantize(&m);
        let back = q.dequantize();
        assert!(m.max_abs_diff(&back) <= q.scale * 0.5 + 1e-6);
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let q = QuantMatrix::quantize(&Matrix::zeros(3, 3));
        assert_eq!(q.dequantize(), Matrix::zeros(3, 3));
        assert_eq!(q.scale, 1.0);
    }

    #[test]
    fn quantized_matmul_tracks_float_matmul() {
        let a = Matrix::from_fn(6, 8, |r, c| ((r * 8 + c) as f32 * 0.13).sin());
        let b = Matrix::from_fn(8, 5, |r, c| ((r * 5 + c) as f32 * 0.29).cos());
        let exact = a.matmul(&b);
        let approx = QuantMatrix::quantize(&a).matmul_dequant(&QuantMatrix::quantize(&b));
        // int8 matmul over K=8 keeps a couple of percent accuracy.
        assert!(exact.max_abs_diff(&approx) < 0.05 * exact.max_abs().max(1.0));
    }

    #[test]
    fn q16_roundtrip() {
        for x in [-3.5f32, 0.0, 0.001, 7.999] {
            let v = to_q16(x, 12);
            assert!((from_q16(v, 12) - x).abs() <= 0.5 / 4096.0 + 1e-6);
        }
    }

    #[test]
    fn q16_saturates() {
        assert_eq!(to_q16(1e9, 12), i16::MAX);
        assert_eq!(to_q16(-1e9, 12), i16::MIN);
    }

    proptest! {
        #[test]
        fn quant_values_in_range(vals in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = vals.len();
            let m = Matrix::from_vec(1, n, vals);
            let q = QuantMatrix::quantize(&m);
            for c in 0..n {
                prop_assert!(q.get(0, c) >= -127); // i8 ⇒ upper bound is the type
            }
        }

        #[test]
        fn fake_quant_idempotent(vals in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let m = Matrix::from_vec(1, vals.len(), vals);
            let once = fake_quant(&m);
            let twice = fake_quant(&once);
            prop_assert!(once.max_abs_diff(&twice) <= once.max_abs() * 0.005 + 1e-6);
        }
    }
}
