//! Functional Transformer substrate for the TransPIM reproduction.
//!
//! The paper evaluates full Transformer inference (Figure 1): stacked
//! encoder blocks (FC → self-attention → FFN) and decoder blocks that
//! generate one token at a time, over RoBERTa, Pegasus, GPT-2 and BERT
//! model shapes. This crate is the *numerics* side of the reproduction:
//!
//! * [`matrix`] — a small dense f32 matrix kernel (matmul, transpose-matmul,
//!   row ops) sufficient for attention arithmetic,
//! * [`quant`] — symmetric int8 quantization with i32 accumulation (the
//!   paper runs FC/FFN at 8 bits) and int16 helpers for Softmax,
//! * [`softmax`] — exact softmax plus the paper's hardware-shaped variant:
//!   5th-order Taylor exponent and a one-reciprocal-per-row normalization
//!   (Section IV-A2),
//! * [`layers`] — fully-connected, multi-head attention, and feed-forward
//!   layers assembled into encoder/decoder blocks with an incremental
//!   KV-cache decoder,
//! * [`model`] — model configurations and deterministic random weights
//!   (RoBERTa-base, BERT-base, Pegasus-large, GPT-2-medium),
//! * [`workload`] — the evaluation workloads (IMDB, TriviaQA, PubMed,
//!   Arxiv, LM, synthetic sweeps) with their sequence/decode lengths.
//!
//! The dataflow crates re-execute these same numerics shard-by-shard; the
//! integration tests assert the sharded execution matches this reference.

pub mod layers;
pub mod matrix;
pub mod model;
pub mod quant;
pub mod softmax;
pub mod workload;

pub use matrix::Matrix;
pub use model::{ModelConfig, ModelWeights};
pub use softmax::SoftmaxKind;
pub use workload::Workload;
