//! Softmax: the exact reference and the paper's hardware-shaped variant.
//!
//! Section IV-A2 rewrites Softmax as
//!
//! ```text
//! softmax(S)_ij = (1 / Σⱼ exp(S_ij)) · exp(S_ij)
//! ```
//!
//! so that the per-element work is a Taylor-series exponent (5th order,
//! computed by PIM multiply/add), the row sum is an ACU adder-tree
//! reduction, and the single division per row becomes one reciprocal in the
//! ACU divider, replicated across the row by the data buffer. The
//! [`SoftmaxKind::HardwareTaylor`] path mirrors that op sequence
//! numerically.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Which softmax the functional model computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftmaxKind {
    /// Numerically-stable exact softmax (max-subtracted `exp`).
    Exact,
    /// The TransPIM datapath: plain 5th-order Taylor exponent and a
    /// reciprocal-times-exponent normalization (no max subtraction — the
    /// paper widens to 16 bits instead).
    HardwareTaylor,
}

/// Taylor-series approximation of `exp(x)` of the given `order`, evaluated
/// with Horner's rule — the exact op sequence the PIM arrays execute
/// (`order` multiplies and adds, Figure 8(b) step 1).
///
/// # Example
///
/// ```
/// use transpim_transformer::softmax::taylor_exp;
/// assert!((taylor_exp(0.0, 5) - 1.0).abs() < 1e-6);
/// assert!((taylor_exp(1.0, 5) - 1.0f32.exp()).abs() < 0.01);
/// ```
pub fn taylor_exp(x: f32, order: u32) -> f32 {
    // Horner: 1 + x(1 + x/2(1 + x/3(1 + x/4(1 + x/5)))).
    let mut acc = 1.0f32;
    for k in (1..=order).rev() {
        acc = 1.0 + x / k as f32 * acc;
    }
    acc
}

/// Row-wise exact softmax.
pub fn softmax_exact(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (o, e) in out.row_mut(r).iter_mut().zip(exps) {
            *o = e / sum;
        }
    }
    out
}

/// Row-wise hardware softmax: Taylor exponent, adder-tree row sum,
/// reciprocal multiply. `order` is the Taylor order (the paper uses 5).
///
/// Negative Taylor outputs (possible for large-magnitude negative inputs,
/// where the odd-order polynomial dips below zero) are clamped at zero,
/// as the fixed-point datapath saturates.
pub fn softmax_taylor(m: &Matrix, order: u32) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let exps: Vec<f32> = m.row(r).iter().map(|&x| taylor_exp(x, order).max(0.0)).collect();
        let sum: f32 = exps.iter().sum();
        let recip = if sum > 0.0 { 1.0 / sum } else { 0.0 };
        for (o, e) in out.row_mut(r).iter_mut().zip(exps) {
            *o = e * recip;
        }
    }
    out
}

/// Dispatch on [`SoftmaxKind`].
pub fn softmax(m: &Matrix, kind: SoftmaxKind) -> Matrix {
    match kind {
        SoftmaxKind::Exact => softmax_exact(m),
        SoftmaxKind::HardwareTaylor => softmax_taylor(m, 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn taylor_matches_exp_near_zero() {
        // 5th-order Taylor truncation error grows with |x|; at ±1.5 it is
        // a few percent, which the paper accepts for attention scores.
        for x in [-1.5f32, -0.5, 0.0, 0.5, 1.5] {
            let err = (taylor_exp(x, 5) - x.exp()).abs() / x.exp();
            assert!(err < 0.08, "x={x}: rel err {err}");
        }
    }

    #[test]
    fn taylor_order_improves_accuracy() {
        let x = 2.0f32;
        let e3 = (taylor_exp(x, 3) - x.exp()).abs();
        let e5 = (taylor_exp(x, 5) - x.exp()).abs();
        let e8 = (taylor_exp(x, 8) - x.exp()).abs();
        assert!(e3 > e5 && e5 > e8);
    }

    #[test]
    fn exact_softmax_rows_sum_to_one() {
        let m = Matrix::from_fn(3, 7, |r, c| (r as f32) - (c as f32) * 0.3);
        let s = softmax_exact(&m);
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn taylor_softmax_rows_sum_to_one() {
        let m = Matrix::from_fn(3, 7, |r, c| ((r + c) as f32 * 0.17).sin());
        let s = softmax_taylor(&m, 5);
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn taylor_softmax_tracks_exact_on_small_scores() {
        // Attention scores after the 1/√D scaling are O(1); the paper's
        // 5th-order Taylor stays close to exact softmax there.
        let m = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.37).sin() * 1.5);
        let a = softmax_exact(&m);
        let b = softmax_taylor(&m, 5);
        assert!(a.max_abs_diff(&b) < 0.02, "diff {}", a.max_abs_diff(&b));
    }

    #[test]
    fn exact_softmax_is_shift_invariant() {
        let m = Matrix::from_fn(2, 5, |_, c| c as f32);
        let shifted = m.map(|x| x + 100.0);
        assert!(softmax_exact(&m).max_abs_diff(&softmax_exact(&shifted)) < 1e-5);
    }

    #[test]
    fn degenerate_all_negative_rows_do_not_nan() {
        let m = Matrix::from_fn(1, 4, |_, _| -30.0);
        let s = softmax_taylor(&m, 5);
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
    }

    proptest! {
        #[test]
        fn softmax_outputs_are_probabilities(
            vals in proptest::collection::vec(-2.0f32..2.0, 2..32)
        ) {
            let m = Matrix::from_vec(1, vals.len(), vals);
            for kind in [SoftmaxKind::Exact, SoftmaxKind::HardwareTaylor] {
                let s = softmax(&m, kind);
                let sum: f32 = s.row(0).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-3);
                prop_assert!(s.as_slice().iter().all(|&p| (-1e-6..=1.0 + 1e-5).contains(&p)));
            }
        }
    }
}
