//! HBM2 memory-system substrate for the TransPIM simulator.
//!
//! This crate models the memory hierarchy of the paper's baseline platform:
//! a set of HBM2 stacks, each with channels, bank groups, banks, and
//! subarrays, plus the buses and links connecting them (Figure 2 and
//! Figure 6 of the paper). It provides:
//!
//! * [`geometry`] — the physical organization (Table I) and strongly-typed
//!   coordinates for every level of the hierarchy,
//! * [`timing`] / [`energy`] — DRAM timing and energy parameters (Table I),
//! * [`resource`] — the set of contended hardware resources (banks, bank-group
//!   buses, channel buses, ring links, stack links, the host bus),
//! * [`command`] — DRAM command-level trace expansion and replay (pins the
//!   closed-form costs to command-accurate behavior),
//! * [`engine`] — a discrete-event engine that replays phases of operations
//!   against those resources and accounts latency, energy, bytes moved, and
//!   per-category busy time,
//! * [`stats`] — the accounting types shared with the accelerator crates.
//!
//! The engine works at the granularity at which the paper's modified
//! Ramulator inserts commands: one event per row-parallel PIM batch, per ACU
//! reduction stream, or per bus transfer, with closed-form latency/energy for
//! each derived from the Table I constants.
//!
//! # Example
//!
//! ```
//! use transpim_hbm::config::HbmConfig;
//!
//! let cfg = HbmConfig::default(); // Table I, 8 stacks
//! assert_eq!(cfg.geometry.total_banks(), 8 * 8 * 32);
//! assert_eq!(cfg.geometry.capacity_bytes(), 64 << 30); // 64 GiB
//! ```

pub mod command;
pub mod config;
pub mod energy;
pub mod engine;
pub mod geometry;
pub mod resource;
pub mod stats;
pub mod timing;

pub use config::{ConfigError, HbmConfig};
pub use energy::EnergyParams;
pub use engine::{Engine, LumpAction, Phase, PhaseOp};
pub use geometry::{BankCoord, BankId, HbmGeometry};
pub use resource::{ResourceId, ResourceMap};
pub use stats::{Category, SimStats};
pub use timing::TimingParams;
