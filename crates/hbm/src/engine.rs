//! Discrete-event phase engine.
//!
//! The dataflow compilers lower a Transformer into a sequence of *phases*
//! (FC compute, a ring-broadcast step, a Softmax normalization, ...). Within
//! a phase, operations on disjoint resources proceed in parallel and
//! operations sharing a resource serialize; phases are barriers, matching the
//! step-synchronous structure of the paper's dataflow (Section III). Each
//! phase is attributed to one breakdown [`Category`], which is how the
//! Figure 11 breakdowns are produced.

use crate::resource::ResourceId;
use crate::stats::{Category, ScopedStats, SimStats};
use std::collections::HashMap;

/// One operation inside a [`Phase::Scheduled`] phase: it occupies every
/// listed resource for `latency_ns`, consumes `energy_pj`, and moves `bytes`
/// through the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOp {
    /// Resources occupied for the duration of the op.
    pub resources: Vec<ResourceId>,
    /// Occupancy time in nanoseconds.
    pub latency_ns: f64,
    /// Energy in picojoules.
    pub energy_pj: f64,
    /// Bytes read/written (bandwidth accounting).
    pub bytes: f64,
}

/// A barrier-synchronized execution phase.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Operations placed by greedy list scheduling with resource contention
    /// (used for bus transfers, reductions across banks, ...). Ops are
    /// started in order; each starts as soon as all its resources are free.
    Scheduled {
        /// Breakdown category of the whole phase.
        category: Category,
        /// Operations to schedule, in issue order.
        ops: Vec<PhaseOp>,
    },
    /// A lock-step operation whose makespan is known in closed form — e.g.
    /// "every bank executes this identical PIM batch in parallel" or a
    /// memoized composite such as `n` identical ring steps. Latency is the
    /// makespan; energy and bytes are system-wide totals.
    Lump {
        /// Breakdown category of the whole phase.
        category: Category,
        /// Phase makespan in nanoseconds.
        latency_ns: f64,
        /// Total energy in picojoules.
        energy_pj: f64,
        /// Total bytes moved.
        bytes: f64,
    },
}

impl Phase {
    /// Convenience constructor for a [`Phase::Lump`].
    pub fn lump(category: Category, latency_ns: f64, energy_pj: f64, bytes: f64) -> Self {
        Phase::Lump { category, latency_ns, energy_pj, bytes }
    }
}

/// Greedy list scheduler: returns the makespan of `ops` run under resource
/// contention. Each op starts at the earliest time all of its resources are
/// free (ops are considered in order), which reproduces the Figure 9 ring
/// schedule when the hops are issued in the paper's slot order.
pub fn schedule_makespan(ops: &[PhaseOp]) -> f64 {
    let mut free_at: HashMap<ResourceId, f64> = HashMap::new();
    let mut makespan = 0.0f64;
    for op in ops {
        let start = op
            .resources
            .iter()
            .map(|r| free_at.get(r).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let end = start + op.latency_ns;
        for r in &op.resources {
            free_at.insert(*r, end);
        }
        makespan = makespan.max(end);
    }
    makespan
}

/// One recorded phase on the simulated timeline (for trace export).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseEvent {
    /// Scope label active when the phase ran.
    pub scope: String,
    /// Breakdown category.
    pub category: Category,
    /// Start time (ns since simulation start).
    pub start_ns: f64,
    /// Duration (ns).
    pub dur_ns: f64,
    /// Energy (pJ).
    pub energy_pj: f64,
}

/// The phase engine: runs phases, advances simulated time, and accumulates
/// global and per-scope statistics.
///
/// # Example
///
/// ```
/// use transpim_hbm::engine::{Engine, Phase};
/// use transpim_hbm::stats::Category;
///
/// let mut e = Engine::new();
/// e.set_scope("fc");
/// e.run(Phase::lump(Category::Arithmetic, 100.0, 5_000.0, 0.0));
/// assert_eq!(e.stats().latency_ns, 100.0);
/// assert_eq!(e.scoped().get("fc").unwrap().latency_ns, 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    stats: SimStats,
    scoped: ScopedStats,
    scope: String,
    timeline: Option<Vec<PhaseEvent>>,
    latency_scale: f64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// New engine at time zero.
    pub fn new() -> Self {
        Self {
            stats: SimStats::new(),
            scoped: ScopedStats::new(),
            scope: String::from("init"),
            timeline: None,
            latency_scale: 1.0,
        }
    }

    /// Stretch every phase's latency by `scale` (≥ 1): used to model
    /// sustained-throughput losses such as DRAM refresh
    /// ([`crate::timing::TimingParams::refresh_overhead`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale < 1.0`.
    pub fn set_latency_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "latency scale must be ≥ 1, got {scale}");
        self.latency_scale = scale;
    }

    /// New engine that additionally records every phase on a timeline
    /// (exportable as a Chrome trace; costs memory proportional to the
    /// phase count).
    pub fn with_timeline() -> Self {
        Self { timeline: Some(Vec::new()), ..Self::new() }
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&[PhaseEvent]> {
        self.timeline.as_deref()
    }

    /// Render the recorded timeline as a Chrome-tracing ("chrome://tracing"
    /// / Perfetto) JSON document. Returns `None` when the timeline was not
    /// enabled. Durations are exported in microseconds on one track per
    /// category.
    pub fn chrome_trace(&self) -> Option<String> {
        let events = self.timeline.as_ref()?;
        let mut out = String::from("[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"energy_pj\":{:.1}}}}}",
                e.scope,
                e.category,
                e.start_ns / 1000.0,
                e.dur_ns / 1000.0,
                e.category.index() + 1,
                e.energy_pj,
            ));
        }
        out.push(']');
        Some(out)
    }

    /// Set the label under which subsequent phases are recorded (e.g. the
    /// current Transformer layer kind).
    pub fn set_scope(&mut self, scope: &str) {
        if self.scope != scope {
            self.scope.clear();
            self.scope.push_str(scope);
        }
    }

    /// Run one phase; returns its makespan in nanoseconds.
    pub fn run(&mut self, phase: Phase) -> f64 {
        let (category, mut latency, energy, bytes) = match phase {
            Phase::Lump { category, latency_ns, energy_pj, bytes } => {
                (category, latency_ns, energy_pj, bytes)
            }
            Phase::Scheduled { category, ref ops } => {
                let latency = schedule_makespan(ops);
                let energy = ops.iter().map(|o| o.energy_pj).sum();
                let bytes = ops.iter().map(|o| o.bytes).sum();
                (category, latency, energy, bytes)
            }
        };
        debug_assert!(latency >= 0.0 && energy >= 0.0 && bytes >= 0.0);
        latency *= self.latency_scale;
        if let Some(timeline) = &mut self.timeline {
            timeline.push(PhaseEvent {
                scope: self.scope.clone(),
                category,
                start_ns: self.stats.latency_ns,
                dur_ns: latency,
                energy_pj: energy,
            });
        }
        self.stats.record(category, latency, energy, bytes);
        self.scoped.record(&self.scope, category, latency, energy, bytes);
        latency
    }

    /// Global statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-scope statistics accumulated so far.
    pub fn scoped(&self) -> &ScopedStats {
        &self.scoped
    }

    /// Consume the engine, returning `(global, per-scope)` statistics.
    pub fn into_stats(self) -> (SimStats, ScopedStats) {
        (self.stats, self.scoped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(resources: &[u32], latency: f64) -> PhaseOp {
        PhaseOp {
            resources: resources.iter().map(|&r| ResourceId(r)).collect(),
            latency_ns: latency,
            energy_pj: 1.0,
            bytes: 8.0,
        }
    }

    #[test]
    fn disjoint_ops_run_in_parallel() {
        assert_eq!(schedule_makespan(&[op(&[0], 10.0), op(&[1], 7.0), op(&[2], 3.0)]), 10.0);
    }

    #[test]
    fn shared_resource_serializes() {
        assert_eq!(schedule_makespan(&[op(&[0, 5], 10.0), op(&[1, 5], 7.0)]), 17.0);
    }

    #[test]
    fn figure9_ring_step_costs_3t_with_links_and_8t_without() {
        use crate::geometry::{BankId, HbmGeometry};
        use crate::resource::{BusParams, ResourceMap};
        // 1 stack, 1 channel, 2 groups of 4 banks: the Figure 9 example.
        let g = HbmGeometry {
            stacks: 1,
            channels_per_stack: 1,
            groups_per_channel: 2,
            banks_per_group: 4,
            ..HbmGeometry::default()
        };
        // Uniform bandwidths so every hop costs the same time T.
        let bus = BusParams {
            channel_gbs: 16.0,
            group_gbs: 16.0,
            ring_link_gbs: 16.0,
            stack_gbs: 16.0,
            host_gbs: 16.0,
        };
        let t = 16.0; // 256 bytes at 16 GB/s
        let hop = |m: &ResourceMap, s: u32, d: u32| {
            let r = m.route(BankId(s), BankId(d));
            let latency_ns = r.transfer_ns(256.0);
            PhaseOp { resources: r.resources, latency_ns, energy_pj: 0.0, bytes: 256.0 }
        };

        // With ring links, issued in the paper's slot order:
        // slot 1: 3→4 (buses), 0→1 and 6→7 (links);
        // slot 2: 7→0 (buses), 2→3 and 4→5 (links);
        // slot 3: 1→2 and 5→6 (links).
        let m = ResourceMap::new(g, bus, true);
        let ops = vec![
            hop(&m, 3, 4), hop(&m, 0, 1), hop(&m, 6, 7),
            hop(&m, 7, 0), hop(&m, 2, 3), hop(&m, 4, 5),
            hop(&m, 1, 2), hop(&m, 5, 6),
        ];
        assert!((schedule_makespan(&ops) - 3.0 * t).abs() < 1e-9);

        // Without ring links every hop is mediated by the single shared
        // channel bus and controller, so the eight hops fully serialize —
        // the 8 T the paper quotes for the original HBM datapath.
        let m = ResourceMap::new(g, bus, false);
        let ops: Vec<PhaseOp> = (0..8u32).map(|i| hop(&m, i, (i + 1) % 8)).collect();
        assert!((schedule_makespan(&ops) - 8.0 * t).abs() < 1e-9);
    }

    #[test]
    fn timeline_records_phases_in_order() {
        let mut e = Engine::with_timeline();
        e.set_scope("fc");
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        e.set_scope("attn");
        e.run(Phase::lump(Category::DataMovement, 3.0, 2.0, 16.0));
        let t = e.timeline().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].scope, "fc");
        assert_eq!(t[0].start_ns, 0.0);
        assert_eq!(t[1].start_ns, 5.0);
        assert_eq!(t[1].dur_ns, 3.0);
        let json = e.chrome_trace().unwrap();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"attn\""));
        // Default engine records no timeline.
        assert!(Engine::new().chrome_trace().is_none());
    }

    #[test]
    fn engine_accumulates_by_scope() {
        let mut e = Engine::new();
        e.set_scope("a");
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        e.set_scope("b");
        e.run(Phase::Scheduled {
            category: Category::DataMovement,
            ops: vec![op(&[0], 3.0), op(&[0], 4.0)],
        });
        assert_eq!(e.stats().latency_ns, 12.0);
        assert_eq!(e.scoped().get("a").unwrap().latency_ns, 5.0);
        assert_eq!(e.scoped().get("b").unwrap().latency_ns, 7.0);
        assert_eq!(e.scoped().get("b").unwrap().bytes_moved, 16.0);
    }
}
