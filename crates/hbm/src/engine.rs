//! Discrete-event phase engine.
//!
//! The dataflow compilers lower a Transformer into a sequence of *phases*
//! (FC compute, a ring-broadcast step, a Softmax normalization, ...). Within
//! a phase, operations on disjoint resources proceed in parallel and
//! operations sharing a resource serialize; phases are barriers, matching the
//! step-synchronous structure of the paper's dataflow (Section III). Each
//! phase is attributed to one breakdown [`Category`], which is how the
//! Figure 11 breakdowns are produced.
//!
//! # Observability
//!
//! The engine carries a [`SinkHandle`] (`transpim-obs`). With an enabled
//! sink attached, every phase is emitted as a span on its category's track,
//! and [`Phase::Scheduled`] phases additionally emit per-op spans and
//! per-[`ResourceId`] occupancy counters on the resource tracks of
//! [`tracks`]. With the default (null) handle, the emission paths are never
//! entered and the engine behaves exactly as an uninstrumented one.

use crate::resource::ResourceId;
use crate::stats::{Category, ScopedStats, SimStats};
use std::collections::{HashMap, HashSet};
use transpim_obs::{CounterEvent, SinkHandle, SpanEvent};

/// One operation inside a [`Phase::Scheduled`] phase: it occupies every
/// listed resource for `latency_ns`, consumes `energy_pj`, and moves `bytes`
/// through the memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOp {
    /// Resources occupied for the duration of the op.
    pub resources: Vec<ResourceId>,
    /// Occupancy time in nanoseconds.
    pub latency_ns: f64,
    /// Energy in picojoules.
    pub energy_pj: f64,
    /// Bytes read/written (bandwidth accounting).
    pub bytes: f64,
}

/// A barrier-synchronized execution phase.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Operations placed by greedy list scheduling with resource contention
    /// (used for bus transfers, reductions across banks, ...). Ops are
    /// started in order; each starts as soon as all its resources are free.
    Scheduled {
        /// Breakdown category of the whole phase.
        category: Category,
        /// Operations to schedule, in issue order.
        ops: Vec<PhaseOp>,
    },
    /// A lock-step operation whose makespan is known in closed form — e.g.
    /// "every bank executes this identical PIM batch in parallel" or a
    /// memoized composite such as `n` identical ring steps. Latency is the
    /// makespan; energy and bytes are system-wide totals.
    Lump {
        /// Breakdown category of the whole phase.
        category: Category,
        /// Phase makespan in nanoseconds.
        latency_ns: f64,
        /// Total energy in picojoules.
        energy_pj: f64,
        /// Total bytes moved.
        bytes: f64,
    },
}

impl Phase {
    /// Convenience constructor for a [`Phase::Lump`].
    pub fn lump(category: Category, latency_ns: f64, energy_pj: f64, bytes: f64) -> Self {
        Phase::Lump { category, latency_ns, energy_pj, bytes }
    }
}

/// Track layout of the simulator's trace emission. Keeping the layout in
/// one place means every emitter (the phase engine, the ring scheduler in
/// `transpim-acu`, the executor in `transpim`) lands on consistent
/// timeline rows in a trace viewer.
pub mod tracks {
    use crate::resource::ResourceId;
    use crate::stats::Category;
    use transpim_obs::TrackId;

    /// Row shared by all ring-broadcast hop events.
    pub const RING: TrackId = TrackId(16);

    /// Row shared by all fault-injection events (ECC corrections, retries,
    /// degradation markers). Named lazily on the first fault so fault-free
    /// traces stay byte-identical.
    pub const FAULT: TrackId = TrackId(17);

    /// First row of the per-resource occupancy range.
    pub const RESOURCE_BASE: u64 = 64;

    /// Row of one breakdown category's phase spans.
    pub fn category(c: Category) -> TrackId {
        TrackId(1 + c.index() as u64)
    }

    /// Row of one contended resource's occupancy timeline.
    pub fn resource(r: ResourceId) -> TrackId {
        TrackId(RESOURCE_BASE + u64::from(r.0))
    }
}

/// Greedy list scheduler: returns the makespan of `ops` run under resource
/// contention. Each op starts at the earliest time all of its resources are
/// free (ops are considered in order), which reproduces the Figure 9 ring
/// schedule when the hops are issued in the paper's slot order.
pub fn schedule_makespan(ops: &[PhaseOp]) -> f64 {
    let mut free_at: HashMap<ResourceId, f64> = HashMap::new();
    let mut makespan = 0.0f64;
    for op in ops {
        let start = op
            .resources
            .iter()
            .map(|r| free_at.get(r).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let end = start + op.latency_ns;
        for r in &op.resources {
            free_at.insert(*r, end);
        }
        makespan = makespan.max(end);
    }
    makespan
}

/// Start/end of one op as placed by the greedy list scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPlacement {
    /// Start time relative to the phase start (ns).
    pub start_ns: f64,
    /// End time relative to the phase start (ns).
    pub end_ns: f64,
}

/// Full placement of a scheduled phase: the makespan plus one
/// [`OpPlacement`] per op, in issue order. Same schedule as
/// [`schedule_makespan`], with the per-op timeline retained for trace
/// emission.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulePlacements {
    /// Phase makespan in nanoseconds.
    pub makespan_ns: f64,
    /// Per-op start/end, parallel to the input op slice.
    pub ops: Vec<OpPlacement>,
}

/// Greedy list scheduling with the per-op placements retained.
pub fn schedule_placements(ops: &[PhaseOp]) -> SchedulePlacements {
    let mut free_at: HashMap<ResourceId, f64> = HashMap::new();
    let mut placed = SchedulePlacements { makespan_ns: 0.0, ops: Vec::with_capacity(ops.len()) };
    for op in ops {
        let start = op
            .resources
            .iter()
            .map(|r| free_at.get(r).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let end = start + op.latency_ns;
        for r in &op.resources {
            free_at.insert(*r, end);
        }
        placed.ops.push(OpPlacement { start_ns: start, end_ns: end });
        placed.makespan_ns = placed.makespan_ns.max(end);
    }
    placed
}

/// The phase engine: runs phases, advances simulated time, and accumulates
/// global and per-scope statistics.
///
/// # Example
///
/// ```
/// use transpim_hbm::engine::{Engine, Phase};
/// use transpim_hbm::stats::Category;
///
/// let mut e = Engine::new();
/// e.set_scope("fc");
/// e.run(Phase::lump(Category::Arithmetic, 100.0, 5_000.0, 0.0));
/// assert_eq!(e.stats().latency_ns, 100.0);
/// assert_eq!(e.scoped().get("fc").unwrap().latency_ns, 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    stats: SimStats,
    scoped: ScopedStats,
    scope: String,
    sink: SinkHandle,
    latency_scale: f64,
    tracks_named: bool,
    named_resources: HashSet<u32>,
    quiet: bool,
}

/// One recorded pricing action from a repeat body's first iteration: the
/// exact statistics updates `Engine::run` applied, minus the step walk
/// that produced them. Replaying the log repeats the identical f64
/// operation sequence, so replayed statistics are byte-identical to
/// re-pricing the body.
#[derive(Debug, Clone, PartialEq)]
pub enum LumpAction {
    /// A `set_scope` call.
    Scope(String),
    /// A lump phase. `latency_ns` is pre-`latency_scale`; replay rescales
    /// exactly as `run` does.
    Lump {
        /// Phase category.
        category: Category,
        /// Unscaled latency contribution.
        latency_ns: f64,
        /// Energy contribution.
        energy_pj: f64,
        /// Bytes-moved contribution.
        bytes: f64,
    },
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// New engine at time zero, with the null (disabled) sink.
    pub fn new() -> Self {
        Self {
            stats: SimStats::new(),
            scoped: ScopedStats::new(),
            scope: String::from("init"),
            sink: SinkHandle::null(),
            latency_scale: 1.0,
            tracks_named: false,
            named_resources: HashSet::new(),
            quiet: false,
        }
    }

    /// New engine that emits every phase (and, for scheduled phases, per-op
    /// and per-resource occupancy events) to `sink`.
    pub fn with_sink(sink: SinkHandle) -> Self {
        Self { sink, ..Self::new() }
    }

    /// Attach (or replace) the observability sink.
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// The attached sink handle (the null handle when tracing is off).
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Suppress (or re-enable) span/counter emission while keeping the
    /// statistics accounting bit-for-bit unchanged. Used by the executor's
    /// repeat collapsing: iterations 1..N of a repeat run quietly and are
    /// represented by one summary span.
    pub fn set_quiet(&mut self, quiet: bool) {
        self.quiet = quiet;
    }

    /// Whether phases currently emit observability events: a sink is
    /// attached and quiet mode is off.
    pub fn emitting(&self) -> bool {
        self.sink.is_enabled() && !self.quiet
    }

    /// Current simulated time: nanoseconds elapsed since the engine
    /// started. The next phase's span starts here.
    pub fn now_ns(&self) -> f64 {
        self.stats.latency_ns
    }

    /// The latency stretch applied to every phase (≥ 1; refresh model).
    pub fn latency_scale(&self) -> f64 {
        self.latency_scale
    }

    /// Stretch every phase's latency by `scale` (≥ 1): used to model
    /// sustained-throughput losses such as DRAM refresh
    /// ([`crate::timing::TimingParams::refresh_overhead`]).
    ///
    /// # Panics
    ///
    /// Panics if `scale < 1.0`.
    pub fn set_latency_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "latency scale must be ≥ 1, got {scale}");
        self.latency_scale = scale;
    }

    /// Set the label under which subsequent phases are recorded (e.g. the
    /// current Transformer layer kind).
    pub fn set_scope(&mut self, scope: &str) {
        if self.scope != scope {
            self.scope.clear();
            self.scope.push_str(scope);
        }
    }

    /// Run one phase; returns its makespan in nanoseconds.
    pub fn run(&mut self, phase: Phase) -> f64 {
        let start_ns = self.stats.latency_ns;
        let emit = self.emitting();
        if emit && !self.tracks_named {
            self.name_category_tracks();
        }
        let (category, mut latency, energy, bytes) = match &phase {
            Phase::Lump { category, latency_ns, energy_pj, bytes } => {
                (*category, *latency_ns, *energy_pj, *bytes)
            }
            Phase::Scheduled { category, ops } => {
                let latency = if emit {
                    let placed = schedule_placements(ops);
                    self.emit_scheduled(*category, ops, &placed, start_ns);
                    placed.makespan_ns
                } else {
                    schedule_makespan(ops)
                };
                let energy = ops.iter().map(|o| o.energy_pj).sum();
                let bytes = ops.iter().map(|o| o.bytes).sum();
                (*category, latency, energy, bytes)
            }
        };
        debug_assert!(latency >= 0.0 && energy >= 0.0 && bytes >= 0.0);
        latency *= self.latency_scale;
        if emit {
            self.sink.span(
                SpanEvent::new(
                    self.scope.clone(),
                    category.label(),
                    tracks::category(category),
                    start_ns,
                    latency,
                )
                .with_arg("energy_pj", energy)
                .with_arg("bytes", bytes),
            );
        }
        self.stats.record(category, latency, energy, bytes);
        self.scoped.record(&self.scope, category, latency, energy, bytes);
        if emit && self.stats.latency_ns > 0.0 {
            // Cumulative busy fraction of this category so far — plotted by
            // trace viewers as a utilization-over-time curve.
            self.sink.counter(CounterEvent::sample(
                format!("util.{}", category.label()),
                tracks::category(category),
                self.stats.latency_ns,
                "busy_frac",
                self.stats.time_ns[category.index()] / self.stats.latency_ns,
            ));
        }
        latency
    }

    /// Per-op spans on the occupied resources' tracks plus one occupancy
    /// counter per resource (busy fraction of the phase makespan).
    fn emit_scheduled(
        &mut self,
        category: Category,
        ops: &[PhaseOp],
        placed: &SchedulePlacements,
        start_ns: f64,
    ) {
        let scale = self.latency_scale;
        let mut busy: HashMap<ResourceId, f64> = HashMap::new();
        for (i, (op, p)) in ops.iter().zip(&placed.ops).enumerate() {
            for r in &op.resources {
                *busy.entry(*r).or_default() += p.end_ns - p.start_ns;
                if self.named_resources.insert(r.0) {
                    self.sink.track_name(tracks::resource(*r), &format!("res{}", r.0));
                }
                self.sink.span(
                    SpanEvent::new(
                        format!("op{i}"),
                        category.label(),
                        tracks::resource(*r),
                        start_ns + p.start_ns * scale,
                        (p.end_ns - p.start_ns) * scale,
                    )
                    .with_arg("bytes", op.bytes),
                );
            }
        }
        if placed.makespan_ns > 0.0 {
            let mut per_resource: Vec<(ResourceId, f64)> = busy.into_iter().collect();
            per_resource.sort_by_key(|(r, _)| *r);
            for (r, busy_ns) in per_resource {
                self.sink.counter(CounterEvent::sample(
                    format!("util.res{}", r.0),
                    tracks::resource(r),
                    start_ns,
                    "busy_frac",
                    busy_ns / placed.makespan_ns,
                ));
            }
        }
    }

    fn name_category_tracks(&mut self) {
        for c in Category::ALL {
            self.sink.track_name(tracks::category(c), &format!("phase:{}", c.label()));
        }
        self.sink.track_name(tracks::RING, "ring hops");
        self.tracks_named = true;
    }

    /// Re-apply a recorded lump-action log `times` times.
    ///
    /// This is the compressed-pricing fast path: the executor prices a
    /// zero-delta repeat body once through [`Engine::run`] while logging
    /// each lump, then replays the log for the remaining iterations. The
    /// replay performs the same f64 additions in the same order as `run`
    /// would, so the resulting [`SimStats`]/[`ScopedStats`] are
    /// byte-identical to walking the unrolled steps. Stats-only: callers
    /// must not replay while emission is on (spans would be lost).
    pub fn replay_lumps(&mut self, actions: &[LumpAction], times: u64) {
        debug_assert!(!self.emitting(), "replay_lumps is stats-only; emit by re-running the body");
        for _ in 0..times {
            for action in actions {
                match action {
                    LumpAction::Scope(s) => self.set_scope(s),
                    LumpAction::Lump { category, latency_ns, energy_pj, bytes } => {
                        let latency = latency_ns * self.latency_scale;
                        self.stats.record(*category, latency, *energy_pj, *bytes);
                        self.scoped.record(&self.scope, *category, latency, *energy_pj, *bytes);
                    }
                }
            }
        }
    }

    /// Global statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-scope statistics accumulated so far.
    pub fn scoped(&self) -> &ScopedStats {
        &self.scoped
    }

    /// Consume the engine, returning `(global, per-scope)` statistics.
    pub fn into_stats(self) -> (SimStats, ScopedStats) {
        (self.stats, self.scoped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transpim_obs::{ChromeTraceSink, NullSink};

    fn op(resources: &[u32], latency: f64) -> PhaseOp {
        PhaseOp {
            resources: resources.iter().map(|&r| ResourceId(r)).collect(),
            latency_ns: latency,
            energy_pj: 1.0,
            bytes: 8.0,
        }
    }

    #[test]
    fn disjoint_ops_run_in_parallel() {
        assert_eq!(schedule_makespan(&[op(&[0], 10.0), op(&[1], 7.0), op(&[2], 3.0)]), 10.0);
    }

    #[test]
    fn shared_resource_serializes() {
        assert_eq!(schedule_makespan(&[op(&[0, 5], 10.0), op(&[1, 5], 7.0)]), 17.0);
    }

    #[test]
    fn placements_agree_with_makespan() {
        let ops = vec![op(&[0, 5], 10.0), op(&[1, 5], 7.0), op(&[2], 3.0)];
        let placed = schedule_placements(&ops);
        assert_eq!(placed.makespan_ns, schedule_makespan(&ops));
        assert_eq!(placed.ops.len(), 3);
        assert_eq!(placed.ops[0].start_ns, 0.0);
        assert_eq!(placed.ops[1].start_ns, 10.0); // waits for resource 5
        assert_eq!(placed.ops[2].start_ns, 0.0); // disjoint, runs immediately
    }

    #[test]
    fn figure9_ring_step_costs_3t_with_links_and_8t_without() {
        use crate::geometry::{BankId, HbmGeometry};
        use crate::resource::{BusParams, ResourceMap};
        // 1 stack, 1 channel, 2 groups of 4 banks: the Figure 9 example.
        let g = HbmGeometry {
            stacks: 1,
            channels_per_stack: 1,
            groups_per_channel: 2,
            banks_per_group: 4,
            ..HbmGeometry::default()
        };
        // Uniform bandwidths so every hop costs the same time T.
        let bus = BusParams {
            channel_gbs: 16.0,
            group_gbs: 16.0,
            ring_link_gbs: 16.0,
            stack_gbs: 16.0,
            host_gbs: 16.0,
        };
        let t = 16.0; // 256 bytes at 16 GB/s
        let hop = |m: &ResourceMap, s: u32, d: u32| {
            let r = m.route(BankId(s), BankId(d));
            let latency_ns = r.transfer_ns(256.0);
            PhaseOp { resources: r.resources, latency_ns, energy_pj: 0.0, bytes: 256.0 }
        };

        // With ring links, issued in the paper's slot order:
        // slot 1: 3→4 (buses), 0→1 and 6→7 (links);
        // slot 2: 7→0 (buses), 2→3 and 4→5 (links);
        // slot 3: 1→2 and 5→6 (links).
        let m = ResourceMap::new(g, bus, true);
        let ops = vec![
            hop(&m, 3, 4),
            hop(&m, 0, 1),
            hop(&m, 6, 7),
            hop(&m, 7, 0),
            hop(&m, 2, 3),
            hop(&m, 4, 5),
            hop(&m, 1, 2),
            hop(&m, 5, 6),
        ];
        assert!((schedule_makespan(&ops) - 3.0 * t).abs() < 1e-9);

        // Without ring links every hop is mediated by the single shared
        // channel bus and controller, so the eight hops fully serialize —
        // the 8 T the paper quotes for the original HBM datapath.
        let m = ResourceMap::new(g, bus, false);
        let ops: Vec<PhaseOp> = (0..8u32).map(|i| hop(&m, i, (i + 1) % 8)).collect();
        assert!((schedule_makespan(&ops) - 8.0 * t).abs() < 1e-9);
    }

    #[test]
    fn sink_records_phases_in_order() {
        let chrome = ChromeTraceSink::shared();
        let mut e = Engine::with_sink(SinkHandle::from_shared(chrome.clone()));
        e.set_scope("fc");
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        e.set_scope("attn");
        e.run(Phase::lump(Category::DataMovement, 3.0, 2.0, 16.0));
        let events = chrome.borrow().sorted_events();
        let spans: Vec<_> = events.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "fc");
        assert_eq!(spans[0].ts, 0.0);
        assert_eq!(spans[1].name, "attn");
        assert_eq!(spans[1].ts, 0.005); // 5 ns in µs
        assert_eq!(spans[1].dur, Some(0.003));
        // Category tracks are named once.
        assert!(events
            .iter()
            .any(|e| e.ph == "M" && e.tid == tracks::category(Category::Arithmetic).0));
    }

    #[test]
    fn scheduled_phase_emits_per_resource_occupancy() {
        let chrome = ChromeTraceSink::shared();
        let mut e = Engine::with_sink(SinkHandle::from_shared(chrome.clone()));
        e.set_scope("xfer");
        e.run(Phase::Scheduled {
            category: Category::DataMovement,
            ops: vec![op(&[0, 5], 10.0), op(&[1, 5], 6.0)],
        });
        let events = chrome.borrow().sorted_events();
        // Shared resource 5 is busy the whole 16 ns makespan; bank 0 only
        // 10 — plus the cumulative per-category utilization sample.
        let util: Vec<_> = events.iter().filter(|e| e.ph == "C").collect();
        assert_eq!(util.len(), 4);
        let busy = |name: &str| {
            util.iter()
                .find(|e| e.name == name)
                .map(|e| match &e.args["busy_frac"] {
                    transpim_obs::ArgValue::Num(v) => *v,
                    other => panic!("non-numeric busy_frac: {other:?}"),
                })
                .unwrap()
        };
        assert!((busy("util.res5") - 1.0).abs() < 1e-12);
        assert!((busy("util.res0") - 10.0 / 16.0).abs() < 1e-12);
        // The whole run is one data-movement phase, so its cumulative
        // utilization is 1.
        assert!((busy("util.data-movement") - 1.0).abs() < 1e-12);
        // Per-op spans land on the resource tracks.
        assert!(events
            .iter()
            .any(|e| e.ph == "X" && e.tid >= tracks::RESOURCE_BASE && e.name == "op1"));
    }

    #[test]
    fn replayed_lumps_match_rerun_lumps_exactly() {
        // The compressed-pricing contract: replaying a recorded log N
        // times is byte-identical to running the same lumps N times.
        let log = vec![
            LumpAction::Scope("dec.fc".to_string()),
            LumpAction::Lump {
                category: Category::Arithmetic,
                latency_ns: 5.3,
                energy_pj: 1.7,
                bytes: 0.0,
            },
            LumpAction::Scope("dec.attn".to_string()),
            LumpAction::Lump {
                category: Category::DataMovement,
                latency_ns: 3.9,
                energy_pj: 2.2,
                bytes: 17.0,
            },
        ];
        let run_once = |e: &mut Engine| {
            e.set_scope("dec.fc");
            e.run(Phase::lump(Category::Arithmetic, 5.3, 1.7, 0.0));
            e.set_scope("dec.attn");
            e.run(Phase::lump(Category::DataMovement, 3.9, 2.2, 17.0));
        };
        let mut replayed = Engine::new();
        replayed.set_latency_scale(1.25);
        let mut rerun = replayed.clone();
        run_once(&mut replayed);
        replayed.replay_lumps(&log, 6);
        for _ in 0..7 {
            run_once(&mut rerun);
        }
        assert_eq!(replayed.stats(), rerun.stats());
        assert_eq!(replayed.scoped(), rerun.scoped());
    }

    #[test]
    fn quiet_mode_suppresses_emission_but_not_stats() {
        let chrome = ChromeTraceSink::shared();
        let mut e = Engine::with_sink(SinkHandle::from_shared(chrome.clone()));
        e.set_scope("fc");
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        e.set_quiet(true);
        assert!(!e.emitting());
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        e.set_quiet(false);
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        assert_eq!(e.stats().latency_ns, 15.0);
        let spans = chrome.borrow().sorted_events().iter().filter(|e| e.ph == "X").count();
        assert_eq!(spans, 2, "quiet phase emits no span");
    }

    #[test]
    fn null_sink_runs_match_untraced_runs_exactly() {
        let phases = |e: &mut Engine| {
            e.set_scope("a");
            e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
            e.set_scope("b");
            e.run(Phase::Scheduled {
                category: Category::DataMovement,
                ops: vec![op(&[0], 3.0), op(&[0], 4.0)],
            });
        };
        let mut plain = Engine::new();
        phases(&mut plain);
        let mut nulled = Engine::with_sink(SinkHandle::new(NullSink));
        phases(&mut nulled);
        assert_eq!(plain.stats(), nulled.stats());
        assert_eq!(plain.scoped(), nulled.scoped());
    }

    #[test]
    fn engine_accumulates_by_scope() {
        let mut e = Engine::new();
        e.set_scope("a");
        e.run(Phase::lump(Category::Arithmetic, 5.0, 1.0, 0.0));
        e.set_scope("b");
        e.run(Phase::Scheduled {
            category: Category::DataMovement,
            ops: vec![op(&[0], 3.0), op(&[0], 4.0)],
        });
        assert_eq!(e.stats().latency_ns, 12.0);
        assert_eq!(e.scoped().get("a").unwrap().latency_ns, 5.0);
        assert_eq!(e.scoped().get("b").unwrap().latency_ns, 7.0);
        assert_eq!(e.scoped().get("b").unwrap().bytes_moved, 16.0);
    }
}
