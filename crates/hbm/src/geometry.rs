//! Physical organization of the HBM memory system (Table I of the paper).
//!
//! The hierarchy, from the outside in:
//!
//! ```text
//! system ─ stacks ─ channels ─ bank groups ─ banks ─ subarrays ─ rows
//! ```
//!
//! Table I: 8 channels per die, 32 banks per channel, 4 banks per group,
//! 32 k rows per bank, 1 KB rows, 512×512 subarrays, 256-bit DQ. A stack is
//! therefore 8 GiB and the evaluated system has 8 stacks (64 GiB).

use crate::config::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique bank identifier, numbered ring-order: stacks, then
/// channels within a stack, then bank groups within a channel, then banks
/// within a group. Consecutive ids are physical ring neighbors in the
/// broadcast ring of Section III-B2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankId(pub u32);

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// Structured coordinates of a bank within the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankCoord {
    /// Stack index within the system.
    pub stack: u32,
    /// Channel index within the stack.
    pub channel: u32,
    /// Bank-group index within the channel.
    pub group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
}

/// Memory organization parameters (Table I defaults via [`Default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HbmGeometry {
    /// Number of HBM stacks attached to the host (the paper uses up to 8).
    pub stacks: u32,
    /// Channels per stack ("Channels/die = 8").
    pub channels_per_stack: u32,
    /// Bank groups per channel (32 banks / 4 banks per group = 8).
    pub groups_per_channel: u32,
    /// Banks per bank group ("Banks/Group = 4").
    pub banks_per_group: u32,
    /// Independent subarray row groups per bank that PIM can activate
    /// (64 subarrays of 512 rows in a 32 k-row bank).
    pub subarrays_per_bank: u32,
    /// Rows per bank ("Rows = 32k").
    pub rows_per_bank: u32,
    /// Bytes per row ("Row Size = 1KB").
    pub row_bytes: u32,
    /// Bit-columns per subarray mat (subarray size 512×512).
    pub subarray_cols: u32,
    /// Data-bus width in bits ("DQ size = 256").
    pub dq_bits: u32,
}

impl Default for HbmGeometry {
    fn default() -> Self {
        Self {
            stacks: 8,
            channels_per_stack: 8,
            groups_per_channel: 8,
            banks_per_group: 4,
            subarrays_per_bank: 64,
            rows_per_bank: 32 * 1024,
            row_bytes: 1024,
            subarray_cols: 512,
            dq_bits: 256,
        }
    }
}

impl HbmGeometry {
    /// Geometry with a different stack count (used by the Figure 15
    /// scalability sweep), all other parameters per Table I.
    pub fn with_stacks(stacks: u32) -> Self {
        Self { stacks, ..Self::default() }
    }

    /// Banks per channel (groups × banks per group; Table I: 32).
    pub fn banks_per_channel(&self) -> u32 {
        self.groups_per_channel * self.banks_per_group
    }

    /// Banks per stack.
    pub fn banks_per_stack(&self) -> u32 {
        self.channels_per_stack * self.banks_per_channel()
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.stacks * self.banks_per_stack()
    }

    /// Total channels in the system.
    pub fn total_channels(&self) -> u32 {
        self.stacks * self.channels_per_stack
    }

    /// Total bank groups in the system.
    pub fn total_groups(&self) -> u32 {
        self.total_channels() * self.groups_per_channel
    }

    /// Capacity of one bank in bytes.
    pub fn bank_bytes(&self) -> u64 {
        u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Capacity of the whole system in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * self.bank_bytes()
    }

    /// Row-buffer width in bits (1 KB row = 8 Kb).
    pub fn row_bits(&self) -> u32 {
        self.row_bytes * 8
    }

    /// Bit-serial PIM lanes active per bank when `p_sub` subarrays are
    /// activated simultaneously: each activated subarray row exposes
    /// `subarray_cols` bit-columns (512 per Table I). Activating one
    /// 512-bit mat row per subarray keeps the activation power inside the
    /// 60 W DRAM budget of Section V-E (see DESIGN.md §3/§6).
    pub fn pim_lanes_per_bank(&self, p_sub: u32) -> u64 {
        u64::from(self.subarray_cols) * u64::from(p_sub.min(self.subarrays_per_bank))
    }

    /// Fraction of a full bank row that one subarray-row activation opens
    /// (used to scale the Table I full-row activation energy).
    pub fn subarray_row_fraction(&self) -> f64 {
        f64::from(self.subarray_cols) / f64::from(self.row_bits())
    }

    /// Check the structural dimensions for simulation use.
    ///
    /// # Errors
    ///
    /// [`ConfigError::NonPositive`] naming the first zero dimension.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let dims = [
            ("geometry.stacks", self.stacks),
            ("geometry.channels_per_stack", self.channels_per_stack),
            ("geometry.groups_per_channel", self.groups_per_channel),
            ("geometry.banks_per_group", self.banks_per_group),
            ("geometry.subarrays_per_bank", self.subarrays_per_bank),
            ("geometry.rows_per_bank", self.rows_per_bank),
            ("geometry.row_bytes", self.row_bytes),
            ("geometry.subarray_cols", self.subarray_cols),
            ("geometry.dq_bits", self.dq_bits),
        ];
        for (name, value) in dims {
            if value == 0 {
                return Err(ConfigError::NonPositive(name));
            }
        }
        Ok(())
    }

    /// Convert structured coordinates to a flat ring-ordered [`BankId`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfRange`] if any coordinate exceeds this geometry.
    pub fn try_bank_id(&self, c: BankCoord) -> Result<BankId, ConfigError> {
        if c.stack >= self.stacks
            || c.channel >= self.channels_per_stack
            || c.group >= self.groups_per_channel
            || c.bank >= self.banks_per_group
        {
            return Err(ConfigError::OutOfRange(format!(
                "bank coordinate {c:?} out of range for {self:?}"
            )));
        }
        Ok(BankId(
            ((c.stack * self.channels_per_stack + c.channel) * self.groups_per_channel + c.group)
                * self.banks_per_group
                + c.bank,
        ))
    }

    /// Convert structured coordinates to a flat ring-ordered [`BankId`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for this geometry; use
    /// [`Self::try_bank_id`] for untrusted inputs.
    pub fn bank_id(&self, c: BankCoord) -> BankId {
        match self.try_bank_id(c) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Convert a flat [`BankId`] back to structured coordinates.
    ///
    /// # Errors
    ///
    /// [`ConfigError::OutOfRange`] if the id exceeds this geometry.
    pub fn try_coord(&self, id: BankId) -> Result<BankCoord, ConfigError> {
        if id.0 >= self.total_banks() {
            return Err(ConfigError::OutOfRange(format!("{id} out of range")));
        }
        Ok(self.coord_unchecked(id))
    }

    /// Convert a flat [`BankId`] back to structured coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this geometry; use
    /// [`Self::try_coord`] for untrusted inputs.
    pub fn coord(&self, id: BankId) -> BankCoord {
        match self.try_coord(id) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    fn coord_unchecked(&self, id: BankId) -> BankCoord {
        let bank = id.0 % self.banks_per_group;
        let rest = id.0 / self.banks_per_group;
        let group = rest % self.groups_per_channel;
        let rest = rest / self.groups_per_channel;
        let channel = rest % self.channels_per_stack;
        let stack = rest / self.channels_per_stack;
        BankCoord { stack, channel, group, bank }
    }

    /// Global channel index of a bank (stacks × channels flattened).
    pub fn channel_of(&self, id: BankId) -> u32 {
        let c = self.coord(id);
        c.stack * self.channels_per_stack + c.channel
    }

    /// Global bank-group index of a bank.
    pub fn group_of(&self, id: BankId) -> u32 {
        self.channel_of(id) * self.groups_per_channel + self.coord(id).group
    }

    /// Iterator over all bank ids in ring order.
    pub fn banks(&self) -> impl Iterator<Item = BankId> {
        (0..self.total_banks()).map(BankId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_capacity_is_8gib_per_stack() {
        let g = HbmGeometry::default();
        assert_eq!(g.banks_per_channel(), 32);
        assert_eq!(g.bank_bytes(), 32 * 1024 * 1024);
        assert_eq!(g.capacity_bytes() / u64::from(g.stacks), 8 << 30);
    }

    #[test]
    fn bank_id_roundtrip_exhaustive_small() {
        let g = HbmGeometry {
            stacks: 2,
            channels_per_stack: 2,
            groups_per_channel: 3,
            banks_per_group: 4,
            ..HbmGeometry::default()
        };
        for id in g.banks() {
            assert_eq!(g.bank_id(g.coord(id)), id);
        }
    }

    #[test]
    fn ring_order_groups_are_contiguous() {
        let g = HbmGeometry::default();
        // Banks 0..4 share group 0, banks 4..8 share group 1, etc.
        assert_eq!(g.group_of(BankId(0)), g.group_of(BankId(3)));
        assert_ne!(g.group_of(BankId(3)), g.group_of(BankId(4)));
        assert_eq!(g.channel_of(BankId(0)), g.channel_of(BankId(31)));
        assert_ne!(g.channel_of(BankId(31)), g.channel_of(BankId(32)));
    }

    #[test]
    fn pim_lanes_clamp_to_subarrays() {
        let g = HbmGeometry::default();
        assert_eq!(g.pim_lanes_per_bank(16), 512 * 16);
        assert_eq!(g.pim_lanes_per_bank(1000), 512 * 64);
        assert!((g.subarray_row_fraction() - 1.0 / 16.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn coord_roundtrip(stack in 0u32..8, channel in 0u32..8, group in 0u32..8, bank in 0u32..4) {
            let g = HbmGeometry::default();
            let c = BankCoord { stack, channel, group, bank };
            prop_assert_eq!(g.coord(g.bank_id(c)), c);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_id_rejects_bad_coord() {
        let g = HbmGeometry::default();
        g.bank_id(BankCoord { stack: 8, channel: 0, group: 0, bank: 0 });
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        let g = HbmGeometry::default();
        let bad = BankCoord { stack: 8, channel: 0, group: 0, bank: 0 };
        let err = g.try_bank_id(bad).expect_err("bad coordinate");
        assert!(err.to_string().contains("out of range"));
        let err = g.try_coord(BankId(g.total_banks())).expect_err("bad id");
        assert!(err.to_string().contains("out of range"));
        assert_eq!(g.try_coord(BankId(5)).expect("valid"), g.coord(BankId(5)));
        assert!(g.validate().is_ok());
        let err = HbmGeometry { banks_per_group: 0, ..g }.validate().expect_err("zero dimension");
        assert!(err.to_string().contains("banks_per_group"));
    }
}
