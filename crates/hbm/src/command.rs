//! DRAM command-level traces.
//!
//! The analytic cost formulas elsewhere in the simulator summarize what is,
//! physically, a stream of DRAM commands — activations, column accesses,
//! precharges, and the triple-row activate-activate-precharge (AAP)
//! sequences of in-situ PIM. This module can *expand* an operation into its
//! actual command stream and replay it under the Table I timing rules,
//! which is how the tests pin the closed forms to command-accurate
//! behavior (the same role the paper's "additional commands inserted into
//! Ramulator" play).

use crate::energy::EnergyParams;
use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};

/// One DRAM command, bank-local (the replayer models one bank; banks run
/// identical streams in lock-step during row-parallel PIM phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramCommand {
    /// Open `row`.
    Activate {
        /// Row index.
        row: u32,
    },
    /// Close the open row.
    Precharge,
    /// Column read of one DQ beat at `col`.
    Read {
        /// Column index.
        col: u32,
    },
    /// Column write of one DQ beat at `col`.
    Write {
        /// Column index.
        col: u32,
    },
    /// Triple-row activation computing a majority/AND/OR across three rows
    /// and restoring the result — one in-situ PIM primitive.
    Aap {
        /// The three simultaneously-opened rows.
        rows: [u32; 3],
    },
}

/// A bank-local command stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CommandTrace {
    /// Commands in issue order.
    pub commands: Vec<DramCommand>,
}

impl CommandTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a command.
    pub fn push(&mut self, c: DramCommand) {
        self.commands.push(c);
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Count of AAP sequences.
    pub fn aaps(&self) -> u64 {
        self.commands.iter().filter(|c| matches!(c, DramCommand::Aap { .. })).count() as u64
    }

    /// Replay the trace under `timing`, returning the completion time in
    /// nanoseconds. Commands issue in order against a single bank:
    ///
    /// * `Activate` may issue `t_RP` after the previous `Precharge` and
    ///   completes its row-to-column delay `t_RCD` later;
    /// * column accesses are paced by `t_CCD_L` within the open row (a
    ///   `Write` additionally holds the bank for `t_WR` before precharge);
    /// * `Precharge` may issue `t_RAS` after the activate it closes;
    /// * `Aap` is a self-contained activate-activate-precharge cycle,
    ///   `t_RC` end to end.
    ///
    /// # Panics
    ///
    /// Panics if a column access is issued with no open row.
    pub fn replay_ns(&self, timing: &TimingParams) -> f64 {
        let mut now = 0.0f64; // time the bank becomes free for the next cmd
        let mut act_at: Option<f64> = None; // activate issue time of open row
        let mut col_ready = 0.0f64; // earliest next column access
        let mut wr_recovery = 0.0f64; // write-recovery expiry
        for c in &self.commands {
            match c {
                DramCommand::Activate { .. } => {
                    assert!(act_at.is_none(), "activate with a row already open");
                    act_at = Some(now);
                    col_ready = now + timing.t_rcd;
                    now += timing.t_rcd;
                }
                DramCommand::Read { .. } | DramCommand::Write { .. } => {
                    let open_since = act_at.expect("column access with no open row");
                    let start = col_ready.max(open_since + timing.t_rcd);
                    let end = start + timing.t_ccd_l;
                    col_ready = end;
                    now = now.max(end);
                    if matches!(c, DramCommand::Write { .. }) {
                        wr_recovery = end + timing.t_wr;
                    }
                }
                DramCommand::Precharge => {
                    let opened = act_at.take().expect("precharge with no open row");
                    let earliest = (opened + timing.t_ras).max(wr_recovery).max(now);
                    now = earliest + timing.t_rp();
                    wr_recovery = 0.0;
                }
                DramCommand::Aap { .. } => {
                    assert!(act_at.is_none(), "AAP with a row open");
                    now += timing.t_aap();
                }
            }
        }
        now
    }

    /// Energy of the trace in pJ for a bank whose activations open
    /// `activated_bits` cells and whose column accesses move `dq_bits`
    /// beats through the local sense amps.
    pub fn energy_pj(&self, energy: &EnergyParams, activated_bits: u32, dq_bits: u32) -> f64 {
        let act_pj = energy.e_act * f64::from(activated_bits) / 8192.0;
        let mut pj = 0.0;
        for c in &self.commands {
            match c {
                DramCommand::Activate { .. } => pj += act_pj,
                DramCommand::Aap { .. } => pj += act_pj, // shared-bitline triple activation
                DramCommand::Read { .. } | DramCommand::Write { .. } => {
                    pj += energy.local_column_access(u64::from(dq_bits));
                }
                DramCommand::Precharge => {}
            }
        }
        pj
    }
}

/// Expand one bit-serial PIM batch of `aaps` primitives into its command
/// stream (the logic rows cycle through a small scratch region).
pub fn pim_batch_trace(aaps: u64) -> CommandTrace {
    let mut t = CommandTrace::new();
    for i in 0..aaps {
        let base = (i % 64) as u32 * 4;
        t.push(DramCommand::Aap { rows: [base, base + 1, base + 2] });
    }
    t
}

/// Expand an ACU vector reduction into its command stream: per row
/// activation, `p_add` column reads feed the adder trees before precharge
/// (Section IV-A1).
pub fn acu_reduce_trace(row_activations: u64, p_add: u32) -> CommandTrace {
    let mut t = CommandTrace::new();
    for r in 0..row_activations {
        t.push(DramCommand::Activate { row: (r % 512) as u32 });
        for c in 0..p_add {
            t.push(DramCommand::Read { col: c });
        }
        t.push(DramCommand::Precharge);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::default()
    }

    #[test]
    fn empty_trace_is_free() {
        assert_eq!(CommandTrace::new().replay_ns(&timing()), 0.0);
    }

    #[test]
    fn aap_stream_is_paced_by_t_rc() {
        let t = pim_batch_trace(100);
        assert_eq!(t.aaps(), 100);
        assert!((t.replay_ns(&timing()) - 100.0 * 45.0).abs() < 1e-9);
    }

    #[test]
    fn activate_read_precharge_cycle() {
        let mut t = CommandTrace::new();
        t.push(DramCommand::Activate { row: 0 });
        t.push(DramCommand::Read { col: 0 });
        t.push(DramCommand::Precharge);
        // tRCD (16) + tCCD_L (4) = 20 < tRAS (29); precharge waits for tRAS
        // then tRP (16): 45 ns total — one row cycle.
        assert!((t.replay_ns(&timing()) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut t = CommandTrace::new();
        t.push(DramCommand::Activate { row: 0 });
        t.push(DramCommand::Write { col: 0 });
        t.push(DramCommand::Precharge);
        // Write ends at 20, +tWR (16) = 36 > tRAS 29; +tRP = 52.
        assert!((t.replay_ns(&timing()) - 52.0).abs() < 1e-9);
    }

    #[test]
    fn column_accesses_pipeline_within_open_row() {
        let mut t = CommandTrace::new();
        t.push(DramCommand::Activate { row: 3 });
        for c in 0..8 {
            t.push(DramCommand::Read { col: c });
        }
        t.push(DramCommand::Precharge);
        // 16 + 8×4 = 48 > tRAS; + tRP = 64.
        assert!((t.replay_ns(&timing()) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn acu_trace_matches_reduce_model_per_activation_cost() {
        // The AcuReduceModel prices each activation as
        // max(tRC, tRCD + P_add·tCCD_L + tRP); the replayed command stream
        // must agree.
        for p_add in [1u32, 4, 16] {
            let rows = 10u64;
            let t = acu_reduce_trace(rows, p_add);
            let replayed = t.replay_ns(&timing());
            let per_act = 45.0f64.max(16.0 + f64::from(p_add) * 4.0 + 16.0);
            assert!(
                (replayed - rows as f64 * per_act).abs() < 1e-9,
                "p_add={p_add}: replay {replayed} vs model {}",
                rows as f64 * per_act
            );
        }
    }

    #[test]
    fn energy_counts_activations_and_beats() {
        let mut t = CommandTrace::new();
        t.push(DramCommand::Activate { row: 0 });
        t.push(DramCommand::Read { col: 0 });
        t.push(DramCommand::Precharge);
        let e = EnergyParams::default();
        let pj = t.energy_pj(&e, 512, 256);
        let expect = 909.0 * 512.0 / 8192.0 + 256.0 * 1.51;
        assert!((pj - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no open row")]
    fn column_access_requires_open_row() {
        let mut t = CommandTrace::new();
        t.push(DramCommand::Read { col: 0 });
        t.replay_ns(&timing());
    }
}
