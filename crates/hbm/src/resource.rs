//! Contended hardware resources of the TransPIM memory system and routing of
//! data transfers across them.
//!
//! A transfer between two banks (or from the host to a bank) occupies every
//! bus segment along its path for its duration; the engine serializes
//! operations that share a segment. The segments follow Figure 2 / Figure 6
//! of the paper:
//!
//! * per-bank ring-broadcast links (dedicated 256-bit neighbor links, only
//!   present when the TransPIM communication hardware is enabled),
//! * per-bank-group buses,
//! * per-channel shared buses,
//! * per-stack TSV/base-die links,
//! * the shared host↔HBM interposer bus (256 GB/s).

use crate::geometry::{BankId, HbmGeometry};
use serde::{Deserialize, Serialize};

/// Identifier of one contended resource, valid for the [`ResourceMap`] that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

/// Bus/link bandwidth parameters in bytes per nanosecond (= GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusParams {
    /// Shared bus of one channel (8 channels × 32 GB/s = 256 GB/s per stack).
    pub channel_gbs: f64,
    /// Bus segment of one bank group.
    pub group_gbs: f64,
    /// Dedicated ring-broadcast link between neighboring banks
    /// (256 bits at the 500 MHz ACU clock = 16 GB/s).
    pub ring_link_gbs: f64,
    /// Per-stack TSV / base-die switching capacity.
    pub stack_gbs: f64,
    /// Host↔HBM interposer bandwidth, shared by all stacks (Section V-A).
    pub host_gbs: f64,
}

impl Default for BusParams {
    fn default() -> Self {
        Self {
            channel_gbs: 32.0,
            group_gbs: 32.0,
            ring_link_gbs: 16.0,
            stack_gbs: 256.0,
            host_gbs: 256.0,
        }
    }
}

/// Route taken by a transfer, with the set of occupied resources and the
/// bottleneck bandwidth along the path.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Every resource occupied for the duration of the transfer.
    pub resources: Vec<ResourceId>,
    /// Bottleneck bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl Route {
    /// Transfer time in nanoseconds for `bytes` over this route.
    pub fn transfer_ns(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth_gbs
    }
}

/// A ring link that still works, but below its nominal bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedLink {
    /// Global bank-group index of the affected neighbor link.
    pub group: u32,
    /// Remaining fraction of `ring_link_gbs`, in `(0, 1]`.
    pub factor: f64,
}

/// Maps hierarchy elements to flat [`ResourceId`]s and routes transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceMap {
    geometry: HbmGeometry,
    bus: BusParams,
    /// Whether the dedicated ring-broadcast links exist (TransPIM-Buf). When
    /// absent, neighbor hops fall back to the shared buses (TransPIM-NB and
    /// the PIM-only / NBP baselines without the broadcast buffer).
    ring_links: bool,
    /// Groups whose dedicated neighbor link is dead: intra-group hops in
    /// these groups fall back to the shared buses (the paper's 8T
    /// schedule), store-and-forward through the channel controller. Sorted.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    dead_ring_links: Vec<u32>,
    /// Groups whose neighbor link runs below nominal bandwidth.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    degraded_ring_links: Vec<DegradedLink>,
}

impl ResourceMap {
    /// Build a resource map for `geometry` with the given bus parameters.
    pub fn new(geometry: HbmGeometry, bus: BusParams, ring_links: bool) -> Self {
        Self {
            geometry,
            bus,
            ring_links,
            dead_ring_links: Vec::new(),
            degraded_ring_links: Vec::new(),
        }
    }

    /// The same map with ring-link faults applied: `dead` groups lose their
    /// neighbor link entirely, `degraded` groups keep it at a fraction of
    /// nominal bandwidth. A group listed in both is treated as dead.
    pub fn with_ring_faults(mut self, dead: &[u32], degraded: &[(u32, f64)]) -> Self {
        let mut dead: Vec<u32> = dead.to_vec();
        dead.sort_unstable();
        dead.dedup();
        self.degraded_ring_links = degraded
            .iter()
            .filter(|(g, _)| dead.binary_search(g).is_err())
            .map(|&(group, factor)| DegradedLink { group, factor })
            .collect();
        self.dead_ring_links = dead;
        self
    }

    /// True when `group`'s dedicated neighbor link is dead.
    pub fn link_dead(&self, group: u32) -> bool {
        self.dead_ring_links.binary_search(&group).is_ok()
    }

    /// Remaining bandwidth fraction of `group`'s neighbor link (1.0 when
    /// healthy).
    pub fn link_factor(&self, group: u32) -> f64 {
        self.degraded_ring_links.iter().find(|d| d.group == group).map_or(1.0, |d| d.factor)
    }

    /// Whether any ring-link fault is applied to this map.
    pub fn has_link_faults(&self) -> bool {
        !self.dead_ring_links.is_empty() || !self.degraded_ring_links.is_empty()
    }

    /// The geometry this map was built for.
    pub fn geometry(&self) -> &HbmGeometry {
        &self.geometry
    }

    /// Bus parameters.
    pub fn bus(&self) -> &BusParams {
        &self.bus
    }

    /// Whether dedicated ring links are present.
    pub fn has_ring_links(&self) -> bool {
        self.ring_links
    }

    /// Total number of distinct resources (banks + groups + channels +
    /// stacks + host + per-group ring-link tokens).
    pub fn len(&self) -> u32 {
        let g = &self.geometry;
        g.total_banks() + g.total_groups() + g.total_channels() + g.stacks + 1 + g.total_groups()
    }

    /// Always false; maps are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Resource of a bank (its row buffer / array port).
    pub fn bank(&self, id: BankId) -> ResourceId {
        debug_assert!(id.0 < self.geometry.total_banks());
        ResourceId(id.0)
    }

    /// Resource of a bank-group bus (global group index).
    pub fn group_bus(&self, group: u32) -> ResourceId {
        debug_assert!(group < self.geometry.total_groups());
        ResourceId(self.geometry.total_banks() + group)
    }

    /// Resource of a channel bus (global channel index).
    pub fn channel_bus(&self, channel: u32) -> ResourceId {
        debug_assert!(channel < self.geometry.total_channels());
        ResourceId(self.geometry.total_banks() + self.geometry.total_groups() + channel)
    }

    /// Resource of a stack's TSV/base-die link.
    pub fn stack_link(&self, stack: u32) -> ResourceId {
        debug_assert!(stack < self.geometry.stacks);
        ResourceId(
            self.geometry.total_banks()
                + self.geometry.total_groups()
                + self.geometry.total_channels()
                + stack,
        )
    }

    /// Resource of the shared host bus.
    pub fn host_bus(&self) -> ResourceId {
        ResourceId(
            self.geometry.total_banks()
                + self.geometry.total_groups()
                + self.geometry.total_channels()
                + self.geometry.stacks,
        )
    }

    /// Ring-link token of a bank group: at most one intra-group ring hop can
    /// be in flight per group at a time (Figure 9's schedule uses exactly
    /// this constraint).
    pub fn ring_link(&self, group: u32) -> ResourceId {
        debug_assert!(group < self.geometry.total_groups());
        ResourceId(
            self.geometry.total_banks()
                + self.geometry.total_groups()
                + self.geometry.total_channels()
                + self.geometry.stacks
                + 1
                + group,
        )
    }

    /// Route a bank-to-bank transfer. Both banks are always occupied; the
    /// intermediate segments depend on how far apart the banks are in the
    /// hierarchy and on whether ring links exist.
    pub fn route(&self, src: BankId, dst: BankId) -> Route {
        let g = &self.geometry;
        let (sc, dc) = (g.coord(src), g.coord(dst));
        let mut resources = vec![self.bank(src), self.bank(dst)];
        let mut bw = f64::INFINITY;

        let src_group = g.group_of(src);
        let dst_group = g.group_of(dst);
        let src_channel = g.channel_of(src);
        let dst_channel = g.channel_of(dst);

        let neighbors = src.0.abs_diff(dst.0) == 1;
        if src_group == dst_group && self.ring_links && neighbors && !self.link_dead(src_group) {
            // Dedicated neighbor link inside a bank group, possibly running
            // below nominal bandwidth when degraded.
            resources.push(self.ring_link(src_group));
            bw = bw.min(self.bus.ring_link_gbs * self.link_factor(src_group));
            return Route { resources, bandwidth_gbs: bw };
        }

        if src_group == dst_group {
            resources.push(self.group_bus(src_group));
            bw = bw.min(self.bus.group_gbs);
            if !self.ring_links || self.link_dead(src_group) {
                // Original HBM datapath: every transfer is mediated by the
                // single shared channel bus and controller. A dead neighbor
                // link degrades its group to this path — the Figure 9
                // fallback from the 3T to the 8T schedule.
                resources.push(self.channel_bus(src_channel));
                if self.ring_links {
                    // Dead-link detour on a machine built around the
                    // dedicated links: the payload is staged in the channel
                    // controller and re-driven, so the group and channel
                    // crossings serialize (store-and-forward) rather than
                    // streaming cut-through like the native no-links
                    // datapath below — a dead link is never free, even for
                    // a ring confined to one bank group.
                    bw = bw.min(1.0 / (1.0 / self.bus.group_gbs + 1.0 / self.bus.channel_gbs));
                } else {
                    bw = bw.min(self.bus.channel_gbs);
                }
            }
            return Route { resources, bandwidth_gbs: bw };
        }

        // Different groups: occupy both group buses.
        resources.push(self.group_bus(src_group));
        resources.push(self.group_bus(dst_group));
        bw = bw.min(self.bus.group_gbs);

        if src_channel == dst_channel {
            // With the TransPIM broadcast units, the bank-group bus segments
            // are decoupled from the global channel bus, so a cross-group
            // hop only occupies the two adjacent group buses (Figure 9 uses
            // "the bank group bus (both BankGroup A and BankGroup B)" for
            // the 3→4 hop) and disjoint group pairs transfer in parallel.
            // Without them, every transfer rides the single shared channel
            // bus and controller.
            if !self.ring_links {
                resources.push(self.channel_bus(src_channel));
                bw = bw.min(self.bus.channel_gbs);
            }
            return Route { resources, bandwidth_gbs: bw };
        }

        resources.push(self.channel_bus(src_channel));
        resources.push(self.channel_bus(dst_channel));
        bw = bw.min(self.bus.channel_gbs);

        if sc.stack == dc.stack {
            resources.push(self.stack_link(sc.stack));
            bw = bw.min(self.bus.stack_gbs);
            return Route { resources, bandwidth_gbs: bw };
        }

        resources.push(self.stack_link(sc.stack));
        resources.push(self.stack_link(dc.stack));
        resources.push(self.host_bus());
        bw = bw.min(self.bus.stack_gbs).min(self.bus.host_gbs);
        Route { resources, bandwidth_gbs: bw }
    }

    /// Route a host→bank load (weights, inputs). Occupies the host bus, the
    /// stack link and the channel bus of the destination.
    pub fn route_from_host(&self, dst: BankId) -> Route {
        let g = &self.geometry;
        let c = g.coord(dst);
        let resources = vec![
            self.host_bus(),
            self.stack_link(c.stack),
            self.channel_bus(g.channel_of(dst)),
            self.group_bus(g.group_of(dst)),
            self.bank(dst),
        ];
        let bw = self
            .bus
            .host_gbs
            .min(self.bus.stack_gbs)
            .min(self.bus.channel_gbs)
            .min(self.bus.group_gbs);
        Route { resources, bandwidth_gbs: bw }
    }

    /// Route a host→channel broadcast write: the data crosses the host bus
    /// and stack link once and is written to all banks of the channel
    /// simultaneously (the PIM memory controller drives the shared channel
    /// bus with all target rows open). Bank resources are intentionally not
    /// enumerated; the caller models per-bank write energy separately.
    pub fn route_host_broadcast(&self, stack: u32, channel: u32) -> Route {
        let resources = vec![
            self.host_bus(),
            self.stack_link(stack),
            self.channel_bus(stack * self.geometry.channels_per_stack + channel),
        ];
        let bw = self.bus.host_gbs.min(self.bus.stack_gbs).min(self.bus.channel_gbs);
        Route { resources, bandwidth_gbs: bw }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(ring: bool) -> ResourceMap {
        ResourceMap::new(HbmGeometry::default(), BusParams::default(), ring)
    }

    #[test]
    fn resource_ids_are_disjoint() {
        let m = map(true);
        let g = m.geometry;
        let mut seen = std::collections::HashSet::new();
        for b in g.banks() {
            assert!(seen.insert(m.bank(b)));
        }
        for gr in 0..g.total_groups() {
            assert!(seen.insert(m.group_bus(gr)));
            assert!(seen.insert(m.ring_link(gr)));
        }
        for c in 0..g.total_channels() {
            assert!(seen.insert(m.channel_bus(c)));
        }
        for s in 0..g.stacks {
            assert!(seen.insert(m.stack_link(s)));
        }
        assert!(seen.insert(m.host_bus()));
        assert_eq!(seen.len() as u32, m.len());
    }

    #[test]
    fn neighbor_hop_uses_ring_link_when_present() {
        let m = map(true);
        let r = m.route(BankId(0), BankId(1));
        assert!(r.resources.contains(&m.ring_link(0)));
        assert_eq!(r.bandwidth_gbs, 16.0);

        let m = map(false);
        let r = m.route(BankId(0), BankId(1));
        assert!(r.resources.contains(&m.group_bus(0)));
        assert_eq!(r.bandwidth_gbs, 32.0);
    }

    #[test]
    fn cross_group_hop_occupies_both_group_buses() {
        // With broadcast units the group-bus segments are decoupled from
        // the channel bus; without them the shared channel bus serializes.
        let m = map(true);
        let r = m.route(BankId(3), BankId(4)); // group 0 -> group 1, channel 0
        assert!(r.resources.contains(&m.group_bus(0)));
        assert!(r.resources.contains(&m.group_bus(1)));
        assert!(!r.resources.contains(&m.channel_bus(0)));

        let m = map(false);
        let r = m.route(BankId(3), BankId(4));
        assert!(r.resources.contains(&m.channel_bus(0)));
        let r = m.route(BankId(0), BankId(2)); // same group, no links
        assert!(r.resources.contains(&m.channel_bus(0)));
    }

    #[test]
    fn cross_stack_hop_goes_through_host() {
        let m = map(true);
        let g = *m.geometry();
        let last_of_stack0 = BankId(g.banks_per_stack() - 1);
        let first_of_stack1 = BankId(g.banks_per_stack());
        let r = m.route(last_of_stack0, first_of_stack1);
        assert!(r.resources.contains(&m.host_bus()));
        assert!(r.resources.contains(&m.stack_link(0)));
        assert!(r.resources.contains(&m.stack_link(1)));
    }

    #[test]
    fn dead_link_falls_back_to_shared_buses() {
        let m = map(true).with_ring_faults(&[0], &[]);
        let r = m.route(BankId(0), BankId(1));
        assert!(!r.resources.contains(&m.ring_link(0)));
        assert!(r.resources.contains(&m.group_bus(0)));
        assert!(r.resources.contains(&m.channel_bus(0)), "8T fallback rides the channel bus");
        // Same path as the no-ring-links datapath, but store-and-forward
        // through the controller: the two bus crossings serialize, so the
        // detour is strictly slower than either segment alone.
        let nb = map(false).route(BankId(0), BankId(1));
        assert_eq!(r.resources, nb.resources);
        assert_eq!(r.bandwidth_gbs, 1.0 / (1.0 / 32.0 + 1.0 / 32.0));
        assert!(r.bandwidth_gbs < nb.bandwidth_gbs);
        // Other groups keep their dedicated link.
        let healthy_src = BankId(m.geometry().banks_per_group);
        let r = m.route(healthy_src, BankId(healthy_src.0 + 1));
        assert!(r.resources.contains(&m.ring_link(1)));
        assert_eq!(r.bandwidth_gbs, 16.0);
    }

    #[test]
    fn degraded_link_scales_bandwidth_only() {
        let m = map(true).with_ring_faults(&[], &[(0, 0.25)]);
        let r = m.route(BankId(0), BankId(1));
        assert!(r.resources.contains(&m.ring_link(0)));
        assert_eq!(r.bandwidth_gbs, 4.0);
        assert_eq!(m.route(BankId(4), BankId(5)).bandwidth_gbs, 16.0);
    }

    #[test]
    fn dead_supersedes_degraded_and_wire_shape_is_stable() {
        let m = map(true).with_ring_faults(&[2, 1, 1], &[(1, 0.5), (3, 0.5)]);
        assert!(m.link_dead(1) && m.link_dead(2));
        assert_eq!(m.link_factor(1), 1.0, "dead link wins over degraded");
        assert_eq!(m.link_factor(3), 0.5);
        // A fault-free map serializes without the new fields, so existing
        // JSON fixtures and traces stay byte-identical.
        let clean = serde_json::to_string(&map(true)).expect("serialize");
        assert!(!clean.contains("dead_ring_links"));
        assert!(!clean.contains("degraded_ring_links"));
        let faulted = serde_json::to_string(&m).expect("serialize");
        assert!(faulted.contains("dead_ring_links"));
        let back: ResourceMap = serde_json::from_str(&faulted).expect("roundtrip");
        assert_eq!(back, m);
        let back: ResourceMap = serde_json::from_str(&clean).expect("roundtrip");
        assert!(!back.has_link_faults());
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = map(true);
        let r = m.route(BankId(0), BankId(1));
        assert!((r.transfer_ns(1600.0) - 100.0).abs() < 1e-9); // 1600 B at 16 GB/s
    }

    #[test]
    fn host_broadcast_route_is_channel_wide() {
        let m = map(true);
        let r = m.route_host_broadcast(0, 3);
        assert_eq!(r.resources.len(), 3);
        assert_eq!(r.bandwidth_gbs, 32.0);
    }
}
