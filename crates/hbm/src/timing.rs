//! HBM2 DRAM timing parameters (Table I of the paper), in nanoseconds.

use serde::{Deserialize, Serialize};

/// DRAM timing parameters in nanoseconds.
///
/// Defaults are the Table I values. `t_rp` is derived (`t_rc − t_ras`).
///
/// # Example
///
/// ```
/// use transpim_hbm::timing::TimingParams;
/// let t = TimingParams::default();
/// assert_eq!(t.t_rc, 45.0);
/// assert_eq!(t.t_rp(), 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Row cycle time: minimum interval between activations of the same bank.
    pub t_rc: f64,
    /// Row-to-column delay (activate → first column access).
    pub t_rcd: f64,
    /// Row active time (activate → precharge).
    pub t_ras: f64,
    /// Column (CAS) latency.
    pub t_cl: f64,
    /// Activate-to-activate delay between different banks.
    pub t_rrd: f64,
    /// Write recovery time (Table I lists this as `t_TWR`).
    pub t_wr: f64,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: f64,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: f64,
    /// Average refresh interval (ns). HBM2 refreshes each bank every
    /// `t_REFI` on average; during `t_RFC` the bank is unavailable. Not in
    /// the paper's Table I — standard JESD235 values.
    pub t_refi: f64,
    /// Refresh cycle time (ns).
    pub t_rfc: f64,
    /// Four-activation window (ns): at most four row activations may issue
    /// within any `t_FAW` window per pseudo-channel — a power-delivery
    /// constraint that bites activation-heavy PIM especially hard. Not in
    /// Table I; standard HBM2 value.
    pub t_faw: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            t_rc: 45.0,
            t_rcd: 16.0,
            t_ras: 29.0,
            t_cl: 16.0,
            t_rrd: 2.0,
            t_wr: 16.0,
            t_ccd_s: 2.0,
            t_ccd_l: 4.0,
            t_refi: 3900.0,
            t_rfc: 350.0,
            t_faw: 16.0,
        }
    }
}

impl TimingParams {
    /// Row precharge time, derived as `t_rc − t_ras`.
    pub fn t_rp(&self) -> f64 {
        self.t_rc - self.t_ras
    }

    /// Latency of one triple-row-activation PIM primitive (an
    /// activate-activate-precharge sequence in the style of Ambit /
    /// ComputeDRAM). The paper's in-situ ops are paced by the row cycle.
    pub fn t_aap(&self) -> f64 {
        self.t_rc
    }

    /// Latency of one RowClone FPM row copy (back-to-back activations of
    /// source and destination rows followed by a precharge).
    pub fn t_rowclone(&self) -> f64 {
        2.0 * self.t_ras + self.t_rp()
    }

    /// Time to stream `cols` column accesses out of an open row within one
    /// bank group (paced by `t_ccd_l`).
    pub fn t_burst(&self, cols: u64) -> f64 {
        cols as f64 * self.t_ccd_l
    }

    /// Fractional throughput loss to refresh: each bank spends `t_RFC` out
    /// of every `t_REFI` unavailable. Sustained operations stretch by
    /// `1 + refresh_overhead()` (~9% at the JESD235 defaults).
    pub fn refresh_overhead(&self) -> f64 {
        if self.t_refi <= 0.0 {
            0.0
        } else {
            self.t_rfc / (self.t_refi - self.t_rfc).max(1e-9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times_match_table1() {
        let t = TimingParams::default();
        assert_eq!(t.t_rp(), 16.0);
        assert_eq!(t.t_aap(), 45.0);
        assert_eq!(t.t_rowclone(), 74.0);
        assert_eq!(t.t_burst(10), 40.0);
    }

    #[test]
    fn faw_default_is_hbm2() {
        assert_eq!(TimingParams::default().t_faw, 16.0);
    }

    #[test]
    fn refresh_overhead_is_about_ten_percent() {
        let t = TimingParams::default();
        let o = t.refresh_overhead();
        assert!(o > 0.05 && o < 0.15, "refresh overhead {o}");
        let none = TimingParams { t_refi: 0.0, ..t };
        assert_eq!(none.refresh_overhead(), 0.0);
    }
}
