//! Accounting types: operation categories, latency/energy/bandwidth counters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Breakdown categories used throughout the paper's evaluation (Figure 11):
/// data movement (loading and intra-memory copies), non-reduction arithmetic,
/// reductions, and other operations (plain reads and stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Data loading and intra-memory copies (host loads, ring broadcast,
    /// buffer copies, RowClone).
    DataMovement,
    /// Non-reduction arithmetic (point-wise PIM ops, NBP MACs, exponent
    /// Taylor series).
    Arithmetic,
    /// Vector reductions (ACU adder trees, PIM shift-add reduction, NBP
    /// adder tree) and the Softmax normalization division.
    Reduction,
    /// Plain memory reads and stores of results.
    Other,
}

impl Category {
    /// All categories, in the order the paper's Figure 11 stacks them.
    pub const ALL: [Category; 4] =
        [Category::DataMovement, Category::Arithmetic, Category::Reduction, Category::Other];

    /// Stable index for array-based accumulation.
    pub fn index(self) -> usize {
        match self {
            Category::DataMovement => 0,
            Category::Arithmetic => 1,
            Category::Reduction => 2,
            Category::Other => 3,
        }
    }

    /// Whether this category counts as "computation" for the resource
    /// utilization metric of Section V-C.
    pub fn is_compute(self) -> bool {
        matches!(self, Category::Arithmetic | Category::Reduction)
    }

    /// Stable display label, also used as the trace-event category string.
    pub fn label(self) -> &'static str {
        match self {
            Category::DataMovement => "data-movement",
            Category::Arithmetic => "arithmetic",
            Category::Reduction => "reduction",
            Category::Other => "other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated simulation statistics.
///
/// `latency_ns` is wall-clock makespan; the per-category times partition it
/// (every engine phase is attributed to exactly one category), so
/// `time_by_category` sums to `latency_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Total makespan in nanoseconds.
    pub latency_ns: f64,
    /// Makespan attributed to each [`Category`] (indexed by
    /// [`Category::index`]).
    pub time_ns: [f64; 4],
    /// Energy in picojoules attributed to each [`Category`].
    pub energy_pj: [f64; 4],
    /// Total bytes read or written inside the memory system (for the
    /// Figure 12 average-bandwidth metric).
    pub bytes_moved: f64,
}

impl SimStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one engine phase.
    pub fn record(&mut self, category: Category, latency_ns: f64, energy_pj: f64, bytes: f64) {
        self.latency_ns += latency_ns;
        self.time_ns[category.index()] += latency_ns;
        self.energy_pj[category.index()] += energy_pj;
        self.bytes_moved += bytes;
    }

    /// Total energy across categories, in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy_pj.iter().sum()
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.total_energy_pj() * 1e-12
    }

    /// Latency in seconds.
    pub fn latency_s(&self) -> f64 {
        self.latency_ns * 1e-9
    }

    /// Average power in watts (energy / latency).
    ///
    /// Returns 0 for an empty run.
    pub fn average_power_w(&self) -> f64 {
        if self.latency_ns <= 0.0 {
            0.0
        } else {
            self.total_energy_j() / self.latency_s()
        }
    }

    /// Average memory bandwidth usage in GB/s (Figure 12 metric: bytes read
    /// and written divided by latency).
    pub fn average_bandwidth_gbs(&self) -> f64 {
        if self.latency_ns <= 0.0 {
            0.0
        } else {
            self.bytes_moved / self.latency_ns
        }
    }

    /// Fraction of time spent on computation (Section V-C utilization).
    pub fn compute_utilization(&self) -> f64 {
        if self.latency_ns <= 0.0 {
            return 0.0;
        }
        Category::ALL
            .iter()
            .filter(|c| c.is_compute())
            .map(|c| self.time_ns[c.index()])
            .sum::<f64>()
            / self.latency_ns
    }

    /// Fraction of time per category.
    pub fn time_fraction(&self, category: Category) -> f64 {
        if self.latency_ns <= 0.0 {
            0.0
        } else {
            self.time_ns[category.index()] / self.latency_ns
        }
    }
}

impl Add for SimStats {
    type Output = SimStats;
    fn add(mut self, rhs: SimStats) -> SimStats {
        self += rhs;
        self
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        self.latency_ns += rhs.latency_ns;
        self.bytes_moved += rhs.bytes_moved;
        for i in 0..4 {
            self.time_ns[i] += rhs.time_ns[i];
            self.energy_pj[i] += rhs.energy_pj[i];
        }
    }
}

/// Per-scope statistics (e.g., per Transformer layer kind) for the layer-wise
/// breakdown of Figure 11(b). Keys are caller-chosen labels.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScopedStats {
    scopes: BTreeMap<String, SimStats>,
}

impl ScopedStats {
    /// Empty scoped statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a phase under `scope`.
    ///
    /// Allocation-free when the scope has been seen before — the hot path
    /// for decode loops, which record millions of lumps across a handful
    /// of scope labels.
    pub fn record(
        &mut self,
        scope: &str,
        category: Category,
        latency_ns: f64,
        energy_pj: f64,
        bytes: f64,
    ) {
        self.entry_mut(scope).record(category, latency_ns, energy_pj, bytes);
    }

    /// The (created-if-absent) statistics entry for `scope`, cloning the
    /// label only on first sight.
    pub fn entry_mut(&mut self, scope: &str) -> &mut SimStats {
        if !self.scopes.contains_key(scope) {
            self.scopes.insert(scope.to_owned(), SimStats::default());
        }
        self.scopes.get_mut(scope).expect("entry just ensured")
    }

    /// Statistics for one scope, if any phases were recorded under it.
    pub fn get(&self, scope: &str) -> Option<&SimStats> {
        self.scopes.get(scope)
    }

    /// Iterate over `(scope, stats)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SimStats)> {
        self.scopes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of all scopes.
    pub fn total(&self) -> SimStats {
        self.scopes.values().copied().fold(SimStats::new(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_partitions_latency() {
        let mut s = SimStats::new();
        s.record(Category::DataMovement, 10.0, 100.0, 64.0);
        s.record(Category::Arithmetic, 30.0, 300.0, 0.0);
        s.record(Category::Reduction, 10.0, 50.0, 0.0);
        assert_eq!(s.latency_ns, 50.0);
        assert_eq!(s.time_ns.iter().sum::<f64>(), s.latency_ns);
        assert_eq!(s.total_energy_pj(), 450.0);
        assert!((s.compute_utilization() - 0.8).abs() < 1e-12);
        assert!((s.average_bandwidth_gbs() - 64.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn power_is_energy_over_time() {
        let mut s = SimStats::new();
        s.record(Category::Arithmetic, 1e9, 5e12, 0.0); // 1 s, 5 J
        assert!((s.average_power_w() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_dont_divide_by_zero() {
        let s = SimStats::new();
        assert_eq!(s.average_power_w(), 0.0);
        assert_eq!(s.average_bandwidth_gbs(), 0.0);
        assert_eq!(s.compute_utilization(), 0.0);
    }

    #[test]
    fn scoped_total_matches_sum() {
        let mut s = ScopedStats::new();
        s.record("fc", Category::Arithmetic, 5.0, 10.0, 1.0);
        s.record("attn", Category::DataMovement, 7.0, 20.0, 2.0);
        s.record("fc", Category::Reduction, 3.0, 5.0, 0.0);
        let t = s.total();
        assert_eq!(t.latency_ns, 15.0);
        assert_eq!(s.get("fc").unwrap().latency_ns, 8.0);
        assert!(s.get("nope").is_none());
    }
}
