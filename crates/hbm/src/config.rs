//! Top-level HBM system configuration (geometry + timing + energy + buses).

use crate::energy::EnergyParams;
use crate::geometry::HbmGeometry;
use crate::resource::{BusParams, ResourceMap};
use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};

/// Complete description of the memory system. [`Default`] is the Table I
/// 8-stack configuration evaluated in the paper.
///
/// # Example
///
/// ```
/// use transpim_hbm::config::HbmConfig;
///
/// let cfg = HbmConfig::builder().stacks(2).build();
/// assert_eq!(cfg.geometry.stacks, 2);
/// assert_eq!(cfg.geometry.capacity_bytes(), 16 << 30);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HbmConfig {
    /// Physical organization.
    pub geometry: HbmGeometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// DRAM + peripheral energy parameters.
    pub energy: EnergyParams,
    /// Bus and link bandwidths.
    pub bus: BusParams,
}

impl HbmConfig {
    /// Start building a configuration from the Table I defaults.
    pub fn builder() -> HbmConfigBuilder {
        HbmConfigBuilder { cfg: HbmConfig::default() }
    }

    /// Construct the resource map for this configuration.
    ///
    /// `ring_links` selects whether the TransPIM broadcast hardware is
    /// present (see [`ResourceMap`]).
    pub fn resource_map(&self, ring_links: bool) -> ResourceMap {
        ResourceMap::new(self.geometry, self.bus, ring_links)
    }

    /// Aggregated external bandwidth of the system in GB/s
    /// (`8 stacks × 256 GB/s = 2 TB/s` in Section V-C).
    pub fn aggregated_bandwidth_gbs(&self) -> f64 {
        f64::from(self.geometry.stacks)
            * f64::from(self.geometry.channels_per_stack)
            * self.bus.channel_gbs
    }
}

/// Builder for [`HbmConfig`] (see [`HbmConfig::builder`]).
#[derive(Debug, Clone)]
pub struct HbmConfigBuilder {
    cfg: HbmConfig,
}

impl HbmConfigBuilder {
    /// Set the number of HBM stacks.
    pub fn stacks(mut self, stacks: u32) -> Self {
        self.cfg.geometry.stacks = stacks;
        self
    }

    /// Replace the geometry wholesale.
    pub fn geometry(mut self, geometry: HbmGeometry) -> Self {
        self.cfg.geometry = geometry;
        self
    }

    /// Replace the timing parameters.
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.cfg.timing = timing;
        self
    }

    /// Replace the energy parameters.
    pub fn energy(mut self, energy: EnergyParams) -> Self {
        self.cfg.energy = energy;
        self
    }

    /// Replace the bus parameters.
    pub fn bus(mut self, bus: BusParams) -> Self {
        self.cfg.bus = bus;
        self
    }

    /// Finish building.
    pub fn build(self) -> HbmConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_system() {
        let cfg = HbmConfig::default();
        assert_eq!(cfg.geometry.total_banks(), 2048);
        assert_eq!(cfg.aggregated_bandwidth_gbs(), 2048.0); // 2 TB/s
    }

    #[test]
    fn builder_overrides_stacks() {
        let cfg = HbmConfig::builder().stacks(1).build();
        assert_eq!(cfg.geometry.total_banks(), 256);
    }
}
