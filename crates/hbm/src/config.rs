//! Top-level HBM system configuration (geometry + timing + energy + buses).

use crate::energy::EnergyParams;
use crate::geometry::HbmGeometry;
use crate::resource::{BusParams, ResourceMap};
use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed validation error for user-supplied configurations.
///
/// Public constructors return this instead of panicking, so front ends
/// (CLI flags, scenario files) can print a one-line diagnostic; internal
/// invariants on already-validated values stay as debug asserts.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A structural parameter that must be positive is zero or negative.
    NonPositive(&'static str),
    /// An index or coordinate is out of range for the geometry.
    OutOfRange(String),
    /// A field combination is unsupported.
    Invalid(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive(field) => {
                write!(f, "configuration field {field} must be positive")
            }
            ConfigError::OutOfRange(msg) | ConfigError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete description of the memory system. [`Default`] is the Table I
/// 8-stack configuration evaluated in the paper.
///
/// # Example
///
/// ```
/// use transpim_hbm::config::HbmConfig;
///
/// let cfg = HbmConfig::builder().stacks(2).build();
/// assert_eq!(cfg.geometry.stacks, 2);
/// assert_eq!(cfg.geometry.capacity_bytes(), 16 << 30);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HbmConfig {
    /// Physical organization.
    pub geometry: HbmGeometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// DRAM + peripheral energy parameters.
    pub energy: EnergyParams,
    /// Bus and link bandwidths.
    pub bus: BusParams,
}

impl HbmConfig {
    /// Start building a configuration from the Table I defaults.
    pub fn builder() -> HbmConfigBuilder {
        HbmConfigBuilder { cfg: HbmConfig::default() }
    }

    /// Construct the resource map for this configuration.
    ///
    /// `ring_links` selects whether the TransPIM broadcast hardware is
    /// present (see [`ResourceMap`]).
    pub fn resource_map(&self, ring_links: bool) -> ResourceMap {
        ResourceMap::new(self.geometry, self.bus, ring_links)
    }

    /// Aggregated external bandwidth of the system in GB/s
    /// (`8 stacks × 256 GB/s = 2 TB/s` in Section V-C).
    pub fn aggregated_bandwidth_gbs(&self) -> f64 {
        f64::from(self.geometry.stacks)
            * f64::from(self.geometry.channels_per_stack)
            * self.bus.channel_gbs
    }

    /// Validate the configuration for simulation.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the geometry has a zero structural dimension or
    /// a bus/timing rate is not positive and finite.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.geometry.validate()?;
        let rates = [
            ("bus.channel_gbs", self.bus.channel_gbs),
            ("bus.group_gbs", self.bus.group_gbs),
            ("bus.ring_link_gbs", self.bus.ring_link_gbs),
            ("bus.stack_gbs", self.bus.stack_gbs),
            ("bus.host_gbs", self.bus.host_gbs),
            ("timing.t_rc", self.timing.t_rc),
            ("timing.t_ccd_l", self.timing.t_ccd_l),
        ];
        for (name, value) in rates {
            if !(value.is_finite() && value > 0.0) {
                return Err(ConfigError::NonPositive(name));
            }
        }
        Ok(())
    }
}

/// Builder for [`HbmConfig`] (see [`HbmConfig::builder`]).
#[derive(Debug, Clone)]
pub struct HbmConfigBuilder {
    cfg: HbmConfig,
}

impl HbmConfigBuilder {
    /// Set the number of HBM stacks.
    pub fn stacks(mut self, stacks: u32) -> Self {
        self.cfg.geometry.stacks = stacks;
        self
    }

    /// Replace the geometry wholesale.
    pub fn geometry(mut self, geometry: HbmGeometry) -> Self {
        self.cfg.geometry = geometry;
        self
    }

    /// Replace the timing parameters.
    pub fn timing(mut self, timing: TimingParams) -> Self {
        self.cfg.timing = timing;
        self
    }

    /// Replace the energy parameters.
    pub fn energy(mut self, energy: EnergyParams) -> Self {
        self.cfg.energy = energy;
        self
    }

    /// Replace the bus parameters.
    pub fn bus(mut self, bus: BusParams) -> Self {
        self.cfg.bus = bus;
        self
    }

    /// Finish building without validation (Table I defaults are always
    /// valid; use [`Self::try_build`] for untrusted inputs).
    pub fn build(self) -> HbmConfig {
        self.cfg
    }

    /// Finish building, validating the result.
    ///
    /// # Errors
    ///
    /// See [`HbmConfig::validate`].
    pub fn try_build(self) -> Result<HbmConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_system() {
        let cfg = HbmConfig::default();
        assert_eq!(cfg.geometry.total_banks(), 2048);
        assert_eq!(cfg.aggregated_bandwidth_gbs(), 2048.0); // 2 TB/s
    }

    #[test]
    fn builder_overrides_stacks() {
        let cfg = HbmConfig::builder().stacks(1).build();
        assert_eq!(cfg.geometry.total_banks(), 256);
    }

    #[test]
    fn try_build_rejects_degenerate_configs() {
        assert!(HbmConfig::builder().try_build().is_ok());
        let err = HbmConfig::builder().stacks(0).try_build().expect_err("zero stacks");
        assert!(matches!(err, ConfigError::NonPositive("geometry.stacks")));
        let bad_bus = BusParams { ring_link_gbs: 0.0, ..BusParams::default() };
        let err = HbmConfig::builder().bus(bad_bus).try_build().expect_err("zero rate");
        assert!(err.to_string().contains("ring_link_gbs"));
    }
}
