//! HBM2 energy parameters (Table I of the paper) and derived per-operation
//! energies.
//!
//! The Table I constants follow the fine-grained-DRAM breakdown of
//! O'Connor et al. (MICRO'17): one fixed energy per row activation, plus
//! per-bit energies for moving data across the pre-global-sense-amp segment,
//! the post-GSA segment (bank I/O to channel), and the off-chip I/O.

use serde::{Deserialize, Serialize};

/// Energy parameters. Activation energy is per row activation (pJ); the
/// remaining three are per bit moved (pJ/bit). Defaults are Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one row activation (pJ): `e_ACT = 909`.
    pub e_act: f64,
    /// Per-bit energy of moving data from the cell array to the global sense
    /// amps (pJ/bit): `e_Pre-GSA = 1.51`.
    pub e_pre_gsa: f64,
    /// Per-bit energy from the GSA across the bank periphery to the channel
    /// (pJ/bit): `e_Post-GSA = 1.17`.
    pub e_post_gsa: f64,
    /// Per-bit off-chip / TSV I/O energy (pJ/bit): `e_I/O = 0.80`.
    pub e_io: f64,
    /// Energy of one ACU access — one 256-bit row-buffer chunk entering
    /// the adder trees (Table II: 0.384 pJ/op).
    pub e_acu: f64,
    /// Energy of one data-buffer / ring-broadcast buffer access — one
    /// 256-bit beat (Table II: 0.869 pJ/op).
    pub e_buffer: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            e_act: 909.0,
            e_pre_gsa: 1.51,
            e_post_gsa: 1.17,
            e_io: 0.80,
            e_acu: 0.384,
            e_buffer: 0.869,
        }
    }
}

impl EnergyParams {
    /// Energy of a column access that moves `bits` from an open row to the
    /// bank edge (pre-GSA + post-GSA segments).
    pub fn column_access(&self, bits: u64) -> f64 {
        bits as f64 * (self.e_pre_gsa + self.e_post_gsa)
    }

    /// Energy of reading `bits` from an open row into an in-bank consumer
    /// (ACU or data buffer): only the pre-GSA segment is traversed.
    pub fn local_column_access(&self, bits: u64) -> f64 {
        bits as f64 * self.e_pre_gsa
    }

    /// Energy of moving `bits` across a channel/bus segment off the bank
    /// (post-GSA + I/O).
    pub fn bus_transfer(&self, bits: u64) -> f64 {
        bits as f64 * (self.e_post_gsa + self.e_io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_energies() {
        let e = EnergyParams::default();
        assert!((e.column_access(256) - 256.0 * 2.68).abs() < 1e-9);
        assert!((e.local_column_access(256) - 256.0 * 1.51).abs() < 1e-9);
        assert!((e.bus_transfer(8) - 8.0 * 1.97).abs() < 1e-9);
    }
}
