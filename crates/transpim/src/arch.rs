//! The memory-based architectures compared in the paper's evaluation
//! (Section V-A2): TransPIM and its no-buffer ablation, the PIM-only
//! baseline, and the Newton-like near-bank-processing baseline.

use serde::{Deserialize, Serialize};
use transpim_acu::adder_tree::AcuParams;
use transpim_hbm::config::{ConfigError, HbmConfig};
use transpim_pim::cost::PimCostParams;

/// Which hardware the memory system has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// Full TransPIM: in-subarray bit-serial PIM for point-wise ops, ACUs
    /// for reductions/Softmax, data buffers + ring broadcast units for
    /// communication ("Buf" in the paper's notation).
    TransPim,
    /// TransPIM with the broadcast units and data buffers disabled ("NB"):
    /// same compute, original HBM datapath.
    TransPimNb,
    /// Original PIM: bit-serial in-situ operations only — reductions fall
    /// back to in-array shift-add trees, Softmax reciprocals to iterative
    /// PIM arithmetic, communication to the shared datapath.
    OriginalPim,
    /// Near-bank processing (Newton-like): all arithmetic in near-memory
    /// vector units at the channel periphery; the broadcast buffer is
    /// enabled as in the paper ("for a fair comparison").
    Nbp,
}

impl ArchKind {
    /// All four architectures, in the paper's comparison order.
    pub const ALL: [ArchKind; 4] =
        [ArchKind::OriginalPim, ArchKind::Nbp, ArchKind::TransPimNb, ArchKind::TransPim];

    /// Display name matching the paper's system labels.
    pub fn label(self) -> &'static str {
        match self {
            ArchKind::TransPim => "TransPIM",
            ArchKind::TransPimNb => "TransPIM-NB",
            ArchKind::OriginalPim => "OriginalPIM",
            ArchKind::Nbp => "NBP",
        }
    }

    /// Whether point-wise arithmetic runs inside the subarrays (PIM) as
    /// opposed to near-bank units.
    pub fn computes_in_memory(self) -> bool {
        !matches!(self, ArchKind::Nbp)
    }

    /// Whether ACUs (adder trees + dividers) are present.
    pub fn has_acu(self) -> bool {
        matches!(self, ArchKind::TransPim | ArchKind::TransPimNb)
    }

    /// Whether the data buffers / ring broadcast units are present.
    pub fn has_buffers(self) -> bool {
        matches!(self, ArchKind::TransPim | ArchKind::Nbp)
    }
}

impl std::fmt::Display for ArchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full architecture configuration: kind + memory system + unit parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Architecture kind.
    pub kind: ArchKind,
    /// Memory system (Table I defaults).
    pub hbm: HbmConfig,
    /// ACU parameters (`P_sub`, `P_add`, tree width, clock).
    pub acu: AcuParams,
    /// In-subarray PIM parameters.
    pub pim: PimCostParams,
    /// Overlap ring-broadcast steps with the block compute they feed
    /// (Section III-B2 interleaves "ring broadcast and compute steps";
    /// the barrier model prices them sequentially — this flag prices the
    /// pipelined schedule, `max(transfer, compute)` per round).
    pub pipelined_ring: bool,
}

impl ArchConfig {
    /// Default (Table I) configuration of the given kind.
    pub fn new(kind: ArchKind) -> Self {
        Self {
            kind,
            hbm: HbmConfig::default(),
            acu: AcuParams::default(),
            pim: PimCostParams::default(),
            pipelined_ring: false,
        }
    }

    /// Enable ring/compute pipelining.
    pub fn with_pipelined_ring(mut self, on: bool) -> Self {
        self.pipelined_ring = on;
        self
    }

    /// Same architecture with a different stack count (Figure 15).
    pub fn with_stacks(mut self, stacks: u32) -> Self {
        self.hbm.geometry.stacks = stacks;
        self
    }

    /// Same architecture with different ACU design knobs (Figure 13).
    pub fn with_acu(mut self, p_sub: u32, p_add: u32) -> Self {
        self.acu.p_sub = p_sub;
        self.acu.p_add = p_add;
        self.pim.p_sub = p_sub;
        self
    }

    /// System label in the paper's "dataflow-architecture" notation.
    pub fn system_label(&self, dataflow: &str) -> String {
        format!("{dataflow}-{}", self.kind.label())
    }

    /// Validate the configuration, returning it for chaining. User-facing
    /// entry points (CLI, scenario files) call this instead of letting a
    /// zero dimension panic deep inside pricing.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending field: zero geometry
    /// dimensions, non-positive bus rates or timings, or zero ACU design
    /// knobs.
    pub fn validated(self) -> Result<Self, ConfigError> {
        self.hbm.validate()?;
        for (field, v) in [
            ("acu.p_sub", self.acu.p_sub),
            ("acu.p_add", self.acu.p_add),
            ("acu.tree_width", self.acu.tree_width),
            ("pim.p_sub", self.pim.p_sub),
        ] {
            if v == 0 {
                return Err(ConfigError::NonPositive(field));
            }
        }
        if !(self.acu.clock_ghz > 0.0 && self.acu.clock_ghz.is_finite()) {
            return Err(ConfigError::NonPositive("acu.clock_ghz"));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_matches_paper() {
        assert!(ArchKind::TransPim.has_acu() && ArchKind::TransPim.has_buffers());
        assert!(ArchKind::TransPimNb.has_acu() && !ArchKind::TransPimNb.has_buffers());
        assert!(!ArchKind::OriginalPim.has_acu() && !ArchKind::OriginalPim.has_buffers());
        assert!(!ArchKind::Nbp.has_acu() && ArchKind::Nbp.has_buffers());
        assert!(!ArchKind::Nbp.computes_in_memory());
    }

    #[test]
    fn labels_and_builders() {
        let a = ArchConfig::new(ArchKind::TransPim).with_stacks(2).with_acu(8, 2);
        assert_eq!(a.hbm.geometry.stacks, 2);
        assert_eq!(a.acu.p_sub, 8);
        assert_eq!(a.pim.p_sub, 8);
        assert_eq!(a.system_label("Token"), "Token-TransPIM");
    }

    #[test]
    fn validation_names_the_offending_field() {
        assert!(ArchConfig::new(ArchKind::TransPim).validated().is_ok());
        let bad = ArchConfig::new(ArchKind::TransPim).with_stacks(0);
        let e = bad.validated().expect_err("zero stacks");
        assert!(e.to_string().contains("geometry.stacks"), "{e}");
        let mut bad = ArchConfig::new(ArchKind::TransPim);
        bad.acu.p_add = 0;
        let e = bad.validated().expect_err("zero p_add");
        assert!(e.to_string().contains("acu.p_add"), "{e}");
    }
}
