//! End-to-end functional verification: the sharded token dataflow must
//! compute what the monolithic reference Transformer computes.
//!
//! The timing simulator prices work; *this* module proves the dataflow
//! being priced is semantically valid — sharding, ring-ordered block
//! assembly, balanced cache placement, and tree-reduced partial sums all
//! preserve the model's output (up to floating-point reassociation in the
//! reduction trees).

use serde::{Deserialize, Serialize};
use transpim_dataflow::functional::{decoder_layer_step_sharded, encoder_layer_sharded, ShardedKv};
use transpim_transformer::layers::{CrossContext, KvCache};
use transpim_transformer::matrix::Matrix;
use transpim_transformer::model::{ModelConfig, ModelWeights, ReferenceModel};
use transpim_transformer::softmax::SoftmaxKind;

/// Maximum element-wise deviations between the sharded execution and the
/// reference, for the encoder stack and the decoded tokens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifyResult {
    /// Max |Δ| over the encoder stack output.
    pub encoder_max_diff: f32,
    /// Max |Δ| over all decoded token outputs (0 when nothing is decoded).
    pub decoder_max_diff: f32,
    /// Scale of the reference output (for relative interpretation).
    pub reference_scale: f32,
}

impl VerifyResult {
    /// Whether both deviations are within `tol` (absolute, on O(1)-scaled
    /// activations).
    pub fn within(&self, tol: f32) -> bool {
        self.encoder_max_diff <= tol && self.decoder_max_diff <= tol
    }
}

/// Run `seq_len` tokens through the encoder and `decode_steps` through the
/// decoder, both monolithically and shard-wise over `n_banks` banks, and
/// report the deviations.
///
/// # Panics
///
/// Panics if the model has no encoder layers and no decoder layers.
pub fn verify_token_dataflow(
    cfg: &ModelConfig,
    weights: &ModelWeights,
    seq_len: usize,
    decode_steps: usize,
    n_banks: usize,
    kind: SoftmaxKind,
) -> VerifyResult {
    assert!(cfg.encoder_layers > 0 || cfg.decoder_layers > 0, "model has no layers to verify");
    let input = Matrix::from_fn(seq_len, cfg.d_model, |r, c| {
        (((r * 131 + c * 17) % 97) as f32 / 97.0 - 0.5) * 1.2
    });
    let reference = ReferenceModel::new(cfg, weights, kind);

    // Encoder: reference vs sharded, layer by layer through the stack.
    let ref_enc = reference.encode(&input);
    let mut sharded = input.clone();
    for layer in &weights.encoder {
        sharded = encoder_layer_sharded(&sharded, layer, cfg.heads, kind, n_banks);
    }
    let encoder_max_diff = ref_enc.max_abs_diff(&sharded);

    // Decoder: reference KV-cache loop vs distributed shards + trees.
    let mut decoder_max_diff = 0.0f32;
    if cfg.decoder_layers > 0 && decode_steps > 0 {
        let start = Matrix::from_fn(1, cfg.d_model, |_, c| ((c as f32) * 0.13).sin() * 0.5);
        let enc_ctx = (cfg.encoder_layers > 0).then_some(&ref_enc);
        let ref_dec = reference.decode(&start, enc_ctx, decode_steps);

        // Sharded decoder state.
        let mut self_kvs: Vec<ShardedKv> =
            weights.decoder.iter().map(|_| ShardedKv::empty(n_banks, cfg.d_model)).collect();
        let cross_kvs: Vec<Option<ShardedKv>> = weights
            .decoder
            .iter()
            .map(|l| match (&l.cross_attn, enc_ctx) {
                (Some(w), Some(enc)) => {
                    let ctx = CrossContext::from_encoder_output(enc, w);
                    Some(ShardedKv::from_context(&ctx.k, &ctx.v, n_banks))
                }
                _ => None,
            })
            .collect();
        // Decoder-only models prefill the context into the sharded caches.
        if cfg.encoder_layers == 0 {
            prefill_decoder_only(cfg, weights, &input, &mut self_kvs, kind);
        }
        let mut x = start.clone();
        let mut outs = Vec::with_capacity(decode_steps);
        for _ in 0..decode_steps {
            for (i, layer) in weights.decoder.iter().enumerate() {
                x = decoder_layer_step_sharded(
                    &x,
                    layer,
                    &mut self_kvs[i],
                    cross_kvs[i].as_ref(),
                    cfg.heads,
                    kind,
                );
            }
            outs.push(x.clone());
        }
        let sharded_dec = Matrix::vcat(&outs);
        // The reference decoder for decoder-only models does not see the
        // prefix in this harness, so only compare when shapes agree.
        if cfg.encoder_layers > 0 {
            decoder_max_diff = ref_dec.max_abs_diff(&sharded_dec);
        } else {
            // Compare against a reference that prefilled the same prefix.
            let ref_dec =
                reference_decode_with_prefix(cfg, weights, &input, &start, decode_steps, kind);
            decoder_max_diff = ref_dec.max_abs_diff(&sharded_dec);
        }
    }

    VerifyResult { encoder_max_diff, decoder_max_diff, reference_scale: ref_enc.max_abs() }
}

/// Prefill a decoder-only model's sharded caches with the context tokens
/// (each context token is run through the stack like a decode step whose
/// output is discarded).
fn prefill_decoder_only(
    cfg: &ModelConfig,
    weights: &ModelWeights,
    input: &Matrix,
    self_kvs: &mut [ShardedKv],
    kind: SoftmaxKind,
) {
    for t in 0..input.rows() {
        let mut x = input.slice_rows(t, t + 1);
        for (i, layer) in weights.decoder.iter().enumerate() {
            x = decoder_layer_step_sharded(&x, layer, &mut self_kvs[i], None, cfg.heads, kind);
        }
    }
}

/// Reference decoder that first consumes `prefix` token by token.
fn reference_decode_with_prefix(
    cfg: &ModelConfig,
    weights: &ModelWeights,
    prefix: &Matrix,
    start: &Matrix,
    steps: usize,
    kind: SoftmaxKind,
) -> Matrix {
    let mut caches: Vec<KvCache> = weights.decoder.iter().map(|_| KvCache::new()).collect();
    let feed = |x: &Matrix, caches: &mut Vec<KvCache>| {
        let mut x = x.clone();
        for (i, layer) in weights.decoder.iter().enumerate() {
            x = transpim_transformer::layers::decoder_layer_step(
                &x,
                layer,
                &mut caches[i],
                None,
                cfg.heads,
                kind,
            );
        }
        x
    };
    for t in 0..prefix.rows() {
        let _ = feed(&prefix.slice_rows(t, t + 1), &mut caches);
    }
    let mut x = start.clone();
    let mut outs = Vec::with_capacity(steps);
    for _ in 0..steps {
        x = feed(&x, &mut caches);
        outs.push(x.clone());
    }
    Matrix::vcat(&outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_encoder_decoder_verifies() {
        let cfg = ModelConfig::tiny_test();
        let w = ModelWeights::random(&cfg, 3);
        for kind in [SoftmaxKind::Exact, SoftmaxKind::HardwareTaylor] {
            for banks in [1usize, 2, 3, 5] {
                let r = verify_token_dataflow(&cfg, &w, 7, 3, banks, kind);
                assert!(
                    r.within(2e-4),
                    "banks={banks} kind={kind:?}: enc {} dec {}",
                    r.encoder_max_diff,
                    r.decoder_max_diff
                );
            }
        }
    }

    #[test]
    fn decoder_only_verifies() {
        let mut cfg = ModelConfig::tiny_test();
        cfg.encoder_layers = 0;
        cfg.cross_attention = false;
        let w = ModelWeights::random(&cfg, 4);
        let r = verify_token_dataflow(&cfg, &w, 5, 4, 2, SoftmaxKind::Exact);
        assert!(r.decoder_max_diff < 2e-4, "dec diff {}", r.decoder_max_diff);
    }

    #[test]
    fn more_banks_than_tokens_still_verifies() {
        let cfg = ModelConfig::tiny_test();
        let w = ModelWeights::random(&cfg, 5);
        let r = verify_token_dataflow(&cfg, &w, 3, 2, 16, SoftmaxKind::Exact);
        assert!(r.within(2e-4), "enc {} dec {}", r.encoder_max_diff, r.decoder_max_diff);
    }
}
