//! Calibration constants.
//!
//! Everything in the simulator that is *not* fixed by the paper's Table I
//! (timing/energy), Table II (area/power), or the architecture text lives
//! here, each with its provenance and the paper observable it was
//! calibrated against. EXPERIMENTS.md records the resulting
//! paper-vs-measured factors.

/// Multiplier on loads/shuffles into PIM architectures, covering
/// bit-serial layout reorganization: data arriving row-major must be
/// re-laid column-wise (bit-transposed) before in-situ ops can touch it.
/// The dominant serialization (row-cycle-bound streaming on the unbuffered
/// datapath) is modeled structurally in `exec::Executor::new`; this factor
/// covers only the residual transpose passes. Calibrated against
/// Figure 3(a)'s layer-based movement share.
pub const LAYOUT_REORG_OVERHEAD: f64 = 1.5;

/// Near-bank processing (NBP) vector unit: lanes per unit. Newton-style
/// units multiply one DQ-width (256 b = 16×16 b) operand slice per beat.
pub const NBP_LANES: u32 = 16;

/// NBP unit clock in GHz, paced by the column-access interval
/// (`t_CCD_L = 4 ns` → 0.25 GHz effective beat rate).
pub const NBP_CLOCK_GHZ: f64 = 0.25;

/// NBP units per channel. The paper's NBP baseline has markedly lower
/// parallelism than PIM ("the throughput is limited by the number of NMC
/// processing elements as well as the bandwidth of the data link",
/// Section II-B); one unit at each channel's periphery, fed over the
/// shared channel datapath, reproduces the reported PIM-vs-NBP arithmetic
/// gap (paper: 13.2×) and reduction gap (56.1×) within small factors.
pub const NBP_UNITS_PER_CHANNEL: u32 = 1;

/// NBP per-element logic energy in pJ (multiply-accumulate at 16 b in the
/// near-bank unit), on top of the operand column-access energy. Chosen so
/// NBP and TransPIM land within a few percent of each other in GOP/J, as
/// Section V-B reports ("TransPIM is not more energy-efficient than the
/// NBP baseline — around 0.2% less").
pub const NBP_LOGIC_PJ_PER_OP: f64 = 2.0;

/// Pipeline restart cost (ns) between consecutive vectors streamed through
/// the NBP adder tree.
pub const NBP_VECTOR_RESTART_NS: f64 = 4.0;

/// Iterations of PIM Newton–Raphson reciprocal on architectures without
/// the ACU divider (each iteration: two multiplies and one subtract at
/// Softmax width).
pub const PIM_RECIP_ITERATIONS: u32 = 3;

/// GPU baseline (RTX 2080 Ti, TF2 + XLA as in Section V-A2) roofline
/// constants — see `transpim-baselines::gpu` for the model. These are the
/// weakest-provenance constants in the reproduction: the paper measured a
/// real TF2 stack whose generative-decoding path is far from roofline.
pub mod gpu {
    /// Peak fp32 throughput of the RTX 2080 Ti (TFLOP/s).
    pub const PEAK_TFLOPS: f64 = 13.45;
    /// Peak memory bandwidth (GB/s).
    pub const PEAK_BW_GBS: f64 = 616.0;
    /// Sustained matmul efficiency of the TF2 fp32 stack on these shapes
    /// (non-fused attention, small batch): calibrated against the paper's
    /// 22.1–114.9× end-to-end speedups.
    pub const MATMUL_EFFICIENCY: f64 = 0.05;
    /// Sustained bandwidth efficiency for memory-bound ops.
    pub const MEM_EFFICIENCY: f64 = 0.55;
    /// Fixed overhead per decoder step (kernel launches, host
    /// synchronization, beam bookkeeping) in microseconds. TF2 seq2seq
    /// decoding measures 10²-scale per-step latencies; this constant
    /// dominates the generative workloads exactly as the paper's
    /// GPU baselines do.
    pub const DECODE_STEP_OVERHEAD_US: f64 = 10_000.0;
    /// Fixed overhead per encoder layer invocation (µs).
    pub const LAYER_OVERHEAD_US: f64 = 50.0;
    /// Board power under load (W), for GOP/J comparisons.
    pub const POWER_W: f64 = 250.0;
}

/// TPUv3 single-board constants (Section V-A2 uses one board, 8 cores).
pub mod tpu {
    /// Peak bf16 throughput (TFLOP/s) of a TPUv3 board.
    pub const PEAK_TFLOPS: f64 = 420.0;
    /// HBM bandwidth (GB/s per board).
    pub const PEAK_BW_GBS: f64 = 900.0;
    /// Sustained matmul efficiency at these batch sizes. TPUs need large
    /// batches to fill the MXUs; the paper's TPU is only ~2.5× faster than
    /// its GPU on average (22.1/8.7), so the sustained fraction is small.
    pub const MATMUL_EFFICIENCY: f64 = 0.015;
    /// Bandwidth efficiency.
    pub const MEM_EFFICIENCY: f64 = 0.5;
    /// Per-decoder-step overhead (µs).
    pub const DECODE_STEP_OVERHEAD_US: f64 = 8_000.0;
    /// Per-layer overhead (µs).
    pub const LAYER_OVERHEAD_US: f64 = 40.0;
    /// Board power (W).
    pub const POWER_W: f64 = 200.0;
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)] // sanity-pin the calibration constants
    fn constants_are_sane() {
        assert!(super::LAYOUT_REORG_OVERHEAD >= 1.0);
        assert!(super::gpu::MATMUL_EFFICIENCY < 1.0);
        assert!(super::tpu::PEAK_TFLOPS > super::gpu::PEAK_TFLOPS);
    }
}
