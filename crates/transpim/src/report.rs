//! Simulation reports: everything the paper's evaluation plots.

use crate::arch::ArchKind;
use serde::{Deserialize, Serialize};
use transpim_fault::FaultStats;
use transpim_hbm::stats::{Category, ScopedStats, SimStats};

/// Which dataflow a simulation used (the paper's "Token-"/"Layer-" prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataflowKind {
    /// Token-based sharding (the paper's contribution).
    Token,
    /// Layer-based baseline.
    Layer,
}

impl DataflowKind {
    /// Both dataflows, layer first (baseline order).
    pub const ALL: [DataflowKind; 2] = [DataflowKind::Layer, DataflowKind::Token];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DataflowKind::Token => "Token",
            DataflowKind::Layer => "Layer",
        }
    }
}

impl std::fmt::Display for DataflowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of simulating one workload on one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// "Dataflow-Architecture" label (e.g. `Token-TransPIM`).
    pub system: String,
    /// Architecture kind.
    pub arch: ArchKind,
    /// Dataflow kind.
    pub dataflow: DataflowKind,
    /// Workload name.
    pub workload: String,
    /// Global statistics.
    pub stats: SimStats,
    /// Per-scope (layer-kind) statistics.
    pub scoped: ScopedStats,
    /// Arithmetic operations in the workload (2 × MACs).
    pub total_ops: u64,
    /// Sequences per batch.
    pub batch: usize,
    /// Degraded-mode fault accounting — present only for runs that carried
    /// a non-empty fault scenario, so fault-free reports serialize
    /// byte-identically to reports from before the fault subsystem existed.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub faults: Option<FaultStats>,
}

impl SimReport {
    /// Batch latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.stats.latency_ns * 1e-6
    }

    /// Per-sequence latency in milliseconds.
    pub fn latency_per_seq_ms(&self) -> f64 {
        self.latency_ms() / self.batch.max(1) as f64
    }

    /// Achieved throughput in GOP/s.
    pub fn throughput_gops(&self) -> f64 {
        if self.stats.latency_ns <= 0.0 {
            return 0.0;
        }
        self.total_ops as f64 / self.stats.latency_ns
    }

    /// Energy efficiency in GOP/J.
    pub fn gop_per_joule(&self) -> f64 {
        let j = self.stats.total_energy_j();
        if j <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 * 1e-9 / j
        }
    }

    /// Decode throughput in generated tokens per second, given how many
    /// tokens this run generated (`decode_len × batch`).
    ///
    /// Taken as a parameter rather than stored: report documents must
    /// depend only on the priced statistics, never on how the program was
    /// compiled (compressed and unrolled compilations of one workload
    /// serialize to byte-identical reports).
    pub fn decode_tokens_per_s(&self, decode_tokens: u64) -> f64 {
        if self.stats.latency_ns <= 0.0 {
            return 0.0;
        }
        decode_tokens as f64 * 1e9 / self.stats.latency_ns
    }

    /// Average power in watts.
    pub fn average_power_w(&self) -> f64 {
        self.stats.average_power_w()
    }

    /// Average memory bandwidth usage in GB/s (Figure 12 metric).
    pub fn average_bandwidth_gbs(&self) -> f64 {
        self.stats.average_bandwidth_gbs()
    }

    /// Compute utilization (Section V-C metric).
    pub fn utilization(&self) -> f64 {
        self.stats.compute_utilization()
    }

    /// Fraction of time in a breakdown category.
    pub fn fraction(&self, category: Category) -> f64 {
        self.stats.time_fraction(category)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<10} lat {:>10.3} ms  {:>8.1} GOP/s  {:>8.1} GOP/J  {:>6.1} W  bw {:>7.1} GB/s  util {:>5.1}%  [move {:>4.1}% arith {:>4.1}% red {:>4.1}% other {:>4.1}%]",
            self.system,
            self.workload,
            self.latency_ms(),
            self.throughput_gops(),
            self.gop_per_joule(),
            self.average_power_w(),
            self.average_bandwidth_gbs(),
            100.0 * self.utilization(),
            100.0 * self.fraction(Category::DataMovement),
            100.0 * self.fraction(Category::Arithmetic),
            100.0 * self.fraction(Category::Reduction),
            100.0 * self.fraction(Category::Other),
        )
    }

    /// Serialize to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut stats = SimStats::new();
        stats.record(Category::Arithmetic, 1e6, 2e9, 0.0); // 1 ms, 2 mJ
        stats.record(Category::DataMovement, 1e6, 1e9, 1e6);
        SimReport {
            system: "Token-TransPIM".into(),
            arch: ArchKind::TransPim,
            dataflow: DataflowKind::Token,
            workload: "test".into(),
            stats,
            scoped: ScopedStats::new(),
            total_ops: 4_000_000_000,
            batch: 2,
            faults: None,
        }
    }

    #[test]
    fn fault_free_reports_never_serialize_the_faults_field() {
        // Wire-shape pin: `faults: None` must leave the JSON identical to
        // pre-fault-subsystem reports, and a populated field round-trips.
        let r = report();
        let j = r.to_json().unwrap();
        assert!(!j.contains("faults"));
        let mut with = report();
        with.faults = Some(FaultStats::default());
        let j = with.to_json().unwrap();
        assert!(j.contains("\"faults\""));
        let back: SimReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back, with);
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.latency_ms() - 2.0).abs() < 1e-12);
        assert!((r.latency_per_seq_ms() - 1.0).abs() < 1e-12);
        assert!((r.throughput_gops() - 2000.0).abs() < 1e-9);
        assert!((r.gop_per_joule() - 4.0 / 0.003).abs() < 1e-6);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        // 2 ms for 128 generated tokens → 64k tokens/s.
        assert!((r.decode_tokens_per_s(128) - 64_000.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip() {
        let r = report();
        let j = r.to_json().unwrap();
        let back: SimReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report().summary();
        assert!(s.contains("Token-TransPIM") && s.contains("GOP/s"));
    }
}
