//! Typed simulation errors.
//!
//! The simulator never panics on user input or injected faults: malformed
//! configurations and scenarios, and faults that exceed every degradation
//! policy, surface as a [`SimError`] the caller can print or match on.

use std::fmt;

use transpim_fault::FaultError;
use transpim_hbm::config::ConfigError;

/// Error surfaced by a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An injected fault that no degradation policy or ECC scheme can
    /// absorb — e.g. an unprotected transient flip, every bank failed, or
    /// a whole bank's subarrays stuck.
    Uncorrectable {
        /// What went wrong.
        fault: String,
        /// Simulated time at which the fault surfaced, when known.
        at_ns: Option<f64>,
    },
    /// The fault scenario itself is malformed or references hardware the
    /// target geometry does not have.
    Scenario(String),
    /// The architecture or memory configuration failed validation.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Uncorrectable { fault, at_ns: Some(t) } => {
                write!(f, "uncorrectable fault at t={t:.1}ns: {fault}")
            }
            SimError::Uncorrectable { fault, at_ns: None } => {
                write!(f, "uncorrectable fault: {fault}")
            }
            SimError::Scenario(msg) => write!(f, "invalid fault scenario: {msg}"),
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::Invalid(msg) => SimError::Scenario(msg),
            FaultError::Uncorrectable(msg) => SimError::Uncorrectable { fault: msg, at_ns: None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_typed() {
        let e = SimError::from(FaultError::Uncorrectable("all banks failed".into()));
        assert!(matches!(e, SimError::Uncorrectable { .. }));
        assert_eq!(e.to_string(), "uncorrectable fault: all banks failed");
        let e = SimError::from(FaultError::Invalid("bank 9000 out of range".into()));
        assert!(e.to_string().contains("invalid fault scenario"));
        let e = SimError::from(ConfigError::NonPositive("geometry.stacks"));
        assert!(e.to_string().contains("geometry.stacks"));
        assert!(!e.to_string().contains('\n'));
    }
}
