//! One-call simulation of a workload × dataflow × architecture combination.

use crate::arch::ArchConfig;
use crate::error::SimError;
use crate::exec::Executor;
use crate::report::{DataflowKind, SimReport};
use transpim_dataflow::ir::Program;
use transpim_dataflow::{layer_flow, token_flow};
use transpim_fault::{FaultScenario, FaultSession, SystemInfo};
use transpim_obs::{ChromeTraceSink, ObsError, SinkHandle};
use transpim_transformer::workload::Workload;

/// A configured memory-based accelerator.
///
/// # Example
///
/// ```
/// use transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};
/// use transpim_transformer::workload::Workload;
///
/// let mut w = Workload::imdb();
/// w.model.encoder_layers = 1; // keep the doctest fast
/// let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
/// let token = acc.simulate(&w, DataflowKind::Token);
/// let layer = acc.simulate(&w, DataflowKind::Layer);
/// assert!(token.latency_ms() < layer.latency_ms());
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    arch: ArchConfig,
}

impl Accelerator {
    /// Build an accelerator around an architecture configuration.
    pub fn new(arch: ArchConfig) -> Self {
        Self { arch }
    }

    /// The architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Compile `workload` under `dataflow` into a dataflow program for this
    /// architecture's bank count — without pricing it. The returned program
    /// is loop-compressed: decode iterations arrive as
    /// [`transpim_dataflow::ir::Step::Repeat`] steps, so its step count is
    /// O(layers), not O(decode_len × layers). Use
    /// [`transpim_dataflow::ir::Program::unroll`] for the explicit sequence.
    pub fn compile(&self, workload: &Workload, dataflow: DataflowKind) -> Program {
        let banks = self.arch.hbm.geometry.total_banks();
        match dataflow {
            DataflowKind::Token => token_flow::compile(workload, banks),
            DataflowKind::Layer => layer_flow::compile(workload, banks),
        }
    }

    /// Compile `workload` under `dataflow` and simulate it.
    pub fn simulate(&self, workload: &Workload, dataflow: DataflowKind) -> SimReport {
        self.simulate_with_sink(workload, dataflow, SinkHandle::null())
    }

    /// Like [`Accelerator::simulate`], with an observability sink attached
    /// to the execution: phase spans, resource occupancy counters and
    /// per-hop ring events stream into `sink` as the program runs. With a
    /// [`SinkHandle::null`] sink this is exactly [`Accelerator::simulate`].
    pub fn simulate_with_sink(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
        sink: SinkHandle,
    ) -> SimReport {
        let mut exec = Executor::new(self.arch.clone());
        self.simulate_on(&mut exec, workload, dataflow, sink)
    }

    /// Like [`Accelerator::simulate_with_sink`], running on a caller-owned
    /// [`Executor`] so its ring/broadcast/tree schedule caches amortize
    /// across simulations of the same architecture (e.g. a sweep over
    /// sequence lengths). Priced results are identical to a fresh executor
    /// — the caches are pure memoization — but trace *verbosity* is not:
    /// the executor collapses repeated per-hop detail, so reuse an
    /// executor across runs only when `sink` is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `exec` was built from a different [`ArchConfig`] than
    /// this accelerator (cached schedules would be priced for the wrong
    /// geometry).
    pub fn simulate_on(
        &self,
        exec: &mut Executor,
        workload: &Workload,
        dataflow: DataflowKind,
        sink: SinkHandle,
    ) -> SimReport {
        assert!(
            exec.prices_arch(&self.arch),
            "executor architecture does not match accelerator architecture"
        );
        let program = self.compile(workload, dataflow);
        let (stats, scoped) = exec.run_with_sink(&program, sink);
        SimReport {
            system: self.arch.system_label(dataflow.label()),
            arch: self.arch.kind,
            dataflow,
            workload: workload.name.clone(),
            stats,
            scoped,
            total_ops: workload.total_ops(),
            batch: workload.batch,
            faults: None,
        }
    }

    /// Simulate under an injected fault scenario with graceful
    /// degradation: tokens re-shard around failed banks, ring traffic
    /// re-routes around dead neighbor links over the shared channel bus
    /// (Figure 9's 8T path), stuck bit-planes serialize the surviving
    /// subarrays, broken ACU dividers fall back to in-array
    /// Newton–Raphson, and transient flips are absorbed by the scenario's
    /// ECC scheme. The report carries the fault accounting in
    /// [`SimReport::faults`].
    ///
    /// An *empty* scenario produces a report byte-identical to
    /// [`Accelerator::simulate`].
    ///
    /// # Errors
    ///
    /// [`SimError::Scenario`] when the scenario references hardware the
    /// geometry does not have, [`SimError::Uncorrectable`] when a fault
    /// exceeds every degradation policy (no banks survive, a bank's
    /// subarrays all stuck, or an unprotected transient flip).
    pub fn simulate_degraded(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
        scenario: &FaultScenario,
    ) -> Result<SimReport, SimError> {
        self.simulate_degraded_with_sink(workload, dataflow, scenario, SinkHandle::null())
    }

    /// [`Accelerator::simulate_degraded`] with an observability sink:
    /// fault events (ECC corrections, parity retries) appear as instants
    /// on a dedicated trace track, named lazily so fault-free traces stay
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// See [`Accelerator::simulate_degraded`].
    pub fn simulate_degraded_with_sink(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
        scenario: &FaultScenario,
        sink: SinkHandle,
    ) -> Result<SimReport, SimError> {
        let g = &self.arch.hbm.geometry;
        let info = SystemInfo {
            total_banks: g.total_banks(),
            total_groups: g.total_groups(),
            subarrays_per_bank: g.subarrays_per_bank,
        };
        let mut session = FaultSession::new(scenario, info)?;
        // Re-shard over the surviving pool (session validation guarantees
        // at least one healthy bank). The compiled program addresses the
        // healthy banks renumbered contiguously in ring order.
        let healthy = g.total_banks() - session.failed_bank_count();
        let program = match dataflow {
            DataflowKind::Token => token_flow::compile(workload, healthy),
            DataflowKind::Layer => layer_flow::compile(workload, healthy),
        };
        let mut exec = Executor::new(self.arch.clone());
        exec.apply_ring_faults(&session);
        let (stats, scoped) = exec.run_degraded_with_sink(&program, &mut session, sink)?;
        Ok(SimReport {
            system: self.arch.system_label(dataflow.label()),
            arch: self.arch.kind,
            dataflow,
            workload: workload.name.clone(),
            stats,
            scoped,
            total_ops: workload.total_ops(),
            batch: workload.batch,
            faults: if scenario.is_empty() { None } else { Some(session.stats()) },
        })
    }

    /// Like [`Accelerator::simulate`], but additionally returns a
    /// Chrome-tracing JSON document of the phase timeline (loadable in
    /// `chrome://tracing` or Perfetto). Serialization failures are
    /// propagated, not swallowed.
    pub fn simulate_traced(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
    ) -> Result<(SimReport, String), ObsError> {
        let chrome = ChromeTraceSink::shared();
        let report =
            self.simulate_with_sink(workload, dataflow, SinkHandle::from_shared(chrome.clone()));
        let trace = chrome.borrow().to_json_string()?;
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchKind;

    #[test]
    fn simulate_produces_labeled_report() {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 1;
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPimNb));
        let r = acc.simulate(&w, DataflowKind::Layer);
        assert_eq!(r.system, "Layer-TransPIM-NB");
        assert_eq!(r.workload, "IMDB");
        assert!(r.latency_ms() > 0.0);
        assert!(r.scoped.get("enc.fc").is_some());
    }

    #[test]
    fn executor_reuse_never_changes_priced_results() {
        // One executor reused across sequence lengths and both dataflows
        // (warm ring/broadcast/tree schedule caches) must price exactly
        // what a fresh executor prices for every cell.
        let arch = ArchConfig::new(ArchKind::TransPim);
        let acc = Accelerator::new(arch.clone());
        let mut shared = crate::exec::Executor::new(arch);
        for seq_len in [96usize, 192, 96] {
            for df in DataflowKind::ALL {
                let mut w = Workload::synthetic_roberta(seq_len);
                w.model.encoder_layers = 1;
                let reused = acc.simulate_on(&mut shared, &w, df, transpim_obs::SinkHandle::null());
                let fresh = acc.simulate(&w, df);
                assert_eq!(reused.stats, fresh.stats, "{df} @ {seq_len}");
                assert_eq!(reused.scoped, fresh.scoped, "{df} @ {seq_len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match accelerator architecture")]
    fn executor_reuse_rejects_mismatched_arch() {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 1;
        let mut exec = crate::exec::Executor::new(ArchConfig::new(ArchKind::Nbp));
        Accelerator::new(ArchConfig::new(ArchKind::TransPim)).simulate_on(
            &mut exec,
            &w,
            DataflowKind::Token,
            transpim_obs::SinkHandle::null(),
        );
    }

    #[test]
    fn compiled_decode_programs_scale_with_layers_not_decode_len() {
        // The GPT decode loop compiles to `Repeat` steps: the program's
        // step count is a function of the model depth, not of how many
        // tokens get generated.
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
        let mut w = Workload::lm();
        w.decode_len = 128;
        let short = acc.compile(&w, DataflowKind::Token);
        w.decode_len = 4096;
        let long = acc.compile(&w, DataflowKind::Token);
        assert!(long.unrolled_len() > 16 * short.unrolled_len());
        assert!(
            long.len() <= short.len() + 8,
            "step count must not grow with decode_len ({} vs {})",
            long.len(),
            short.len()
        );
        assert!(
            (long.len() as u64) * 1000 < long.unrolled_len(),
            "expected ≥1000× compression at decode_len=4096"
        );
    }

    #[test]
    fn traced_simulation_matches_plain_simulation() {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 1;
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
        let plain = acc.simulate(&w, DataflowKind::Token);
        let (traced, trace) = acc.simulate_traced(&w, DataflowKind::Token).unwrap();
        assert_eq!(plain.stats, traced.stats);
        assert!(serde_json::from_str::<serde_json::Value>(&trace).is_ok());
    }
}
