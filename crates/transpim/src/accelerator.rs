//! One-call simulation of a workload × dataflow × architecture combination.

use crate::arch::ArchConfig;
use crate::exec::Executor;
use crate::report::{DataflowKind, SimReport};
use transpim_dataflow::{layer_flow, token_flow};
use transpim_transformer::workload::Workload;

/// A configured memory-based accelerator.
///
/// # Example
///
/// ```
/// use transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};
/// use transpim_transformer::workload::Workload;
///
/// let mut w = Workload::imdb();
/// w.model.encoder_layers = 1; // keep the doctest fast
/// let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
/// let token = acc.simulate(&w, DataflowKind::Token);
/// let layer = acc.simulate(&w, DataflowKind::Layer);
/// assert!(token.latency_ms() < layer.latency_ms());
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    arch: ArchConfig,
}

impl Accelerator {
    /// Build an accelerator around an architecture configuration.
    pub fn new(arch: ArchConfig) -> Self {
        Self { arch }
    }

    /// The architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Compile `workload` under `dataflow` and simulate it.
    pub fn simulate(&self, workload: &Workload, dataflow: DataflowKind) -> SimReport {
        let (report, _) = self.simulate_inner(workload, dataflow, false);
        report
    }

    /// Like [`Accelerator::simulate`], but additionally returns a
    /// Chrome-tracing JSON document of the phase timeline.
    pub fn simulate_traced(&self, workload: &Workload, dataflow: DataflowKind) -> (SimReport, String) {
        let (report, trace) = self.simulate_inner(workload, dataflow, true);
        (report, trace.unwrap_or_default())
    }

    fn simulate_inner(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
        traced: bool,
    ) -> (SimReport, Option<String>) {
        let banks = self.arch.hbm.geometry.total_banks();
        let program = match dataflow {
            DataflowKind::Token => token_flow::compile(workload, banks),
            DataflowKind::Layer => layer_flow::compile(workload, banks),
        };
        let mut exec = Executor::new(self.arch.clone());
        let (stats, scoped, trace) = if traced {
            let (stats, scoped, trace) = exec.run_traced(&program);
            (stats, scoped, Some(trace))
        } else {
            let (stats, scoped) = exec.run(&program);
            (stats, scoped, None)
        };
        let report = SimReport {
            system: self.arch.system_label(dataflow.label()),
            arch: self.arch.kind,
            dataflow,
            workload: workload.name.clone(),
            stats,
            scoped,
            total_ops: workload.total_ops(),
            batch: workload.batch,
        };
        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchKind;

    #[test]
    fn simulate_produces_labeled_report() {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 1;
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPimNb));
        let r = acc.simulate(&w, DataflowKind::Layer);
        assert_eq!(r.system, "Layer-TransPIM-NB");
        assert_eq!(r.workload, "IMDB");
        assert!(r.latency_ms() > 0.0);
        assert!(r.scoped.get("enc.fc").is_some());
    }
}
