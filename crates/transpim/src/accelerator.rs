//! One-call simulation of a workload × dataflow × architecture combination.

use crate::arch::ArchConfig;
use crate::exec::Executor;
use crate::report::{DataflowKind, SimReport};
use transpim_dataflow::{layer_flow, token_flow};
use transpim_obs::{ChromeTraceSink, ObsError, SinkHandle};
use transpim_transformer::workload::Workload;

/// A configured memory-based accelerator.
///
/// # Example
///
/// ```
/// use transpim::{Accelerator, ArchConfig, ArchKind, DataflowKind};
/// use transpim_transformer::workload::Workload;
///
/// let mut w = Workload::imdb();
/// w.model.encoder_layers = 1; // keep the doctest fast
/// let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
/// let token = acc.simulate(&w, DataflowKind::Token);
/// let layer = acc.simulate(&w, DataflowKind::Layer);
/// assert!(token.latency_ms() < layer.latency_ms());
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    arch: ArchConfig,
}

impl Accelerator {
    /// Build an accelerator around an architecture configuration.
    pub fn new(arch: ArchConfig) -> Self {
        Self { arch }
    }

    /// The architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Compile `workload` under `dataflow` and simulate it.
    pub fn simulate(&self, workload: &Workload, dataflow: DataflowKind) -> SimReport {
        self.simulate_with_sink(workload, dataflow, SinkHandle::null())
    }

    /// Like [`Accelerator::simulate`], with an observability sink attached
    /// to the execution: phase spans, resource occupancy counters and
    /// per-hop ring events stream into `sink` as the program runs. With a
    /// [`SinkHandle::null`] sink this is exactly [`Accelerator::simulate`].
    pub fn simulate_with_sink(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
        sink: SinkHandle,
    ) -> SimReport {
        let banks = self.arch.hbm.geometry.total_banks();
        let program = match dataflow {
            DataflowKind::Token => token_flow::compile(workload, banks),
            DataflowKind::Layer => layer_flow::compile(workload, banks),
        };
        let mut exec = Executor::new(self.arch.clone());
        let (stats, scoped) = exec.run_with_sink(&program, sink);
        SimReport {
            system: self.arch.system_label(dataflow.label()),
            arch: self.arch.kind,
            dataflow,
            workload: workload.name.clone(),
            stats,
            scoped,
            total_ops: workload.total_ops(),
            batch: workload.batch,
        }
    }

    /// Like [`Accelerator::simulate`], but additionally returns a
    /// Chrome-tracing JSON document of the phase timeline (loadable in
    /// `chrome://tracing` or Perfetto). Serialization failures are
    /// propagated, not swallowed.
    pub fn simulate_traced(
        &self,
        workload: &Workload,
        dataflow: DataflowKind,
    ) -> Result<(SimReport, String), ObsError> {
        let chrome = ChromeTraceSink::shared();
        let report =
            self.simulate_with_sink(workload, dataflow, SinkHandle::from_shared(chrome.clone()));
        let trace = chrome.borrow().to_json_string()?;
        Ok((report, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchKind;

    #[test]
    fn simulate_produces_labeled_report() {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 1;
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPimNb));
        let r = acc.simulate(&w, DataflowKind::Layer);
        assert_eq!(r.system, "Layer-TransPIM-NB");
        assert_eq!(r.workload, "IMDB");
        assert!(r.latency_ms() > 0.0);
        assert!(r.scoped.get("enc.fc").is_some());
    }

    #[test]
    fn traced_simulation_matches_plain_simulation() {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 1;
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
        let plain = acc.simulate(&w, DataflowKind::Token);
        let (traced, trace) = acc.simulate_traced(&w, DataflowKind::Token).unwrap();
        assert_eq!(plain.stats, traced.stats);
        assert!(serde_json::from_str::<serde_json::Value>(&trace).is_ok());
    }
}
