//! TransPIM: memory-based Transformer acceleration via software-hardware
//! co-design — the top-level accelerator model of the HPCA 2022 paper
//! reproduction.
//!
//! This crate ties the substrates together:
//!
//! * [`arch`] — the four memory-based architectures the paper compares:
//!   TransPIM (PIM + ACUs + buffers/ring links), TransPIM-NB (no
//!   communication buffers), OriginalPIM (bit-serial in-situ only), and
//!   NBP (Newton-like near-bank processing),
//! * [`calib`] — every constant that is not in the paper's Table I/II,
//!   with its provenance and the observable it was calibrated against,
//! * [`exec`] — the execution engine: prices each dataflow [`Step`] on an
//!   architecture and drives the `transpim-hbm` phase engine,
//! * [`accelerator`] — one-call simulation of a workload × dataflow ×
//!   architecture combination,
//! * [`report`] — the [`report::SimReport`] with latency, energy,
//!   category breakdown, bandwidth, power and utilization (everything the
//!   paper's Figures 10–15 plot),
//! * [`functional`] — end-to-end functional verification that the sharded
//!   token dataflow computes what the reference Transformer computes,
//! * [`banksim`] — bit-accurate execution of the Figure 8 datapath (PIM
//!   products, ACU reductions, Taylor exponent, divider reciprocal) checked
//!   against f32 attention.
//!
//! # Quickstart
//!
//! ```
//! use transpim::accelerator::Accelerator;
//! use transpim::arch::{ArchConfig, ArchKind};
//! use transpim::report::DataflowKind;
//! use transpim_transformer::workload::Workload;
//!
//! let mut w = Workload::imdb();
//! w.model.encoder_layers = 1; // keep the doctest fast
//! let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
//! let report = acc.simulate(&w, DataflowKind::Token);
//! assert!(report.latency_ms() > 0.0);
//! assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
//! ```

pub mod accelerator;
pub mod arch;
pub mod banksim;
pub mod calib;
pub mod error;
pub mod exec;
pub mod functional;
pub mod report;

pub use accelerator::Accelerator;
pub use arch::{ArchConfig, ArchKind};
pub use error::SimError;
pub use report::{DataflowKind, SimReport};

// Re-export the fault-injection surface so bins, benches, and tests drive
// degraded-mode simulation without depending on `transpim-fault` directly.
pub use transpim_fault as fault;
pub use transpim_fault::{FaultScenario, FaultSession, FaultStats};

// Re-export the step type the engine interprets, for downstream tooling.
pub use transpim_dataflow::ir::Step;

// Re-export the observability surface so downstream tooling can attach
// sinks without depending on `transpim-obs` directly.
pub use transpim_obs::{
    ChromeTraceSink, FanoutSink, MetricsSink, NullSink, ObsError, Sink, SinkHandle,
};
