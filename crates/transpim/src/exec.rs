//! The execution engine: prices each dataflow [`Step`] on a concrete
//! architecture and drives the phase engine in `transpim-hbm`.
//!
//! Pricing rules per architecture follow Section IV and the baselines of
//! Section V-A2:
//!
//! * point-wise arithmetic → bit-serial in-situ PIM batches
//!   (`transpim-pim`) on PIM architectures, or the per-channel near-bank
//!   vector unit on NBP;
//! * reductions → ACU adder trees when present, the in-array shift-add
//!   tree on OriginalPIM, the near-bank tree on NBP;
//! * Softmax reciprocals → the ACU divider, iterative PIM Newton–Raphson,
//!   or near-bank multiplies;
//! * communication → the ring/broadcast scheduler of `transpim-acu` on
//!   architecture-specific resource maps (ring links only when the
//!   broadcast hardware exists).
//!
//! Ring steps, one-to-all broadcasts and reduction trees are memoized by
//! their structural key, since the decoder repeats them thousands of times.

use crate::arch::{ArchConfig, ArchKind};
use crate::calib;
use crate::error::SimError;
use std::collections::{HashMap, HashSet};
use transpim_acu::adder_tree::AcuReduceModel;
use transpim_acu::data_buffer::DataBufferModel;
use transpim_acu::divider::DividerModel;
use transpim_acu::ring::{
    self, emit_hop_events, one_to_all_broadcast, pairwise_reduce_hops, schedule_hops,
    schedule_hops_placed, Hop, HopPlacement, ScheduleResult, TransferCostModel,
};
use transpim_dataflow::ir::{BankRange, Program, Step, StepDelta};
use transpim_fault::{FaultSession, FlipOutcome};
use transpim_hbm::engine::{tracks, Engine, LumpAction, Phase};
use transpim_hbm::geometry::BankId;
use transpim_hbm::resource::ResourceMap;
use transpim_hbm::stats::{Category, ScopedStats, SimStats};
use transpim_obs::{ChromeTraceSink, InstantEvent, ObsError, SinkHandle, SpanEvent};
use transpim_pim::cost::{PimCostModel, PimOp};
use transpim_pim::rowclone::RowCloneModel;

/// Prices dataflow programs on one architecture.
#[derive(Debug)]
pub struct Executor {
    arch: ArchConfig,
    map: ResourceMap,
    pim: PimCostModel,
    acu: AcuReduceModel,
    divider: DividerModel,
    buffer: Option<DataBufferModel>,
    rowclone: RowCloneModel,
    xfer: TransferCostModel,
    /// Row-cycle-bound per-bank streaming rate (GB/s): the pace at which a
    /// bank can sustainably read or write rows through its row buffer.
    /// Broadcast writes are paced by this floor even on the buffered
    /// datapath — every receiving bank's array write is the bottleneck.
    stream_floor_gbs: f64,
    ring_cache: HashMap<(u32, u32, u64), ScheduleResult>,
    broadcast_cache: HashMap<(u32, u32, u64), ScheduleResult>,
    tree_cache: HashMap<(u32, u32, u64), ScheduleResult>,
    /// Per-hop placements for traced runs, keyed like the cost caches.
    /// Only populated when a sink is attached.
    ring_hop_cache: HashMap<(u32, u32, u64), Vec<HopPlacement>>,
    tree_hop_cache: HashMap<(u32, u32, u64), Vec<HopPlacement>>,
    /// Ring/tree topologies `(start, count)` that already emitted one
    /// fully-detailed per-hop exemplar into the trace. The decoder prices
    /// the same topology thousands of times (with per-step byte counts);
    /// re-emitting every hop each time swamps the trace and dominates the
    /// traced run's cost, so later occurrences collapse to a summary span.
    ring_detail_emitted: HashSet<(u32, u32)>,
    tree_detail_emitted: HashSet<(u32, u32)>,
    /// When tracing, collapse iterations 1..N of a [`Step::Repeat`] into a
    /// single summary span instead of emitting every iteration's phases —
    /// keeps trace size O(compiled steps) for long decode loops. Off by
    /// default so traced compressed runs stay byte-identical to traced
    /// unrolled runs.
    collapse_repeats: bool,
    /// Whether [`Executor::apply_ring_faults`] rewired the resource map.
    /// A degraded executor prices a different machine than any
    /// [`ArchConfig`] describes, so it is never reused across cells.
    map_faulted: bool,
}

/// Threaded fault context: `None` everywhere on the fault-free path, so
/// pricing is byte-identical to a build without this subsystem.
type FaultCtx<'a> = Option<&'a mut FaultSession>;

impl Executor {
    /// Normalize an input configuration to what the executor prices:
    /// bank-to-bank streaming rates differ with the communication
    /// hardware. Without the TransPIM buffers, every transfer is
    /// row-cycle bound: open the source row, stream it beat by beat
    /// over the shared bus, open and restore the destination row. With
    /// the buffers, group segments pipeline independently at the
    /// column-access rate.
    fn normalized(mut arch: ArchConfig) -> ArchConfig {
        let g = arch.hbm.geometry;
        let t = arch.hbm.timing;
        if arch.kind.has_buffers() {
            arch.hbm.bus.group_gbs = f64::from(g.dq_bits) / 8.0 / t.t_ccd_s; // 16 GB/s
        } else {
            let beats = f64::from(g.row_bits()) / f64::from(g.dq_bits);
            let unbuffered_gbs = f64::from(g.row_bytes) / (2.0 * t.t_rc + beats * t.t_ccd_l);
            arch.hbm.bus.group_gbs = unbuffered_gbs;
            arch.hbm.bus.channel_gbs = unbuffered_gbs;
        }
        arch
    }

    /// Whether this executor prices exactly the architecture `arch`
    /// describes (modulo the bus-rate normalization [`Executor::new`]
    /// applies) — i.e. whether reusing it for `arch` is sound.
    pub fn prices_arch(&self, arch: &ArchConfig) -> bool {
        !self.map_faulted && self.arch == Self::normalized(arch.clone())
    }

    /// Build an executor for `arch`.
    pub fn new(arch: ArchConfig) -> Self {
        let arch = Self::normalized(arch);
        let g = arch.hbm.geometry;
        let t = arch.hbm.timing;
        let beats = f64::from(g.row_bits()) / f64::from(g.dq_bits);
        let stream_floor_gbs = f64::from(g.row_bytes) / (2.0 * t.t_rc + beats * t.t_ccd_l);
        let hbm = &arch.hbm;
        let map = hbm.resource_map(arch.kind.has_buffers());
        let pim = PimCostModel::new(hbm.geometry, hbm.timing, hbm.energy, arch.pim);
        let acu = AcuReduceModel::new(hbm.geometry, hbm.timing, hbm.energy, arch.acu);
        let buffer = arch.kind.has_buffers().then(|| DataBufferModel::new(hbm.timing, hbm.energy));
        let rowclone = RowCloneModel::new(hbm.geometry, hbm.timing, hbm.energy);
        let xfer = TransferCostModel::new(hbm.geometry, hbm.energy, arch.kind.has_buffers());
        Self {
            arch,
            map,
            pim,
            acu,
            divider: DividerModel::default(),
            buffer,
            rowclone,
            xfer,
            stream_floor_gbs,
            ring_cache: HashMap::new(),
            broadcast_cache: HashMap::new(),
            tree_cache: HashMap::new(),
            ring_hop_cache: HashMap::new(),
            tree_hop_cache: HashMap::new(),
            ring_detail_emitted: HashSet::new(),
            tree_detail_emitted: HashSet::new(),
            collapse_repeats: false,
            map_faulted: false,
        }
    }

    /// The resource map transfers are routed over (after any applied ring
    /// faults).
    pub fn resource_map(&self) -> &ResourceMap {
        &self.map
    }

    /// The architecture being priced.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Collapse traced repeat iterations 1..N into one summary span (see
    /// the `collapse_repeats` field). Statistics are unaffected; only
    /// span/counter emission changes.
    pub fn set_collapse_repeats(&mut self, collapse: bool) {
        self.collapse_repeats = collapse;
    }

    /// Run a program, returning global and per-scope statistics. Phase
    /// latencies include the DRAM refresh stretch (each bank loses `t_RFC`
    /// of every `t_REFI`).
    pub fn run(&mut self, program: &Program) -> (SimStats, ScopedStats) {
        self.run_with_sink(program, SinkHandle::null())
    }

    /// Run a program with an observability sink attached: phase spans,
    /// per-resource occupancy counters and per-hop ring events are emitted
    /// to `sink` as the engine executes. A [`SinkHandle::null`] sink makes
    /// this identical to [`Executor::run`] — no events are built and the
    /// statistics are bit-for-bit the same.
    pub fn run_with_sink(
        &mut self,
        program: &Program,
        sink: SinkHandle,
    ) -> (SimStats, ScopedStats) {
        let mut engine = Engine::with_sink(sink);
        engine.set_latency_scale(1.0 + self.arch.hbm.timing.refresh_overhead());
        self.run_on(program, &mut engine);
        engine.into_stats()
    }

    fn run_on(&mut self, program: &Program, engine: &mut Engine) {
        if let Err(e) = self.run_segment(program.steps(), engine, &mut None, &mut None) {
            unreachable!("fault-free pricing cannot fail: {e}");
        }
    }

    /// Run a program under a fault session: every lump is repriced through
    /// the degradation policies (stuck-plane serialization, ECC checks and
    /// corrections, bounded parity retries, divider fallback), correctable
    /// faults are absorbed into the statistics, and uncorrectable ones
    /// surface as a typed [`SimError`].
    ///
    /// Ring-link faults change *routing*, not lump repricing — apply them
    /// first with [`Executor::apply_ring_faults`]. An empty session leaves
    /// the run byte-identical to [`Executor::run`].
    ///
    /// # Errors
    ///
    /// [`SimError::Uncorrectable`] when an injected fault exceeds the ECC
    /// scheme and every degradation policy.
    pub fn run_degraded(
        &mut self,
        program: &Program,
        session: &mut FaultSession,
    ) -> Result<(SimStats, ScopedStats), SimError> {
        self.run_degraded_with_sink(program, session, SinkHandle::null())
    }

    /// [`Executor::run_degraded`] with an observability sink attached:
    /// fault events (ECC corrections, parity retries) are emitted as
    /// instants on the dedicated fault track alongside the usual phase
    /// spans and counters.
    ///
    /// # Errors
    ///
    /// See [`Executor::run_degraded`].
    pub fn run_degraded_with_sink(
        &mut self,
        program: &Program,
        session: &mut FaultSession,
        sink: SinkHandle,
    ) -> Result<(SimStats, ScopedStats), SimError> {
        let mut engine = Engine::with_sink(sink);
        engine.set_latency_scale(1.0 + self.arch.hbm.timing.refresh_overhead());
        self.run_segment(program.steps(), &mut engine, &mut None, &mut Some(session))?;
        Ok(engine.into_stats())
    }

    /// Rewire the resource map around the session's ring-link faults: dead
    /// links fall back to the shared channel bus (Figure 9's 8T path),
    /// degraded links keep their dedicated link at reduced bandwidth. The
    /// communication memo caches are invalidated; the closed-form
    /// one-to-all broadcast rides the channel buses already and is
    /// unaffected by neighbor-link faults.
    pub fn apply_ring_faults(&mut self, session: &FaultSession) {
        if session.dead_links().is_empty() && session.degraded_links().is_empty() {
            return;
        }
        let dead: Vec<u32> = session.dead_links().iter().copied().collect();
        let degraded: Vec<(u32, f64)> =
            session.degraded_links().iter().map(|(&g, &f)| (g, f)).collect();
        self.map = self.map.clone().with_ring_faults(&dead, &degraded);
        self.ring_cache.clear();
        self.broadcast_cache.clear();
        self.tree_cache.clear();
        self.ring_hop_cache.clear();
        self.tree_hop_cache.clear();
        self.map_faulted = true;
    }

    /// Record a lump into the replay log (when recording) and run it.
    /// Every lump the executor prices flows through here so a recorded
    /// repeat body replays the exact phase stream.
    fn lump_out(engine: &mut Engine, log: &mut Option<&mut Vec<LumpAction>>, phase: Phase) {
        if let Some(log) = log.as_deref_mut() {
            if let Phase::Lump { category, latency_ns, energy_pj, bytes } = &phase {
                log.push(LumpAction::Lump {
                    category: *category,
                    latency_ns: *latency_ns,
                    energy_pj: *energy_pj,
                    bytes: *bytes,
                });
            }
        }
        engine.run(phase);
    }

    /// Gate every priced lump through the fault session (when one is
    /// attached) and hand it to [`Executor::lump_out`]. With no session
    /// this is exactly `lump_out` — the fault-free path stays
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// [`SimError::Uncorrectable`] for flips the ECC scheme cannot absorb.
    fn emit(
        &self,
        engine: &mut Engine,
        log: &mut Option<&mut Vec<LumpAction>>,
        fault: &mut FaultCtx<'_>,
        phase: Phase,
    ) -> Result<(), SimError> {
        let Some(sess) = fault.as_deref_mut() else {
            Self::lump_out(engine, log, phase);
            return Ok(());
        };
        let Phase::Lump { category, latency_ns, energy_pj, bytes } = phase else {
            Self::lump_out(engine, log, phase);
            return Ok(());
        };
        let (latency_ns, energy_pj) =
            self.degrade(engine, sess, category, latency_ns, energy_pj, bytes)?;
        Self::lump_out(engine, log, Phase::lump(category, latency_ns, energy_pj, bytes));
        Ok(())
    }

    /// Apply the lump-level degradation policies and account their
    /// incremental cost (in scaled engine time, so the session's overhead
    /// equals the end-to-end latency delta for shape-preserving
    /// scenarios):
    ///
    /// * in-memory arithmetic (and in-array reductions on PIM-only)
    ///   serializes over the subarrays surviving stuck bit-planes;
    /// * data movement pays the ECC check-bit bandwidth tax, per-flip
    ///   SECDED corrections (one extra row cycle + activation each), and
    ///   one bounded retry of the whole transfer when parity detects a
    ///   flip it cannot repair;
    /// * an unprotected flip is uncorrectable — the simulator knows it
    ///   happened, so silent corruption is reported as an error.
    ///
    /// Only `DataMovement` traffic is ECC-checked; `MemTouch` capacity
    /// walks never leave the arrays.
    fn degrade(
        &self,
        engine: &mut Engine,
        sess: &mut FaultSession,
        category: Category,
        mut latency_ns: f64,
        mut energy_pj: f64,
        bytes: f64,
    ) -> Result<(f64, f64), SimError> {
        let scale = engine.latency_scale();
        let in_memory = self.arch.kind.computes_in_memory();
        let in_array_reduce = in_memory && !self.arch.kind.has_acu();
        match category {
            Category::Arithmetic if in_memory => {
                let slow = sess.pim_slowdown();
                if slow > 1.0 {
                    let extra = latency_ns * (slow - 1.0);
                    latency_ns += extra;
                    sess.add_overhead(extra * scale, 0.0);
                }
            }
            Category::Reduction if in_array_reduce => {
                let slow = sess.pim_slowdown();
                if slow > 1.0 {
                    let extra = latency_ns * (slow - 1.0);
                    latency_ns += extra;
                    sess.add_overhead(extra * scale, 0.0);
                }
            }
            Category::DataMovement => {
                let tax = sess.ecc_overhead_fraction();
                if tax > 0.0 {
                    let extra_lat = latency_ns * tax;
                    let extra_pj = energy_pj * tax;
                    latency_ns += extra_lat;
                    energy_pj += extra_pj;
                    sess.add_overhead(extra_lat * scale, extra_pj);
                }
                match sess.observe_transfer(bytes) {
                    FlipOutcome::None => {}
                    FlipOutcome::Corrected(flips) => {
                        let extra_lat = flips as f64 * self.arch.hbm.timing.t_rc;
                        let extra_pj = flips as f64 * self.arch.hbm.energy.e_act;
                        latency_ns += extra_lat;
                        energy_pj += extra_pj;
                        sess.add_overhead(extra_lat * scale, extra_pj);
                        Self::fault_event(engine, sess, "ecc-correct", flips);
                    }
                    FlipOutcome::Retry(flips) => {
                        // One bounded re-read of the transfer (check bits
                        // included); the retry itself is not re-drawn.
                        sess.add_overhead(latency_ns * scale, energy_pj);
                        latency_ns *= 2.0;
                        energy_pj *= 2.0;
                        Self::fault_event(engine, sess, "parity-retry", flips);
                    }
                    FlipOutcome::Uncorrectable(flips) => {
                        Self::fault_event(engine, sess, "uncorrectable-flip", flips);
                        return Err(SimError::Uncorrectable {
                            fault: format!(
                                "{flips} transient bit flip(s) on a {bytes:.0}-byte transfer \
                                 with no correcting ECC scheme"
                            ),
                            at_ns: Some(engine.now_ns()),
                        });
                    }
                }
            }
            _ => {}
        }
        Ok((latency_ns, energy_pj))
    }

    /// Emit a fault instant on the dedicated fault track. The track is
    /// named lazily on the first event so fault-free traces never see it.
    fn fault_event(engine: &Engine, sess: &mut FaultSession, name: &'static str, flips: u64) {
        if !engine.emitting() {
            return;
        }
        if sess.mark_fault_track_named() {
            engine.sink().track_name(tracks::FAULT, "faults");
        }
        engine.sink().instant(
            InstantEvent::new(name, "fault", tracks::FAULT, engine.now_ns())
                .with_arg("flips", flips),
        );
    }

    /// Price a step slice — a whole program or one repeat-body iteration.
    /// The pipelined-ring fusion window applies within the slice (compiled
    /// repeat bodies begin with a scope and end with a memory touch, so
    /// fusion never wants to cross an iteration boundary). When `log` is
    /// set, every priced lump and scope change is recorded for
    /// [`Engine::replay_lumps`].
    fn run_segment(
        &mut self,
        steps: &[Step],
        engine: &mut Engine,
        log: &mut Option<&mut Vec<LumpAction>>,
        fault: &mut FaultCtx<'_>,
    ) -> Result<(), SimError> {
        let mut i = 0;
        while i < steps.len() {
            // Pipelined ring: a ring broadcast immediately followed by the
            // point-wise multiply (and reduction) it feeds executes round
            // by round — transfer of round k+1 overlaps compute of round k
            // — so the pair costs max(transfer, compute) instead of the
            // barrier sum. Only the ring's share can hide; breakdown
            // attribution keeps the visible residual as movement.
            if self.arch.pipelined_ring {
                if let (
                    Some(Step::RingBroadcast { banks, bytes_per_hop, repeat, parallel }),
                    Some(Step::PointwiseMul { elems_per_bank, total_elems, a_bits, b_bits }),
                ) = (steps.get(i), steps.get(i + 1))
                {
                    let ring = self.ring_step(*banks, *bytes_per_hop);
                    let ring_lat = ring.latency_ns * *repeat as f64;
                    let (mul_lat, mul_pj) = self.pointwise(
                        PimOp::Mul { a_bits: *a_bits, b_bits: *b_bits },
                        *elems_per_bank,
                        *total_elems,
                    );
                    let visible_ring = (ring_lat - mul_lat).max(0.0);
                    if engine.emitting() {
                        // Per-hop detail is meaningless here — rounds overlap
                        // the multiply — so mark the fused pair instead.
                        engine.sink().instant(
                            InstantEvent::new(
                                "pipelined-ring",
                                "ring",
                                tracks::RING,
                                engine.now_ns(),
                            )
                            .with_arg("ring_ns", ring_lat)
                            .with_arg("mul_ns", mul_lat)
                            .with_arg("visible_ring_ns", visible_ring)
                            .with_arg("banks", u64::from(banks.count))
                            .with_arg("repeat", *repeat),
                        );
                    }
                    // The overlap window is computed from the fault-free
                    // compute latency; degradation applies to the residual
                    // lumps afterwards (conservative — a slowed multiply
                    // could hide more of the ring than we credit).
                    self.emit(
                        engine,
                        log,
                        fault,
                        Phase::lump(
                            Category::DataMovement,
                            visible_ring,
                            ring.energy_pj * *repeat as f64 * f64::from(*parallel),
                            ring.bytes * *repeat as f64 * f64::from(*parallel),
                        ),
                    )?;
                    self.emit(
                        engine,
                        log,
                        fault,
                        Phase::lump(Category::Arithmetic, mul_lat, mul_pj, 0.0),
                    )?;
                    i += 2;
                    continue;
                }
            }
            self.price(&steps[i], engine, log, fault)?;
            i += 1;
        }
        Ok(())
    }

    /// Run a program with a full Chrome-trace timeline recorded; returns
    /// the statistics plus a Chrome-tracing JSON document of the execution
    /// (loadable in `chrome://tracing` or Perfetto).
    ///
    /// Serialization failures are propagated, not swallowed: a trace that
    /// was asked for but cannot be produced is an error.
    pub fn run_traced(
        &mut self,
        program: &Program,
    ) -> Result<(SimStats, ScopedStats, String), ObsError> {
        let chrome = ChromeTraceSink::shared();
        let (stats, scoped) = self.run_with_sink(program, SinkHandle::from_shared(chrome.clone()));
        let trace = chrome.borrow().to_json_string()?;
        Ok((stats, scoped, trace))
    }

    fn price(
        &mut self,
        step: &Step,
        engine: &mut Engine,
        log: &mut Option<&mut Vec<LumpAction>>,
        fault: &mut FaultCtx<'_>,
    ) -> Result<(), SimError> {
        match *step {
            Step::Scope(ref label) => {
                if let Some(log) = log.as_deref_mut() {
                    log.push(LumpAction::Scope(label.to_string()));
                }
                engine.set_scope(label);
            }

            Step::Repeat { count, ref body, ref delta } => {
                self.price_repeat(count, body, delta, engine, log, fault)?;
            }

            Step::PointwiseMul { elems_per_bank, total_elems, a_bits, b_bits } => {
                let (lat, pj) =
                    self.pointwise(PimOp::Mul { a_bits, b_bits }, elems_per_bank, total_elems);
                self.emit(engine, log, fault, Phase::lump(Category::Arithmetic, lat, pj, 0.0))?;
            }
            Step::PointwiseAdd { elems_per_bank, total_elems, bits } => {
                let (lat, pj) = self.pointwise(PimOp::Add { bits }, elems_per_bank, total_elems);
                self.emit(engine, log, fault, Phase::lump(Category::Arithmetic, lat, pj, 0.0))?;
            }
            Step::Exp { elems_per_bank, total_elems, bits, order } => {
                let (lat, pj) =
                    self.pointwise(PimOp::ExpTaylor { bits, order }, elems_per_bank, total_elems);
                self.emit(engine, log, fault, Phase::lump(Category::Arithmetic, lat, pj, 0.0))?;
            }

            Step::Reduce { vec_len, bits, vectors_per_bank, total_vectors } => {
                let (lat, pj) = self.reduce(vec_len, bits, vectors_per_bank, total_vectors);
                self.emit(engine, log, fault, Phase::lump(Category::Reduction, lat, pj, 0.0))?;
            }
            Step::Recip { per_bank, total } => {
                let (lat, pj) = match fault.as_deref_mut() {
                    Some(sess)
                        if self.arch.kind.has_acu() && !sess.broken_dividers().is_empty() =>
                    {
                        self.recip_degraded(per_bank, total, sess, engine.latency_scale())
                    }
                    _ => self.recip(per_bank, total),
                };
                self.emit(engine, log, fault, Phase::lump(Category::Reduction, lat, pj, 0.0))?;
            }

            Step::Replicate { value_bits, copies, count_per_bank, total_count } => {
                let (per_ns, per_pj) = ring::replicate_in_bank(
                    self.buffer.as_ref(),
                    &self.arch.hbm.timing,
                    &self.arch.hbm.energy,
                    value_bits,
                    copies,
                );
                let lat = per_ns * count_per_bank as f64;
                let pj = per_pj * total_count as f64;
                let bytes = total_count as f64 * f64::from(copies) * f64::from(value_bits) / 8.0;
                self.emit(engine, log, fault, Phase::lump(Category::DataMovement, lat, pj, bytes))?;
            }

            Step::HostBroadcast { bytes, banks } => {
                let (lat, pj) = self.host_broadcast(bytes, banks);
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(
                        Category::DataMovement,
                        lat,
                        pj,
                        bytes as f64 * f64::from(banks.max(1)),
                    ),
                )?;
            }
            Step::HostScatter { total_bytes } => {
                let (lat, pj) = self.host_scatter(total_bytes);
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(Category::DataMovement, lat, pj, total_bytes as f64),
                )?;
            }

            Step::RingBroadcast { banks, bytes_per_hop, repeat, parallel } => {
                let r = self.ring_step(banks, bytes_per_hop);
                if engine.emitting() {
                    self.emit_ring_hops(engine, banks, bytes_per_hop, repeat, &r);
                }
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(
                        Category::DataMovement,
                        r.latency_ns * repeat as f64,
                        r.energy_pj * repeat as f64 * f64::from(parallel),
                        r.bytes * repeat as f64 * f64::from(parallel),
                    ),
                )?;
            }
            Step::OneToAll { src, banks, bytes, parallel } => {
                let r = self.one_to_all(src, banks, bytes);
                if engine.emitting() {
                    engine.sink().instant(
                        InstantEvent::new("one-to-all", "ring", tracks::RING, engine.now_ns())
                            .with_arg("src_bank", u64::from(src))
                            .with_arg("banks", u64::from(banks.count))
                            .with_arg("bytes", bytes)
                            .with_arg("slots", u64::from(r.slots)),
                    );
                }
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(
                        Category::DataMovement,
                        r.latency_ns,
                        r.energy_pj * f64::from(parallel),
                        r.bytes * f64::from(parallel),
                    ),
                )?;
            }
            Step::PairwiseReduceTree { banks, bytes, bits, elems, parallel } => {
                let r = self.reduce_tree_moves(banks, bytes);
                if engine.emitting() {
                    self.emit_tree_hops(engine, banks, bytes, r.latency_ns);
                }
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(
                        Category::DataMovement,
                        r.latency_ns,
                        r.energy_pj * f64::from(parallel),
                        r.bytes * f64::from(parallel),
                    ),
                )?;
                // One in-bank add per tree level.
                let levels = 32 - banks.count.max(1).leading_zeros() as u64;
                let (lat, pj) = self.pointwise(PimOp::Add { bits }, elems, elems * levels);
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(
                        Category::Reduction,
                        lat * levels as f64,
                        pj * f64::from(parallel),
                        0.0,
                    ),
                )?;
            }

            Step::BroadcastDup { bytes, banks } => {
                let (lat, pj) = self.broadcast_dup(bytes, banks);
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(
                        Category::DataMovement,
                        lat,
                        pj,
                        bytes as f64 * f64::from(banks.max(1)),
                    ),
                )?;
            }
            Step::IntraBankCopy { bytes_per_bank, total_bytes } => {
                let (lat, pj) = match &self.buffer {
                    Some(b) => (
                        b.inter_subarray_copy_ns(bytes_per_bank),
                        b.inter_subarray_copy_pj(total_bytes),
                    ),
                    None => (
                        self.rowclone.buffered_copy_latency_ns(bytes_per_bank),
                        self.rowclone.buffered_copy_energy_pj(total_bytes),
                    ),
                };
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(Category::DataMovement, lat, pj, total_bytes as f64),
                )?;
            }
            Step::ShuffleAll { total_bytes } => {
                let (lat, pj) = self.shuffle_all(total_bytes);
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(Category::DataMovement, lat, pj, total_bytes as f64),
                )?;
            }

            Step::MemTouch { bytes_per_bank, total_bytes } => {
                let (lat, pj) = self.mem_touch(bytes_per_bank, total_bytes);
                self.emit(
                    engine,
                    log,
                    fault,
                    Phase::lump(Category::Other, lat, pj, total_bytes as f64),
                )?;
            }
        }
        Ok(())
    }

    /// Price `count` iterations of a repeat body.
    ///
    /// Three strategies, all denoting exactly the unrolled pricing:
    ///
    /// * **replay** (zero deltas, nothing to emit, not already recording):
    ///   price iteration 0 once while recording its lump stream, then
    ///   [`Engine::replay_lumps`] the remaining `count - 1` iterations —
    ///   the same f64 operations in the same order, so byte-identical
    ///   statistics at O(body) step-walk cost;
    /// * **in-place advance** (non-zero deltas, or emission is on): walk a
    ///   scratch copy of the body per iteration, advancing its varying
    ///   fields by the deltas — cache-hot, no per-step allocation;
    /// * **collapsed emission** (tracing with [`Executor::set_collapse_repeats`]):
    ///   iteration 0 emits normally, iterations 1..N run quiet and are
    ///   represented by one summary span carrying the collapsed count.
    ///
    /// Debug builds verify the replay against an actual re-pricing and the
    /// final scratch body against [`Step::at`].
    fn price_repeat(
        &mut self,
        count: u64,
        body: &[Step],
        delta: &[StepDelta],
        engine: &mut Engine,
        log: &mut Option<&mut Vec<LumpAction>>,
        fault: &mut FaultCtx<'_>,
    ) -> Result<(), SimError> {
        if count == 0 || body.is_empty() {
            return Ok(());
        }
        let zero_delta = delta.iter().all(StepDelta::is_zero);
        // A fault session disables the replay fast path: transient-flip
        // draws advance per lump, so every iteration must be priced live.
        if zero_delta && !engine.emitting() && log.is_none() && fault.is_none() {
            let mut recorded = Vec::new();
            self.run_segment(body, engine, &mut Some(&mut recorded), &mut None)?;
            #[cfg(debug_assertions)]
            let mut check = engine.clone();
            engine.replay_lumps(&recorded, count - 1);
            #[cfg(debug_assertions)]
            {
                for _ in 1..count {
                    let _ = self.run_segment(body, &mut check, &mut None, &mut None);
                }
                debug_assert_eq!(check.stats(), engine.stats(), "replayed repeat stats diverged");
                debug_assert_eq!(
                    check.scoped(),
                    engine.scoped(),
                    "replayed repeat scopes diverged"
                );
            }
            return Ok(());
        }

        let collapse = self.collapse_repeats && count > 1 && engine.emitting() && log.is_none();
        let mut scratch = body.to_vec();
        let mut summary_start = 0.0;
        for i in 0..count {
            if i > 0 {
                for (s, d) in scratch.iter_mut().zip(delta) {
                    s.advance(d);
                }
            }
            if collapse && i == 1 {
                summary_start = engine.now_ns();
                engine.set_quiet(true);
            }
            self.run_segment(&scratch, engine, log, fault)?;
        }
        if collapse {
            engine.set_quiet(false);
            engine.sink().span(
                SpanEvent::new(
                    format!("repeat x{}", count - 1),
                    "repeat",
                    tracks::RING,
                    summary_start,
                    engine.now_ns() - summary_start,
                )
                .with_count(count - 1),
            );
        }
        #[cfg(debug_assertions)]
        if count > 1 {
            for (j, s) in scratch.iter().enumerate() {
                debug_assert_eq!(
                    *s,
                    body[j].at(&delta[j], count - 1),
                    "in-place advance diverged from Step::at"
                );
            }
        }
        Ok(())
    }

    // ---- compute pricing -------------------------------------------------

    /// NBP abstract op count per element for a PIM op.
    fn nbp_ops(op: PimOp) -> f64 {
        match op {
            PimOp::Mul { .. } | PimOp::Add { bits: _ } => 1.0,
            PimOp::ExpTaylor { order, .. } => 2.0 * f64::from(order),
            PimOp::Bitwise { planes } => f64::from(planes).max(1.0) / 16.0,
        }
    }

    fn op_bits(op: PimOp) -> u32 {
        match op {
            PimOp::Mul { a_bits, b_bits } => a_bits.max(b_bits),
            PimOp::Add { bits } => bits,
            PimOp::ExpTaylor { bits, .. } => bits,
            PimOp::Bitwise { .. } => 1,
        }
    }

    fn pointwise(&self, op: PimOp, elems_per_bank: u64, total_elems: u64) -> (f64, f64) {
        if self.arch.kind.computes_in_memory() {
            (self.pim.latency_ns(op, elems_per_bank), self.pim.energy_pj(op, total_elems))
        } else {
            let g = &self.arch.hbm.geometry;
            let per_channel = elems_per_bank * u64::from(g.banks_per_channel());
            let rate = f64::from(calib::NBP_LANES)
                * calib::NBP_CLOCK_GHZ
                * f64::from(calib::NBP_UNITS_PER_CHANNEL); // elems/ns/channel
            let lat = per_channel as f64 * Self::nbp_ops(op) / rate;
            let pj = total_elems as f64
                * Self::nbp_ops(op)
                * (f64::from(Self::op_bits(op))
                    * (self.arch.hbm.energy.e_pre_gsa + self.arch.hbm.energy.e_post_gsa)
                    + calib::NBP_LOGIC_PJ_PER_OP);
            (lat, pj)
        }
    }

    fn reduce(
        &self,
        vec_len: u32,
        bits: u32,
        vectors_per_bank: u64,
        total_vectors: u64,
    ) -> (f64, f64) {
        match self.arch.kind {
            ArchKind::TransPim | ArchKind::TransPimNb => (
                self.acu.bank_latency_ns(vec_len, bits, vectors_per_bank),
                self.acu.energy_pj(vec_len, bits, total_vectors),
            ),
            ArchKind::OriginalPim => (
                self.pim.reduce_tree_latency_ns(vec_len, bits, vectors_per_bank),
                self.pim.reduce_tree_energy_pj(vec_len, bits, total_vectors),
            ),
            ArchKind::Nbp => {
                let g = &self.arch.hbm.geometry;
                let per_channel = vectors_per_bank * u64::from(g.banks_per_channel());
                let elems = per_channel * u64::from(vec_len);
                let rate = f64::from(calib::NBP_LANES) * calib::NBP_CLOCK_GHZ;
                let lat = elems as f64 / rate + per_channel as f64 * calib::NBP_VECTOR_RESTART_NS;
                let total_elems = total_vectors * u64::from(vec_len);
                let pj = total_elems as f64
                    * (f64::from(bits)
                        * (self.arch.hbm.energy.e_pre_gsa + self.arch.hbm.energy.e_post_gsa)
                        + calib::NBP_LOGIC_PJ_PER_OP);
                (lat, pj)
            }
        }
    }

    fn recip(&self, per_bank: u64, total: u64) -> (f64, f64) {
        match self.arch.kind {
            ArchKind::TransPim | ArchKind::TransPimNb => {
                let per_divider = per_bank.div_ceil(u64::from(self.arch.acu.p_sub).max(1));
                (self.divider.latency_ns(per_divider), self.divider.energy_pj(total))
            }
            ArchKind::OriginalPim => {
                // Newton–Raphson in the arrays: 2 multiplies + 1 add per
                // iteration at Softmax width.
                let mul = PimOp::Mul { a_bits: 16, b_bits: 16 };
                let add = PimOp::Add { bits: 16 };
                let iters = f64::from(calib::PIM_RECIP_ITERATIONS);
                let lat = iters
                    * (2.0 * self.pim.latency_ns(mul, per_bank)
                        + self.pim.latency_ns(add, per_bank));
                let pj =
                    iters * (2.0 * self.pim.energy_pj(mul, total) + self.pim.energy_pj(add, total));
                (lat, pj)
            }
            ArchKind::Nbp => {
                let ops = 3.0 * f64::from(calib::PIM_RECIP_ITERATIONS);
                let g = &self.arch.hbm.geometry;
                let per_channel = per_bank * u64::from(g.banks_per_channel());
                let rate = f64::from(calib::NBP_LANES) * calib::NBP_CLOCK_GHZ;
                let lat = per_channel as f64 * ops / rate;
                let pj = total as f64 * ops * calib::NBP_LOGIC_PJ_PER_OP;
                (lat, pj)
            }
        }
    }

    /// [`Executor::recip`] when some ACU dividers are broken: the affected
    /// banks fall back to Newton–Raphson reciprocal in their arrays (the
    /// OriginalPim path), running alongside the healthy dividers. Latency
    /// is the slower of the two sides; energy blends by the broken
    /// fraction. The incremental cost is charged to the session in scaled
    /// engine time.
    fn recip_degraded(
        &self,
        per_bank: u64,
        total: u64,
        sess: &mut FaultSession,
        scale: f64,
    ) -> (f64, f64) {
        let (div_lat, div_pj) = self.recip(per_bank, total);
        let mul = PimOp::Mul { a_bits: 16, b_bits: 16 };
        let add = PimOp::Add { bits: 16 };
        let iters = f64::from(calib::PIM_RECIP_ITERATIONS);
        let nr_lat =
            iters * (2.0 * self.pim.latency_ns(mul, per_bank) + self.pim.latency_ns(add, per_bank));
        let nr_pj = iters * (2.0 * self.pim.energy_pj(mul, total) + self.pim.energy_pj(add, total));
        let frac = sess.broken_divider_fraction();
        let lat = div_lat.max(nr_lat);
        let pj = div_pj * (1.0 - frac) + nr_pj * frac;
        sess.add_overhead((lat - div_lat) * scale, pj - div_pj);
        (lat, pj)
    }

    // ---- movement pricing ------------------------------------------------

    fn layout_factor(&self) -> f64 {
        if self.arch.kind.computes_in_memory() {
            calib::LAYOUT_REORG_OVERHEAD
        } else {
            1.0
        }
    }

    fn host_broadcast(&self, bytes: u64, banks: u32) -> (f64, f64) {
        let g = &self.arch.hbm.geometry;
        let bus = &self.arch.hbm.bus;
        let b = bytes as f64;
        let bits = b * 8.0;
        let channels = f64::from(g.total_channels());
        let base = b / bus.host_gbs + b / bus.stack_gbs;
        let (lat, bus_traversals) = if self.arch.kind.has_buffers() {
            // Broadcast write: one channel-bus pass per channel, all banks
            // of the channel latch simultaneously — paced by the banks'
            // row-write rate, not the bus burst rate.
            (base + self.layout_factor() * b / self.stream_floor_gbs.min(bus.channel_gbs), channels)
        } else {
            // Original datapath: one serialized, row-cycle-bound pass per
            // bank on each channel's shared bus.
            let per_chan = f64::from(g.banks_per_channel());
            (
                base + self.layout_factor() * per_chan * b / bus.channel_gbs,
                channels * f64::from(g.banks_per_channel()),
            )
        };
        let e = &self.arch.hbm.energy;
        let pj = bits * e.e_io * (1.0 + f64::from(g.stacks))
            + bits * e.e_post_gsa * bus_traversals
            + f64::from(banks) * self.xfer.bank_write_energy_pj(bytes);
        (lat, pj)
    }

    fn host_scatter(&self, total_bytes: u64) -> (f64, f64) {
        let g = &self.arch.hbm.geometry;
        let bus = &self.arch.hbm.bus;
        let b = total_bytes as f64;
        let per_channel = b / f64::from(g.total_channels());
        let lat = b / bus.host_gbs
            + self.layout_factor() * per_channel / self.stream_floor_gbs.min(bus.channel_gbs);
        let e = &self.arch.hbm.energy;
        let bits = b * 8.0;
        let pj = bits * (e.e_io + e.e_post_gsa) + self.xfer.bank_write_energy_pj(total_bytes);
        (lat, pj)
    }

    fn shuffle_all(&self, total_bytes: u64) -> (f64, f64) {
        let g = &self.arch.hbm.geometry;
        let bus = &self.arch.hbm.bus;
        // With buffers every bank-group segment streams independently;
        // without them each channel's shared bus is the unit of transfer.
        let agg = if self.arch.kind.has_buffers() {
            f64::from(g.total_groups()) * bus.group_gbs
        } else {
            f64::from(g.total_channels()) * bus.channel_gbs
        };
        let lat = self.layout_factor() * total_bytes as f64 / agg;
        let e = &self.arch.hbm.energy;
        let bits = total_bytes as f64 * 8.0;
        // Read out of one bank, across the bus, into another.
        let pj = bits * (2.0 * (e.e_pre_gsa + e.e_post_gsa) + e.e_io)
            + 2.0 * (total_bytes as f64 / f64::from(g.row_bytes)) * e.e_act;
        (lat, pj)
    }

    fn broadcast_dup(&self, bytes: u64, banks: u32) -> (f64, f64) {
        let g = &self.arch.hbm.geometry;
        let bus = &self.arch.hbm.bus;
        let b = bytes as f64;
        let copies_per_channel = if self.arch.kind.has_buffers() {
            1.0 // broadcast write reaches all banks of the channel at once
        } else {
            f64::from(g.banks_per_channel())
        };
        // Broadcast writes are paced by the receiving banks' row-write
        // rate (channel_gbs already equals it on unbuffered datapaths).
        let lat = b / bus.stack_gbs
            + self.layout_factor() * copies_per_channel * b
                / self.stream_floor_gbs.min(bus.channel_gbs);
        let e = &self.arch.hbm.energy;
        let bits = b * 8.0;
        let pj = bits * (e.e_pre_gsa + e.e_post_gsa) // gather source read
            + bits * e.e_post_gsa * f64::from(g.total_channels()) * copies_per_channel
            + f64::from(banks) * self.xfer.bank_write_energy_pj(bytes);
        (lat, pj)
    }

    fn mem_touch(&self, bytes_per_bank: u64, total_bytes: u64) -> (f64, f64) {
        let g = &self.arch.hbm.geometry;
        let t = &self.arch.hbm.timing;
        let rows = bytes_per_bank.div_ceil(u64::from(g.row_bytes).max(1)) as f64;
        let beats = (bytes_per_bank * 8).div_ceil(u64::from(g.dq_bits)) as f64;
        let lat = rows * t.t_rc + beats * t.t_ccd_l;
        let e = &self.arch.hbm.energy;
        let total_rows = total_bytes.div_ceil(u64::from(g.row_bytes).max(1)) as f64;
        let pj = total_rows * e.e_act + total_bytes as f64 * 8.0 * e.e_pre_gsa;
        (lat, pj)
    }

    // ---- scheduled/memoized communication ---------------------------------

    fn ring_step(&mut self, banks: BankRange, bytes: u64) -> ScheduleResult {
        let key = (banks.start, banks.count, bytes);
        if let Some(r) = self.ring_cache.get(&key) {
            return *r;
        }
        let ids = banks.to_vec();
        let r = ring::ring_step(&self.map, &self.xfer, &ids, bytes);
        self.ring_cache.insert(key, r);
        r
    }

    fn one_to_all(&mut self, src: u32, banks: BankRange, bytes: u64) -> ScheduleResult {
        let key = (banks.start, banks.count, bytes);
        if let Some(r) = self.broadcast_cache.get(&key) {
            return *r;
        }
        let ids = banks.to_vec();
        let r = one_to_all_broadcast(&self.map, &self.xfer, BankId(src), &ids, bytes);
        self.broadcast_cache.insert(key, r);
        r
    }

    fn reduce_tree_moves(&mut self, banks: BankRange, bytes: u64) -> ScheduleResult {
        let key = (banks.start, banks.count, bytes);
        if let Some(r) = self.tree_cache.get(&key) {
            return *r;
        }
        let ids = banks.to_vec();
        let mut total = ScheduleResult::default();
        let mut stride = 1usize;
        while stride < ids.len() {
            let hops: Vec<Hop> = pairwise_reduce_hops(&ids, stride, bytes);
            let r = schedule_hops(&self.map, &self.xfer, &hops);
            total.latency_ns += r.latency_ns;
            total.energy_pj += r.energy_pj;
            total.bytes += r.bytes;
            total.slots += r.slots;
            stride *= 2;
        }
        self.tree_cache.insert(key, total);
        total
    }

    // ---- trace emission ---------------------------------------------------

    /// Emit per-hop span events for one ring step starting at the engine's
    /// current timestamp, plus a single summary span for the remaining
    /// `repeat - 1` identical rounds. Per-hop detail is emitted for the
    /// *first* occurrence of each ring topology only; later occurrences
    /// collapse to one summary span (see `ring_detail_emitted`).
    fn emit_ring_hops(
        &mut self,
        engine: &Engine,
        banks: BankRange,
        bytes: u64,
        repeat: u64,
        r: &ScheduleResult,
    ) {
        let scale = engine.latency_scale();
        let base = engine.now_ns();
        if !self.ring_detail_emitted.insert((banks.start, banks.count)) {
            engine.sink().span(
                SpanEvent::new(
                    "ring",
                    "ring",
                    tracks::RING,
                    base,
                    r.latency_ns * repeat as f64 * scale,
                )
                .with_arg("banks", u64::from(banks.count))
                .with_arg("bytes_per_hop", bytes)
                .with_arg("slots", u64::from(r.slots))
                .with_arg("rounds", repeat),
            );
            return;
        }
        let key = (banks.start, banks.count, bytes);
        if !self.ring_hop_cache.contains_key(&key) {
            let ids = banks.to_vec();
            let hops: Vec<Hop> = ring::ring_step_hops(&ids, bytes);
            let (_, placed) = schedule_hops_placed(&self.map, &self.xfer, &hops);
            self.ring_hop_cache.insert(key, placed);
        }
        emit_hop_events(engine.sink(), &self.map, base, scale, &self.ring_hop_cache[&key]);
        if repeat > 1 {
            engine.sink().span(
                SpanEvent::new(
                    format!("ring x{}", repeat - 1),
                    "ring",
                    tracks::RING,
                    base + r.latency_ns * scale,
                    r.latency_ns * (repeat - 1) as f64 * scale,
                )
                .with_arg("banks", u64::from(banks.count))
                .with_arg("bytes_per_hop", bytes)
                .with_arg("slots", u64::from(r.slots)),
            );
        }
    }

    /// Emit per-hop span events for the pairwise reduction tree: each
    /// halving level's hops are placed by the slotted scheduler and offset
    /// by the cumulative latency of the levels before it. As with rings,
    /// only the first occurrence of a topology gets per-hop detail; later
    /// occurrences emit one summary span of the scheduled latency.
    fn emit_tree_hops(&mut self, engine: &Engine, banks: BankRange, bytes: u64, total_ns: f64) {
        let scale = engine.latency_scale();
        let base = engine.now_ns();
        if !self.tree_detail_emitted.insert((banks.start, banks.count)) {
            engine.sink().span(
                SpanEvent::new("reduce-tree", "ring", tracks::RING, base, total_ns * scale)
                    .with_arg("banks", u64::from(banks.count))
                    .with_arg("bytes", bytes),
            );
            return;
        }
        let key = (banks.start, banks.count, bytes);
        if !self.tree_hop_cache.contains_key(&key) {
            let ids = banks.to_vec();
            let mut all = Vec::new();
            let mut offset = 0.0;
            let mut stride = 1usize;
            while stride < ids.len() {
                let hops: Vec<Hop> = pairwise_reduce_hops(&ids, stride, bytes);
                let (r, placed) = schedule_hops_placed(&self.map, &self.xfer, &hops);
                all.extend(placed.into_iter().map(|mut p| {
                    p.start_ns += offset;
                    p
                }));
                offset += r.latency_ns;
                stride *= 2;
            }
            self.tree_hop_cache.insert(key, all);
        }
        emit_hop_events(engine.sink(), &self.map, base, scale, &self.tree_hop_cache[&key]);
    }

    /// Expose the ring-step scheduler for ablation benches: cost of one
    /// full ring step over `banks` with `bytes` per hop.
    pub fn ring_step_cost(&mut self, banks: BankRange, bytes: u64) -> ScheduleResult {
        self.ring_step(banks, bytes)
    }

    /// Validate a ring schedule invariant used by tests: the full ring hop
    /// set of this architecture is conflict-free per slot (delegates to the
    /// scheduler; the slot count must be ≥ the per-group serialization
    /// lower bound).
    pub fn ring_slots(&mut self, banks: BankRange, bytes: u64) -> u32 {
        self.ring_step(banks, bytes).slots
    }

    /// Expose the decoder's pairwise reduction-tree transfer cost for
    /// ablation benches (movement only; the in-bank adds are priced
    /// separately by [`Step::PairwiseReduceTree`]).
    pub fn reduce_tree_cost(&mut self, banks: BankRange, bytes: u64) -> ScheduleResult {
        self.reduce_tree_moves(banks, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transpim_dataflow::ir::Precision;
    use transpim_dataflow::{layer_flow, token_flow};
    use transpim_transformer::workload::Workload;

    fn run(kind: ArchKind, token: bool, w: &Workload) -> SimStats {
        let arch = ArchConfig::new(kind);
        let banks = arch.hbm.geometry.total_banks();
        let prog =
            if token { token_flow::compile(w, banks) } else { layer_flow::compile(w, banks) };
        let mut ex = Executor::new(arch);
        ex.run(&prog).0
    }

    fn small_workload() -> Workload {
        let mut w = Workload::imdb();
        w.model.encoder_layers = 2;
        w
    }

    #[test]
    fn transpim_beats_pim_only_and_nbp() {
        let w = small_workload();
        let t = run(ArchKind::TransPim, true, &w).latency_ns;
        let p = run(ArchKind::OriginalPim, true, &w).latency_ns;
        let n = run(ArchKind::Nbp, true, &w).latency_ns;
        assert!(t < p, "TransPIM {t} should beat OriginalPIM {p}");
        assert!(t < n, "TransPIM {t} should beat NBP {n}");
    }

    #[test]
    fn token_dataflow_beats_layer_dataflow() {
        let w = small_workload();
        for kind in ArchKind::ALL {
            let t = run(kind, true, &w).latency_ns;
            let l = run(kind, false, &w).latency_ns;
            assert!(t < l, "{kind}: token {t} should beat layer {l}");
        }
    }

    #[test]
    fn buffers_reduce_data_movement() {
        let w = small_workload();
        let with = run(ArchKind::TransPim, true, &w);
        let without = run(ArchKind::TransPimNb, true, &w);
        let m_with = with.time_ns[Category::DataMovement.index()];
        let m_without = without.time_ns[Category::DataMovement.index()];
        assert!(
            m_with < m_without,
            "buffered movement {m_with} should beat unbuffered {m_without}"
        );
    }

    #[test]
    fn acu_slashes_reduction_time() {
        let w = small_workload();
        let t = run(ArchKind::TransPim, true, &w);
        let p = run(ArchKind::OriginalPim, true, &w);
        let rt = t.time_ns[Category::Reduction.index()];
        let rp = p.time_ns[Category::Reduction.index()];
        assert!(rp > 5.0 * rt, "ACU reduction {rt} should be ≫ faster than PIM-only {rp}");
    }

    #[test]
    fn nbp_arithmetic_is_slow_but_busy() {
        let w = small_workload();
        let n = run(ArchKind::Nbp, true, &w);
        let t = run(ArchKind::TransPim, true, &w);
        let an = n.time_ns[Category::Arithmetic.index()];
        let at = t.time_ns[Category::Arithmetic.index()];
        assert!(an > 2.0 * at, "NBP arithmetic {an} should lag PIM {at}");
        assert!(n.compute_utilization() > t.compute_utilization());
    }

    #[test]
    fn breakdown_partitions_latency() {
        let w = small_workload();
        let s = run(ArchKind::TransPim, true, &w);
        let sum: f64 = s.time_ns.iter().sum();
        assert!((sum - s.latency_ns).abs() < 1e-6 * s.latency_ns.max(1.0));
        assert!(s.total_energy_pj() > 0.0 && s.bytes_moved > 0.0);
    }

    #[test]
    fn pipelined_ring_never_slower_and_hides_movement() {
        let w = {
            let mut w = Workload::pubmed();
            w.model.encoder_layers = 2;
            w.model.decoder_layers = 0;
            w.decode_len = 0;
            w
        };
        let prog = token_flow::compile(&w, 2048);
        let barrier = {
            let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
            ex.run(&prog).0
        };
        let pipelined = {
            let arch = ArchConfig::new(ArchKind::TransPim).with_pipelined_ring(true);
            let mut ex = Executor::new(arch);
            ex.run(&prog).0
        };
        assert!(pipelined.latency_ns <= barrier.latency_ns);
        assert!(
            pipelined.time_ns[Category::DataMovement.index()]
                <= barrier.time_ns[Category::DataMovement.index()]
        );
        // Energy is work, not schedule: unchanged.
        assert!(
            (pipelined.total_energy_pj() - barrier.total_energy_pj()).abs()
                < 1e-6 * barrier.total_energy_pj()
        );
    }

    #[test]
    fn zero_sized_steps_are_free_and_finite() {
        let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
        let mut prog = transpim_dataflow::ir::Program::new();
        prog.push(Step::PointwiseMul { elems_per_bank: 0, total_elems: 0, a_bits: 8, b_bits: 8 });
        prog.push(Step::Reduce { vec_len: 1, bits: 8, vectors_per_bank: 0, total_vectors: 0 });
        prog.push(Step::HostScatter { total_bytes: 0 });
        prog.push(Step::MemTouch { bytes_per_bank: 0, total_bytes: 0 });
        let (stats, _) = ex.run(&prog);
        assert!(stats.latency_ns.is_finite() && stats.latency_ns >= 0.0);
        assert!(stats.total_energy_pj().is_finite());
    }

    #[test]
    fn decoder_program_executes() {
        let mut w = Workload::pubmed();
        w.model.encoder_layers = 1;
        w.model.decoder_layers = 1;
        w.decode_len = 3;
        w.seq_len = 256;
        let s = run(ArchKind::TransPim, true, &w);
        assert!(s.latency_ns > 0.0);
    }

    #[test]
    fn precision_default_is_paper_precision() {
        let p = Precision::default();
        assert_eq!((p.act_bits, p.softmax_bits, p.taylor_order), (8, 16, 5));
    }

    #[test]
    fn traced_run_matches_untraced_and_parses() {
        let w = small_workload();
        let arch = ArchConfig::new(ArchKind::TransPim);
        let banks = arch.hbm.geometry.total_banks();
        let prog = token_flow::compile(&w, banks);
        let (plain, plain_scoped) = Executor::new(arch.clone()).run(&prog);
        let (traced, traced_scoped, trace) =
            Executor::new(arch).run_traced(&prog).expect("trace must serialize");
        assert_eq!(plain, traced, "tracing must not perturb the statistics");
        assert_eq!(plain_scoped, traced_scoped);
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = parsed.as_array().expect("chrome trace is a JSON array");
        assert!(!events.is_empty(), "a real program must emit events");
        // Ring-hop spans from the communication scheduler are present.
        assert!(events.iter().any(|e| e["cat"] == "ring"), "per-hop ring events expected");
    }

    #[test]
    fn ring_hop_spans_nest_inside_their_phase() {
        let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
        let mut prog = transpim_dataflow::ir::Program::new();
        prog.push(Step::RingBroadcast {
            banks: BankRange { start: 0, count: 8 },
            bytes_per_hop: 256,
            repeat: 3,
            parallel: 1,
        });
        let chrome = ChromeTraceSink::shared();
        ex.run_with_sink(&prog, SinkHandle::from_shared(chrome.clone()));
        let sink = chrome.borrow();
        let spans: Vec<_> = sink
            .sorted_events()
            .into_iter()
            .filter(|e| e.ph == "X" && e.cat != "__metadata")
            .collect();
        let phase = spans.iter().find(|e| e.cat == "data-movement").expect("phase span");
        let phase_end = phase.ts + phase.dur.unwrap_or(0.0);
        let hops: Vec<_> = spans.iter().filter(|e| e.cat == "ring").collect();
        assert!(!hops.is_empty());
        for h in &hops {
            let end = h.ts + h.dur.unwrap_or(0.0);
            assert!(
                h.ts >= phase.ts - 1e-9 && end <= phase_end + 1e-9,
                "hop [{}, {end}] escapes phase [{}, {phase_end}]",
                h.ts,
                phase.ts,
            );
        }
    }

    #[test]
    fn repeated_ring_topologies_collapse_to_summary_spans() {
        // The decoder prices the same ring/tree topology thousands of
        // times; only the first occurrence may emit per-hop detail or the
        // trace size (and traced-run cost) grows with the step count.
        let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
        let mut prog = transpim_dataflow::ir::Program::new();
        let banks = BankRange { start: 0, count: 8 };
        for bytes in [256, 512, 1024] {
            prog.push(Step::RingBroadcast { banks, bytes_per_hop: bytes, repeat: 1, parallel: 1 });
            prog.push(Step::PairwiseReduceTree { banks, bytes, bits: 16, elems: 64, parallel: 1 });
        }
        let chrome = ChromeTraceSink::shared();
        ex.run_with_sink(&prog, SinkHandle::from_shared(chrome.clone()));
        let sink = chrome.borrow();
        let events = sink.sorted_events();
        let hop_count = events.iter().filter(|e| e.name.starts_with("hop ")).count();
        // One detailed exemplar per topology: 8 ring hops (full ring
        // round) + 7 tree hops (4 + 2 + 1 halving levels).
        assert_eq!(hop_count, 15, "per-hop detail must not repeat per occurrence");
        assert_eq!(events.iter().filter(|e| e.name == "ring").count(), 2);
        assert_eq!(events.iter().filter(|e| e.name == "reduce-tree").count(), 2);
    }

    fn decode_workload() -> Workload {
        let mut w = Workload::pubmed();
        w.model.encoder_layers = 1;
        w.model.decoder_layers = 2;
        w.decode_len = 12;
        w.seq_len = 128;
        w
    }

    #[test]
    fn compressed_pricing_matches_unrolled_bitwise() {
        // The compiled decode loop arrives as `Step::Repeat`; pricing it
        // must be indistinguishable — bit for bit, scoped and total — from
        // pricing the unrolled step sequence, on every architecture and
        // both dataflows.
        let w = decode_workload();
        for kind in ArchKind::ALL {
            let arch = ArchConfig::new(kind);
            let banks = arch.hbm.geometry.total_banks();
            for token in [true, false] {
                let prog = if token {
                    token_flow::compile(&w, banks)
                } else {
                    layer_flow::compile(&w, banks)
                };
                let unrolled = prog.unroll();
                assert_eq!(prog.unrolled_len(), unrolled.len() as u64);
                if token {
                    assert!(prog.len() < unrolled.len(), "{kind}: decode loop should compress");
                }
                let (a, sa) = Executor::new(arch.clone()).run(&prog);
                let (b, sb) = Executor::new(arch.clone()).run(&unrolled);
                assert_eq!(a, b, "{kind}: compressed stats must equal unrolled stats");
                assert_eq!(sa, sb, "{kind}: scoped stats must agree too");
            }
        }
    }

    #[test]
    fn traced_compressed_matches_traced_unrolled() {
        // With collapsing off (the default), tracing a compressed program
        // walks every iteration and must produce a byte-identical trace
        // document.
        let w = decode_workload();
        let arch = ArchConfig::new(ArchKind::TransPim);
        let banks = arch.hbm.geometry.total_banks();
        let prog = token_flow::compile(&w, banks);
        let unrolled = prog.unroll();
        let (s1, sc1, t1) = Executor::new(arch.clone()).run_traced(&prog).unwrap();
        let (s2, sc2, t2) = Executor::new(arch).run_traced(&unrolled).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(sc1, sc2);
        assert_eq!(t1, t2, "default tracing must not observe the compression");
    }

    #[test]
    fn collapse_repeats_bounds_trace_without_touching_stats() {
        let body = vec![
            Step::scope("dec.attn"),
            Step::RingBroadcast {
                banks: BankRange { start: 0, count: 8 },
                bytes_per_hop: 256,
                repeat: 2,
                parallel: 1,
            },
            Step::MemTouch { bytes_per_bank: 64, total_bytes: 512 },
        ];
        // Affine growth of the hop payload, as KV rings grow per token.
        let delta = vec![
            StepDelta::none(),
            StepDelta { d: [16, 0, 0], len: 2 },
            StepDelta { d: [0, 0, 0], len: 2 },
        ];
        let mut prog = transpim_dataflow::ir::Program::new();
        prog.push(Step::repeat(40, body, delta));

        let run = |collapse: bool| {
            let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
            ex.set_collapse_repeats(collapse);
            let chrome = ChromeTraceSink::shared();
            let stats = ex.run_with_sink(&prog, SinkHandle::from_shared(chrome.clone()));
            let events = chrome.borrow().sorted_events();
            (stats, events)
        };
        let (full_stats, full_events) = run(false);
        let (col_stats, col_events) = run(true);
        assert_eq!(full_stats, col_stats, "collapsing is a tracing concern only");
        assert!(
            col_events.iter().any(|e| e.name == "repeat x39"),
            "summary span should carry the collapsed count"
        );
        assert!(
            col_events.len() * 4 < full_events.len(),
            "collapsed trace ({}) should be far smaller than full ({})",
            col_events.len(),
            full_events.len()
        );
    }
}
