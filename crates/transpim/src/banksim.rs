//! Bit-accurate bank simulation of the Figure 8 datapath.
//!
//! Everything the paper's Figure 8 describes, executed end-to-end at the
//! bit-plane level for one bank:
//!
//! 1. **Vector multiplication** (Figure 8(a)): per attended key, the query
//!    and key vectors are laid out column-wise and multiplied point-wise by
//!    the in-array majority ALU; the ACU adder tree then reduces the
//!    products into the attention score.
//! 2. **Softmax** (Figure 8(b)): the scores are exponentiated with a
//!    Horner-form Taylor series computed by PIM multiply/add at fixed
//!    point, the row sum goes through the adder tree, the reciprocal
//!    through the pipelined divider, and the probabilities are the
//!    PIM product of exponents and the replicated reciprocal.
//! 3. **Weighted values**: per output dimension, probabilities ×
//!    value-column products reduce through the adder tree again.
//!
//! The result must match a plain f32 attention computation within
//! fixed-point tolerance — the strongest evidence that the cost model
//! elsewhere in this crate prices *working* hardware.
//!
//! The demonstration uses unsigned fixed point (the in-array shift-and-add
//! multiplier is unsigned; real TransPIM handles signs the same way GOBO
//!-style quantizers do, with offset encodings). Inputs are therefore
//! expected in `[0, 1)`.

use transpim_acu::adder_tree::tree_reduce;
use transpim_acu::divider::recip_q16;
use transpim_pim::{AapTrace, BitPlanes, PimAlu};

/// Fractional bits of the activation format (Q0.8).
const ACT_FRAC: u32 = 8;
/// Fractional bits of the Softmax fixed-point format (Q4.12).
const SM_FRAC: u32 = 12;
/// Width of the Softmax format.
const SM_BITS: u32 = 16;
/// Horner rounds of the Figure 8(b) Taylor exponent.
const TAYLOR_ORDER: u32 = 5;

/// Result of a bit-accurate attention-row execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BankSimResult {
    /// The attention output row.
    pub output: Vec<f32>,
    /// Attention probabilities (post-Softmax).
    pub probs: Vec<f32>,
    /// In-array command count actually issued by the run.
    pub aaps: u64,
}

/// Quantize `[0,1)`-ranged reals to unsigned fixed point with `frac` bits.
/// Rounding saturates at the largest representable code (values above
/// `1 - 2^-(frac+1)` would otherwise round up to `2^frac`, which needs one
/// more bit-plane than the datapath carries).
fn quantize(xs: &[f32], frac: u32) -> Vec<u64> {
    let max_code = (1u64 << frac) - 1;
    xs.iter()
        .map(|&x| {
            assert!((0.0..1.0).contains(&x), "bank sim takes values in [0,1), got {x}");
            ((f64::from(x) * (1u64 << frac) as f64).round() as u64).min(max_code)
        })
        .collect()
}

fn to_f32(v: u64, frac: u32) -> f32 {
    v as f32 / (1u64 << frac) as f32
}

/// Fixed-point Taylor exponent of a non-negative Q4.12 value, evaluated
/// with the in-array ALU exactly as Figure 8(b) step 1 does: `order`
/// multiply-truncate-add rounds of Horner's rule, with the `1/k`
/// coefficients pre-scaled into Q0.12 constants.
fn exp_taylor_planes(alu: &mut PimAlu, x: &BitPlanes, order: u32) -> BitPlanes {
    let lanes = x.lanes();
    let one = BitPlanes::from_values(&vec![1u64 << SM_FRAC; lanes], SM_BITS);
    let mut acc = one.clone();
    for k in (1..=order).rev() {
        // x/k in Q4.12: multiply by the constant 1/k (Q0.12), truncate.
        let inv_k = BitPlanes::from_values(
            &vec![((1u64 << SM_FRAC) as f64 / f64::from(k)).round() as u64; lanes],
            SM_BITS,
        );
        let x_over_k = alu.mul(x, &inv_k).shifted_down(SM_FRAC).resized(SM_BITS);
        let prod = alu.mul(&x_over_k, &acc).shifted_down(SM_FRAC).resized(SM_BITS);
        acc = alu.add(&one, &prod).resized(SM_BITS);
    }
    acc
}

/// Execute one query's attention over `keys`/`values` entirely with the
/// hardware algorithms: in-array multiplies, adder-tree reductions, the
/// Taylor exponent, and the divider reciprocal.
///
/// `q` is length-D; `keys` and `values` are `N × D` (row per attended
/// token). All values must lie in `[0, 1)`.
///
/// # Panics
///
/// Panics on empty inputs, mismatched dimensions, or out-of-range values.
pub fn attention_row(q: &[f32], keys: &[Vec<f32>], values: &[Vec<f32>]) -> BankSimResult {
    let d = q.len();
    let n = keys.len();
    assert!(d > 0 && n > 0, "empty attention inputs");
    assert!(keys.iter().all(|k| k.len() == d), "key width mismatch");
    assert_eq!(values.len(), n, "key/value count mismatch");
    assert!(values.iter().all(|v| v.len() == d), "value width mismatch");

    let mut alu = PimAlu::new();
    let qf = quantize(q, ACT_FRAC);
    let q_planes = BitPlanes::from_values(&qf, ACT_FRAC);

    // (a) Scores: per key, point-wise products over the D lanes reduce
    // through the adder tree. Scale by 1/D to keep the exponent argument
    // in Taylor range (standing in for the 1/√d_h score scaling).
    let mut scores_q = Vec::with_capacity(n); // Q4.12
    for key in keys {
        let k_planes = BitPlanes::from_values(&quantize(key, ACT_FRAC), ACT_FRAC);
        let products = alu.mul(&q_planes, &k_planes); // Q0.16 per lane
        let dot = tree_reduce(&products.to_values()); // exact sum
                                                      // Q0.16 × D lanes → scale to Q4.12 and divide by D.
        let score = (dot / d as u128) >> (2 * ACT_FRAC - SM_FRAC);
        scores_q.push(score as u64);
    }

    // (b) Softmax: PIM Taylor exponent on the score lanes…
    let score_planes = BitPlanes::from_values(&scores_q, SM_BITS);
    let exps = exp_taylor_planes(&mut alu, &score_planes, TAYLOR_ORDER);
    // …adder-tree row sum and divider reciprocal…
    let sum_q12 = tree_reduce(&exps.to_values()) as i64; // Q4.12
    let recip_q = recip_q16(sum_q12 << 4); // Q16.16 in, Q16.16 out
                                           // …replicated across the row and multiplied back in the array.
    let recip_q12 = ((recip_q >> 4).max(1)) as u64; // back to Q4.12
    let recip_planes = BitPlanes::from_values(&vec![recip_q12; n], SM_BITS);
    let probs_planes = alu.mul(&exps, &recip_planes).shifted_down(SM_FRAC).resized(SM_BITS);
    let probs: Vec<f32> = probs_planes.to_values().iter().map(|&p| to_f32(p, SM_FRAC)).collect();

    // (c) Weighted values: per output dimension, probability × value
    // products over the N lanes reduce through the adder tree.
    let mut output = Vec::with_capacity(d);
    for dim in 0..d {
        let col: Vec<f32> = values.iter().map(|v| v[dim]).collect();
        let col_planes = BitPlanes::from_values(&quantize(&col, ACT_FRAC), ACT_FRAC);
        let products = alu.mul(&probs_planes, &col_planes); // Q4.20
        let acc = tree_reduce(&products.to_values());
        output.push(acc as f32 / (1u64 << (SM_FRAC + ACT_FRAC)) as f32);
    }

    BankSimResult { output, probs, aaps: alu.trace().aaps }
}

/// f32 reference of the same computation (scaled-dot-product attention with
/// the 1/D score scaling and exact softmax) for tolerance comparison.
pub fn attention_row_reference(q: &[f32], keys: &[Vec<f32>], values: &[Vec<f32>]) -> Vec<f32> {
    let d = q.len();
    let scores: Vec<f32> = keys
        .iter()
        .map(|k| q.iter().zip(k).map(|(&a, &b)| a * b).sum::<f32>() / d as f32)
        .collect();
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|e| e / sum).collect();
    (0..d).map(|dim| probs.iter().zip(values).map(|(&p, v)| p * v[dim]).sum()).collect()
}

/// The in-array command count of a run (exposed for the cost-model
/// cross-check: the functional execution and the analytic AAP formulas
/// must track each other).
pub fn trace_of(result: &BankSimResult) -> AapTrace {
    AapTrace { aaps: result.aaps }
}

/// Analytic AAP count of [`attention_row`] over `n` keys of width `d`,
/// composed from the ALU closed forms ([`transpim_pim::alu::add_aaps`],
/// [`transpim_pim::alu::mul_aaps`]) mirroring the exact command sequence:
/// `n` Q0.8×Q0.8 score multiplies, `TAYLOR_ORDER` Horner rounds of two
/// Q4.12 multiplies plus one add, one probability multiply, and `d` Q4.12 ×
/// Q0.8 weighted-value multiplies. Adder-tree reductions and the divider
/// reciprocal run in the ACU, not the array, so they issue no AAPs.
///
/// The differential fuzz harness pins `attention_row`'s traced count to
/// this prediction for every shape — the bit-accurate datapath and the
/// analytic cost model must never drift apart.
pub fn predicted_aaps(n: usize, d: usize) -> u64 {
    use transpim_pim::alu::{add_aaps, mul_aaps};
    let scores = n as u64 * mul_aaps(ACT_FRAC, ACT_FRAC);
    let taylor = u64::from(TAYLOR_ORDER) * (2 * mul_aaps(SM_BITS, SM_BITS) + add_aaps(SM_BITS));
    let probs = mul_aaps(SM_BITS, SM_BITS);
    let weighted = d as u64 * mul_aaps(SM_BITS, ACT_FRAC);
    scores + taylor + probs + weighted
}

/// Documented fixed-point error budget of [`attention_row`] against
/// [`attention_row_reference`], per output element, for `n` attended keys.
///
/// The dominant terms: the reciprocal is truncated to Q4.12, which costs up
/// to `2⁻¹² · sum ≈ n·e·2⁻¹²` of relative probability error; each of the
/// `n` probabilities is floor-truncated to Q4.12 after the normalization
/// multiply (up to `n·2⁻¹²` absolute across a row); activations quantize to
/// Q0.8 (±2⁻⁹); and the order-5 Taylor exponent is short by at most
/// `e/6! ≈ 0.0038` relative at the top of its `[0,1)` argument range. A
/// constant floor plus a per-key linear term covers all of them with
/// ~2× headroom.
pub fn tolerance(n: usize) -> f32 {
    0.02 + n as f32 * 1.2e-3
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(seed: u64, n: usize, d: usize) -> (Vec<f32>, Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen_vec =
            |len: usize| -> Vec<f32> { (0..len).map(|_| rng.gen_range(0.05f32..0.95)).collect() };
        let q = gen_vec(d);
        let keys = (0..n).map(|_| gen_vec(d)).collect();
        let values = (0..n).map(|_| gen_vec(d)).collect();
        (q, keys, values)
    }

    #[test]
    fn bit_accurate_attention_matches_reference() {
        for seed in 0..5 {
            let (q, k, v) = random_case(seed, 8, 16);
            let hw = attention_row(&q, &k, &v);
            let reference = attention_row_reference(&q, &k, &v);
            for (i, (&h, &r)) in hw.output.iter().zip(&reference).enumerate() {
                assert!((h - r).abs() < 0.02, "seed {seed} dim {i}: hw {h} vs ref {r}");
            }
            assert!(hw.aaps > 0, "the run must have issued in-array commands");
        }
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let (q, k, v) = random_case(42, 12, 8);
        let hw = attention_row(&q, &k, &v);
        let sum: f32 = hw.probs.iter().sum();
        assert!((sum - 1.0).abs() < 0.02, "probs sum {sum}");
        assert!(hw.probs.iter().all(|&p| (0.0..=1.0 + 1e-3).contains(&p)));
    }

    #[test]
    fn uniform_keys_give_uniform_attention() {
        let d = 8;
        let q: Vec<f32> = vec![0.5; d];
        let keys = vec![vec![0.3f32; d]; 4];
        let values: Vec<Vec<f32>> = (0..4).map(|i| vec![0.2 * (i as f32 + 1.0) / 4.0; d]).collect();
        let hw = attention_row(&q, &keys, &values);
        // Equal scores → each prob ≈ 1/4, output ≈ mean of the value rows.
        for &p in &hw.probs {
            assert!((p - 0.25).abs() < 0.01, "prob {p}");
        }
        let expect = (0.05 + 0.10 + 0.15 + 0.20) / 4.0;
        for &o in &hw.output {
            assert!((o - expect).abs() < 0.01, "out {o} vs {expect}");
        }
    }

    #[test]
    fn aap_count_grows_with_problem_size() {
        let (q1, k1, v1) = random_case(1, 4, 8);
        let (q2, k2, v2) = random_case(1, 16, 8);
        let small = attention_row(&q1, &k1, &v1).aaps;
        let large = attention_row(&q2, &k2, &v2).aaps;
        assert!(large > small, "more keys must issue more commands: {small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "in [0,1)")]
    fn out_of_range_inputs_rejected() {
        attention_row(&[1.5], &[vec![0.5]], &[vec![0.5]]);
    }
}
