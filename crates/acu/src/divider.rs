//! The ACU's constant divider: a 3-stage pipelined fixed-point reciprocal
//! unit used by the Softmax rewrite of Section IV-A2.
//!
//! TransPIM rewrites Softmax as `(1/Σⱼ e^{S_ij}) · e^{S_ij}` so the only
//! division is one reciprocal per score row, computed here while the adder
//! tree accumulates the next row. The functional model implements the
//! classic Newton–Raphson reciprocal (`y ← y(2 − xy)`) in Q16.16 — one
//! iteration per pipeline stage — and the property tests bound its error.

use serde::{Deserialize, Serialize};

/// Number of fractional bits of the fixed-point format.
pub const Q: u32 = 16;
const TWO: i64 = 2 << Q;

fn qmul(a: i64, b: i64) -> i64 {
    (a * b) >> Q
}

/// Fixed-point Q16.16 reciprocal of a positive Q16.16 value, computed with
/// three Newton–Raphson iterations from a linear seed — the operation the
/// divider's three pipeline stages perform.
///
/// # Panics
///
/// Panics if `x <= 0` (the Softmax denominator is a sum of positive
/// exponentials, so the hardware never sees a non-positive input).
///
/// # Example
///
/// ```
/// use transpim_acu::divider::{recip_q16, Q};
/// let four = 4 << Q;
/// let r = recip_q16(four);
/// assert!((r - (1 << (Q - 2))).abs() <= 2); // 0.25 within 2 ulp
/// ```
pub fn recip_q16(x: i64) -> i64 {
    assert!(x > 0, "reciprocal input must be positive, got {x}");
    // Normalize x into [0.5, 1): x = m · 2^e with m in [0.5, 1).
    let bits = 64 - x.leading_zeros() as i32; // position of MSB
    let e = bits - Q as i32; // x ≈ m · 2^e
    let m = if e >= 0 { x >> e } else { x << -e }; // Q16.16 in [0.5, 1)

    // Seed: y0 = 48/17 − 32/17·m (minimax linear estimate for [0.5, 1)).
    let c48_17 = (48 << Q) / 17;
    let c32_17 = (32 << Q) / 17;
    let mut y = c48_17 - qmul(c32_17, m);

    // Three pipelined Newton–Raphson stages: y ← y(2 − m·y).
    for _ in 0..3 {
        y = qmul(y, TWO - qmul(m, y));
    }

    // Denormalize: 1/x = (1/m) · 2^{-e}.
    if e >= 0 {
        y >> e
    } else {
        y << -e
    }
}

/// Timing model of the divider: 3-stage pipeline at the ACU clock
/// (500 MHz), one reciprocal per cycle at full throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DividerModel {
    /// Pipeline depth (Table I: 3).
    pub stages: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Energy per reciprocal in pJ (Table II divider power at 500 MHz
    /// amortized per operation).
    pub energy_pj: f64,
}

impl Default for DividerModel {
    fn default() -> Self {
        // Table II: divider power 0.7 mW at 500 MHz → 1.4 pJ per cycle.
        Self { stages: 3, clock_ghz: 0.5, energy_pj: 1.4 }
    }
}

impl DividerModel {
    /// Latency of computing `count` reciprocals back-to-back in one
    /// divider, in nanoseconds (pipeline fill + one per cycle).
    pub fn latency_ns(&self, count: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        (f64::from(self.stages) + (count - 1) as f64) / self.clock_ghz
    }

    /// Energy of `count` reciprocals, in pJ.
    pub fn energy_pj(&self, count: u64) -> f64 {
        count as f64 * self.energy_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn to_f(x: i64) -> f64 {
        x as f64 / f64::from(1u32 << Q)
    }

    #[test]
    fn exact_powers_of_two_within_2_ulp() {
        assert!((recip_q16(1 << Q) - (1 << Q)).abs() <= 2); // 1/1
        assert!((recip_q16(2 << Q) - (1 << (Q - 1))).abs() <= 2); // 1/2
        assert!((recip_q16(1 << (Q - 3)) - (8 << Q)).abs() <= 16); // 1/(1/8) = 8
    }

    #[test]
    fn typical_softmax_denominators() {
        // Softmax row sums for 512 tokens land in the hundreds–thousands.
        // The Q16.16 output quantizes small reciprocals, so the bound is a
        // couple of output ulps plus the Newton–Raphson residue.
        let ulp = 1.0 / f64::from(1u32 << Q);
        for denom in [3.0f64, 17.5, 511.0, 4096.25] {
            let x = (denom * f64::from(1u32 << Q)) as i64;
            let r = to_f(recip_q16(x));
            let expect = 1.0 / denom;
            let tol = 3.0 * ulp + 1e-3 * expect;
            assert!((r - expect).abs() < tol, "1/{denom}: got {r}, want {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero() {
        recip_q16(0);
    }

    #[test]
    fn divider_pipeline_timing() {
        let d = DividerModel::default();
        assert_eq!(d.latency_ns(0), 0.0);
        assert!((d.latency_ns(1) - 6.0).abs() < 1e-9); // 3 cycles at 2 ns
        assert!((d.latency_ns(101) - (3.0 + 100.0) * 2.0).abs() < 1e-9);
        assert!((d.energy_pj(10) - 14.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn reciprocal_error_bounded(x in 1i64..(1i64 << 28)) {
            // Q16.16 inputs from 2^-16 up to 4096: absolute error bounded by
            // a few output ulps plus a small relative Newton–Raphson residue.
            let r = recip_q16(x);
            let expect = 1.0 / to_f(x);
            let got = to_f(r);
            let ulp = 1.0 / f64::from(1u32 << Q);
            let tol = 4.0 * ulp + 1e-3 * expect.abs();
            prop_assert!((got - expect).abs() <= tol,
                "1/{} = {expect}, got {got}", to_f(x));
        }
    }
}
