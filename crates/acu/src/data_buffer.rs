//! The re-configurable per-bank data buffer (Section IV-B1).
//!
//! The buffer is 8 × 256-bit shift registers (2 Kb). It overcomes the two
//! defects of RowClone FPM: it supports *fine-grained partial* copies, and
//! it can move data *between different subarrays* of a bank without the
//! shared bus. It accepts 8-bit input from the ACU or 256-bit input from
//! the sense amplifiers, and can replicate a value across a row (used to
//! spread the Softmax reciprocal over 256 columns, Figure 8(b) steps 3–4).

use serde::{Deserialize, Serialize};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::timing::TimingParams;

/// Functional + timing model of the data buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataBufferModel {
    timing: TimingParams,
    energy: EnergyParams,
    /// Buffer rows (Table I: 8).
    pub rows: u32,
    /// Bits per buffer row (Table I: 256).
    pub width_bits: u32,
}

impl DataBufferModel {
    /// Build the model with the Table I buffer organization.
    pub fn new(timing: TimingParams, energy: EnergyParams) -> Self {
        Self { timing, energy, rows: 8, width_bits: 256 }
    }

    /// Buffer capacity in bits (2 Kb per Table I).
    pub fn capacity_bits(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.width_bits)
    }

    /// Latency of moving `bytes` between two subarrays of the same bank
    /// through the buffer: stream 256-bit beats from the source sense amps
    /// into the buffer, then back out into the destination sense amps.
    /// Each direction needs a row activation per touched row.
    pub fn inter_subarray_copy_ns(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let t = &self.timing;
        let beats = (bytes * 8).div_ceil(u64::from(self.width_bits)) as f64;
        let chunks = (bytes * 8).div_ceil(self.capacity_bits()) as f64;
        // Per chunk: open source row, fill buffer, open destination row,
        // drain buffer, restore.
        chunks * 2.0 * t.t_rc + 2.0 * beats * t.t_ccd_l
    }

    /// Energy of the inter-subarray copy in pJ: activations, sense-amp
    /// traversals, and two buffer accesses per 256-bit beat.
    pub fn inter_subarray_copy_pj(&self, bytes: u64) -> f64 {
        let chunks = (bytes * 8).div_ceil(self.capacity_bits()) as f64;
        let bits = (bytes * 8) as f64;
        let beats = (bytes * 8).div_ceil(u64::from(self.width_bits)) as f64;
        chunks * 2.0 * self.energy.e_act
            + 2.0 * bits * self.energy.e_pre_gsa
            + 2.0 * beats * self.energy.e_buffer
    }

    /// Latency of replicating one `value_bits`-wide value (received from the
    /// ACU over the 8-bit port) across `copies` columns and writing the
    /// replicas back through the sense amps in bit-serial order — the
    /// Softmax reciprocal spreading step.
    pub fn replicate_ns(&self, value_bits: u32, copies: u32) -> f64 {
        let t = &self.timing;
        // Receive the value 8 bits per ACU cycle (2 ns), then write
        // `value_bits` planes back, each plane covering `copies` columns in
        // `width_bits`-wide beats.
        let recv = f64::from(value_bits.div_ceil(8)) * 2.0;
        let beats_per_plane = f64::from(copies.div_ceil(self.width_bits));
        recv + t.t_rcd + f64::from(value_bits) * beats_per_plane * t.t_ccd_l + t.t_rp()
    }

    /// Energy of the replication in pJ.
    pub fn replicate_pj(&self, value_bits: u32, copies: u32) -> f64 {
        let bits = f64::from(value_bits) * f64::from(copies);
        let beats = (bits / f64::from(self.width_bits)).ceil();
        self.energy.e_act + bits * self.energy.e_pre_gsa + beats * self.energy.e_buffer
    }
}

/// Functional shift-register buffer used by the tests and the functional
/// co-simulation: an 8×256 b store with ACU-side (8-bit) and array-side
/// (256-bit) ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataBuffer {
    rows: Vec<Vec<u8>>, // 8 rows × 32 bytes
    cursor: usize,
}

impl Default for DataBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl DataBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self { rows: vec![vec![0u8; 32]; 8], cursor: 0 }
    }

    /// Push one byte from the ACU port; bytes fill rows in order and wrap.
    pub fn push_acu_byte(&mut self, b: u8) {
        let row = (self.cursor / 32) % 8;
        let col = self.cursor % 32;
        self.rows[row][col] = b;
        self.cursor = (self.cursor + 1) % (8 * 32);
    }

    /// Load a full 256-bit row from the sense amplifiers.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 8` or `data.len() != 32`.
    pub fn load_row(&mut self, row: usize, data: &[u8]) {
        assert!(row < 8, "row {row} out of range");
        assert_eq!(data.len(), 32, "a buffer row is 32 bytes");
        self.rows[row].copy_from_slice(data);
    }

    /// Read a full row back.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 8`.
    pub fn row(&self, row: usize) -> &[u8] {
        assert!(row < 8, "row {row} out of range");
        &self.rows[row]
    }

    /// Replicate the first byte of row 0 across the entire row (the
    /// hardware's reciprocal-spreading configuration).
    pub fn replicate_first_byte(&mut self) {
        let b = self.rows[0][0];
        self.rows[0].fill(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DataBufferModel {
        DataBufferModel::new(TimingParams::default(), EnergyParams::default())
    }

    #[test]
    fn capacity_is_2kb() {
        assert_eq!(model().capacity_bits(), 2048);
    }

    #[test]
    fn copy_zero_bytes_is_free() {
        assert_eq!(model().inter_subarray_copy_ns(0), 0.0);
    }

    #[test]
    fn copy_cost_scales_with_chunks() {
        let m = model();
        let small = m.inter_subarray_copy_ns(256); // one chunk
        let large = m.inter_subarray_copy_ns(2560); // ten chunks
        assert!(large > 5.0 * small);
    }

    #[test]
    fn buffer_copy_beats_shared_bus_roundtrip() {
        // The point of the buffer: moving 2 Kb inside a bank should be much
        // cheaper than a bus round trip at 32 GB/s plus two row cycles each
        // way through the shared datapath.
        let m = model();
        let bus_ns = 2.0 * (256.0 / 32.0) + 4.0 * 45.0;
        assert!(m.inter_subarray_copy_ns(256) < bus_ns);
    }

    #[test]
    fn replicate_timing_positive_and_monotone() {
        let m = model();
        let one = m.replicate_ns(16, 256);
        let four = m.replicate_ns(16, 1024);
        assert!(one > 0.0 && four > one);
    }

    #[test]
    fn functional_buffer_roundtrip() {
        let mut b = DataBuffer::new();
        let data: Vec<u8> = (0..32).collect();
        b.load_row(3, &data);
        assert_eq!(b.row(3), &data[..]);
    }

    #[test]
    fn functional_acu_port_wraps() {
        let mut b = DataBuffer::new();
        for i in 0..(8 * 32 + 5) {
            b.push_acu_byte((i % 251) as u8);
        }
        // The 257th byte wrapped to row 0.
        assert_eq!(b.row(0)[0], ((8 * 32) % 251) as u8);
    }

    #[test]
    fn functional_replication() {
        let mut b = DataBuffer::new();
        b.push_acu_byte(0xAB);
        b.replicate_first_byte();
        assert!(b.row(0).iter().all(|&x| x == 0xAB));
    }
}
