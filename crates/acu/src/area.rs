//! Analytic area/power model seeded with the paper's Table II synthesis
//! results (65 nm Design Compiler, scaled to 22 nm, +50% DRAM-process
//! penalty).
//!
//! Table II reports, per bank (at `P_sub = 16`, `P_add = 4`):
//!
//! | unit | area (µm²) | power (mW) |
//! |---|---|---|
//! | adder tree | 59 432.1 | 25.1 |
//! | divider | 3 055.6 | 0.7 |
//! | data buffer | 2 660.4 | 3.8 |
//! | ring broadcast | 337.9 | 0.2 |
//! | others | 828.5 | 2.9 |
//!
//! and a total overhead of **2.15 mm²** per 8 GB HBM2 stack (53.15 mm²),
//! i.e. 4.0% — "far less than the 25% threshold". The design-space
//! exploration of Figure 13 scales the ACU-resident parts (adder trees,
//! divider) with `P_sub`, and the adder trees additionally with `P_add`.

use serde::{Deserialize, Serialize};

/// Table II per-bank component areas in µm² at the reference design point.
pub mod table2 {
    /// Adder-tree area per bank (µm²), `P_add = 4`.
    pub const ADDER_TREE_UM2: f64 = 59_432.1;
    /// Divider area per bank (µm²).
    pub const DIVIDER_UM2: f64 = 3_055.6;
    /// Data-buffer area per bank (µm²).
    pub const DATA_BUFFER_UM2: f64 = 2_660.4;
    /// Ring-broadcast-unit area per bank (µm²).
    pub const RING_BROADCAST_UM2: f64 = 337.9;
    /// Remaining control/overhead area per bank (µm²).
    pub const OTHERS_UM2: f64 = 828.5;

    /// Adder-tree power per bank (mW).
    pub const ADDER_TREE_MW: f64 = 25.1;
    /// Divider power per bank (mW).
    pub const DIVIDER_MW: f64 = 0.7;
    /// Data-buffer power per bank (mW).
    pub const DATA_BUFFER_MW: f64 = 3.8;
    /// Ring-broadcast power per bank (mW).
    pub const RING_BROADCAST_MW: f64 = 0.2;
    /// Other power per bank (mW).
    pub const OTHERS_MW: f64 = 2.9;

    /// Total TransPIM overhead per 8 GB stack (mm²).
    pub const OVERHEAD_MM2: f64 = 2.15;
    /// Die area of an 8 GB HBM2 stack (mm², CACTI-3DD at 22 nm).
    pub const HBM_8GB_MM2: f64 = 53.15;
}

/// Reference design point of Table II.
const REF_P_SUB: f64 = 16.0;
const REF_P_ADD: f64 = 4.0;

/// Area/power model parameterized by the two DSE knobs.
///
/// # Example
///
/// ```
/// use transpim_acu::AreaModel;
/// let m = AreaModel::new(16, 4);
/// assert!((m.overhead_fraction() - 0.040).abs() < 0.002); // the paper's 4.0%
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// ACUs per bank.
    pub p_sub: u32,
    /// Adder trees per ACU.
    pub p_add: u32,
}

impl AreaModel {
    /// Build the model for a `(P_sub, P_add)` design point.
    pub fn new(p_sub: u32, p_add: u32) -> Self {
        Self { p_sub, p_add }
    }

    fn sub_scale(&self) -> f64 {
        f64::from(self.p_sub) / REF_P_SUB
    }

    fn add_scale(&self) -> f64 {
        f64::from(self.p_add) / REF_P_ADD
    }

    /// TransPIM area overhead per 8 GB stack in mm². Component proportions
    /// follow Table II; ACU-resident parts scale with `P_sub`, adder trees
    /// additionally with `P_add`.
    pub fn overhead_mm2(&self) -> f64 {
        use table2::*;
        let ref_total =
            ADDER_TREE_UM2 + DIVIDER_UM2 + DATA_BUFFER_UM2 + RING_BROADCAST_UM2 + OTHERS_UM2;
        let scaled = ADDER_TREE_UM2 * self.sub_scale() * self.add_scale()
            + DIVIDER_UM2 * self.sub_scale()
            + DATA_BUFFER_UM2
            + RING_BROADCAST_UM2
            + OTHERS_UM2;
        OVERHEAD_MM2 * scaled / ref_total
    }

    /// Overhead as a fraction of the 8 GB HBM2 die area.
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_mm2() / table2::HBM_8GB_MM2
    }

    /// Whether the design stays under the 25% area threshold of He et al.
    /// that the paper cites as the DRAM-density red line.
    pub fn within_density_threshold(&self) -> bool {
        self.overhead_fraction() < 0.25
    }

    /// Peak power of the added logic per bank in mW, with the same scaling.
    pub fn unit_power_mw(&self) -> f64 {
        use table2::*;
        ADDER_TREE_MW * self.sub_scale() * self.add_scale()
            + DIVIDER_MW * self.sub_scale()
            + DATA_BUFFER_MW
            + RING_BROADCAST_MW
            + OTHERS_MW
    }

    /// Adder-tree share of the overhead area (the paper quotes 88%).
    pub fn adder_tree_share(&self) -> f64 {
        use table2::*;
        let at = ADDER_TREE_UM2 * self.sub_scale() * self.add_scale();
        let total =
            at + DIVIDER_UM2 * self.sub_scale() + DATA_BUFFER_UM2 + RING_BROADCAST_UM2 + OTHERS_UM2;
        at / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_matches_table2() {
        let m = AreaModel::new(16, 4);
        assert!((m.overhead_mm2() - 2.15).abs() < 1e-9);
        assert!((m.overhead_fraction() - 0.0404).abs() < 5e-4);
        assert!((m.adder_tree_share() - 0.88).abs() < 0.02);
        assert!(m.within_density_threshold());
    }

    #[test]
    fn p_sub_64_reaches_paper_dse_area() {
        // Figure 13(b): one ACU per subarray (P_sub = 64) costs ~15.8%.
        let m = AreaModel::new(64, 4);
        assert!((m.overhead_fraction() - 0.158).abs() < 0.02, "got {}", m.overhead_fraction());
        assert!(m.within_density_threshold());
    }

    #[test]
    fn area_monotone_in_both_knobs() {
        let base = AreaModel::new(16, 4).overhead_mm2();
        assert!(AreaModel::new(16, 8).overhead_mm2() > base);
        assert!(AreaModel::new(32, 4).overhead_mm2() > base);
        assert!(AreaModel::new(8, 4).overhead_mm2() < base);
        assert!(AreaModel::new(16, 1).overhead_mm2() < base);
    }

    #[test]
    fn power_at_reference_matches_component_sum() {
        let m = AreaModel::new(16, 4);
        assert!((m.unit_power_mw() - 32.7).abs() < 1e-9);
    }
}
