//! Ring broadcast units and the slotted hop scheduler (Section IV-B2,
//! Figure 9).
//!
//! A *ring step* makes every active bank copy its current shard to its ring
//! neighbor. With the TransPIM broadcast units, intra-group hops ride
//! dedicated neighbor links and cross-group hops occupy only the two
//! adjacent bank-group bus segments, so disjoint hops overlap; on the
//! original HBM datapath every hop serializes on the shared channel bus.
//! The paper's example (2 bank groups × 4 banks) costs 3 T with the
//! hardware and 8 T without — [`schedule_hops`] reproduces both, and the
//! same scheduler also places the decoder's pairwise partial-sum reduction
//! hops and arbitrary transfer sets.

use crate::data_buffer::DataBufferModel;
use serde::{Deserialize, Serialize};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::engine::tracks;
use transpim_hbm::geometry::{BankId, HbmGeometry};
use transpim_hbm::resource::ResourceMap;
use transpim_obs::{CounterEvent, SinkHandle, SpanEvent};

/// One bank-to-bank transfer of `bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// Source bank.
    pub src: BankId,
    /// Destination bank.
    pub dst: BankId,
    /// Payload size.
    pub bytes: u64,
}

/// Result of scheduling a set of hops.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Makespan in nanoseconds.
    pub latency_ns: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total bytes moved.
    pub bytes: f64,
    /// Number of time slots used.
    pub slots: u32,
}

/// Energy model for bank-to-bank and broadcast transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferCostModel {
    geometry: HbmGeometry,
    energy: EnergyParams,
    /// Whether transfers pass through the broadcast/data buffers (costs
    /// buffer energy, enables the fast paths).
    pub buffered: bool,
}

impl TransferCostModel {
    /// Build the model.
    pub fn new(geometry: HbmGeometry, energy: EnergyParams, buffered: bool) -> Self {
        Self { geometry, energy, buffered }
    }

    /// Energy of one bank-to-bank hop of `bytes`: read the source rows,
    /// traverse the datapath, write the destination rows.
    pub fn hop_energy_pj(&self, bytes: u64) -> f64 {
        let rows = bytes.div_ceil(u64::from(self.geometry.row_bytes).max(1)) as f64;
        let bits = (bytes * 8) as f64;
        let mut pj = 2.0 * rows * self.energy.e_act // source read + destination write
            + 2.0 * bits * (self.energy.e_pre_gsa + self.energy.e_post_gsa)
            + bits * self.energy.e_io;
        if self.buffered {
            // Through both broadcast buffers, one access per 256-bit beat.
            pj += 2.0 * (bits / 256.0).ceil() * self.energy.e_buffer;
        }
        pj
    }

    /// Energy of writing `bytes` into one bank (broadcast receive).
    pub fn bank_write_energy_pj(&self, bytes: u64) -> f64 {
        let rows = bytes.div_ceil(u64::from(self.geometry.row_bytes).max(1)) as f64;
        rows * self.energy.e_act + (bytes * 8) as f64 * self.energy.e_pre_gsa
    }
}

/// One hop as placed by the slotted scheduler: which slot it landed in and
/// when it transfers, relative to the start of the scheduled set. Retained
/// for trace emission — a Figure 9 schedule rendered from these placements
/// shows the 3-slot (with links) vs 8-slot (without) structure directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopPlacement {
    /// Source bank.
    pub src: BankId,
    /// Destination bank.
    pub dst: BankId,
    /// Slot index (0-based) the hop was placed in.
    pub slot: u32,
    /// Slot start time in nanoseconds.
    pub start_ns: f64,
    /// The hop's own transfer time in nanoseconds (its slot lasts at least
    /// this long; the slot boundary is set by the slowest member).
    pub dur_ns: f64,
}

/// Schedule `hops` into conflict-free time slots and return the makespan.
///
/// Within a slot, no two hops may share a resource (banks, links, buses —
/// as routed by `map`). Hops are considered in a priority order that
/// reproduces the paper's Figure 9 schedule: hops occupying more contended
/// resources first, then intra-group hops interleaved so neighbor chains do
/// not serialize through their shared endpoint banks.
pub fn schedule_hops(map: &ResourceMap, xfer: &TransferCostModel, hops: &[Hop]) -> ScheduleResult {
    schedule_hops_placed(map, xfer, hops).0
}

/// [`schedule_hops`] with the per-hop [`HopPlacement`]s retained, in the
/// scheduler's placement order.
pub fn schedule_hops_placed(
    map: &ResourceMap,
    xfer: &TransferCostModel,
    hops: &[Hop],
) -> (ScheduleResult, Vec<HopPlacement>) {
    if hops.is_empty() {
        return (ScheduleResult::default(), Vec::new());
    }
    let bpg = map.geometry().banks_per_group;
    let mut order: Vec<usize> = (0..hops.len()).collect();
    let routed: Vec<_> = hops.iter().map(|h| map.route(h.src, h.dst)).collect();
    order.sort_by_key(|&i| {
        let h = &hops[i];
        let pos = h.src.0 % bpg;
        (usize::MAX - routed[i].resources.len(), pos % 2, pos, h.src.0)
    });

    let mut placements = Vec::with_capacity(hops.len());
    let mut remaining: Vec<usize> = order;
    let mut latency = 0.0;
    let mut slots = 0u32;
    while !remaining.is_empty() {
        let mut used = std::collections::HashSet::new();
        let mut slot_dur = 0.0f64;
        let mut next = Vec::new();
        for &i in &remaining {
            let route = &routed[i];
            if route.resources.iter().any(|r| used.contains(r)) {
                next.push(i);
                continue;
            }
            for r in &route.resources {
                used.insert(*r);
            }
            let dur = route.transfer_ns(hops[i].bytes as f64);
            slot_dur = slot_dur.max(dur);
            placements.push(HopPlacement {
                src: hops[i].src,
                dst: hops[i].dst,
                slot: slots,
                start_ns: latency,
                dur_ns: dur,
            });
        }
        latency += slot_dur;
        slots += 1;
        remaining = next;
    }

    let energy = hops.iter().map(|h| xfer.hop_energy_pj(h.bytes)).sum();
    let bytes = hops.iter().map(|h| h.bytes as f64).sum();
    (ScheduleResult { latency_ns: latency, energy_pj: energy, bytes, slots }, placements)
}

/// Emit one span per placed hop to `sink`, on the source bank's resource
/// track, offset to `base_ns` and stretched by `scale` (the engine's
/// refresh factor, so hop spans nest inside their phase span). The Figure 9
/// 3T-vs-8T schedule is directly visible from these events in a trace
/// viewer: the `slot` argument and the span starts group hops into slots.
pub fn emit_hop_events(
    sink: &SinkHandle,
    map: &ResourceMap,
    base_ns: f64,
    scale: f64,
    placements: &[HopPlacement],
) {
    if !sink.is_enabled() {
        return;
    }
    for p in placements {
        sink.span(
            SpanEvent::new(
                format!("hop {}->{}", p.src.0, p.dst.0),
                "ring",
                tracks::resource(map.bank(p.src)),
                base_ns + p.start_ns * scale,
                p.dur_ns * scale,
            )
            .with_arg("slot", p.slot)
            .with_arg("dst_bank", p.dst.0),
        );
    }
    // Per-bank occupancy over this transfer set: the fraction of the
    // makespan each source bank spends driving its link.
    let makespan = placements.iter().map(|p| p.start_ns + p.dur_ns).fold(0.0, f64::max);
    if makespan > 0.0 {
        let mut busy: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for p in placements {
            *busy.entry(p.src.0).or_default() += p.dur_ns;
        }
        for (bank, busy_ns) in busy {
            sink.counter(CounterEvent::sample(
                format!("util.bank{bank}"),
                tracks::resource(map.bank(BankId(bank))),
                base_ns,
                "busy_frac",
                busy_ns / makespan,
            ));
        }
    }
}

/// Hops of one ring-broadcast step over `banks` (each bank sends `bytes` to
/// its successor, the last wrapping to the first).
pub fn ring_step_hops(banks: &[BankId], bytes: u64) -> Vec<Hop> {
    if banks.len() < 2 {
        return Vec::new();
    }
    (0..banks.len())
        .map(|i| Hop { src: banks[i], dst: banks[(i + 1) % banks.len()], bytes })
        .collect()
}

/// Cost of one ring-broadcast step over `banks`.
pub fn ring_step(
    map: &ResourceMap,
    xfer: &TransferCostModel,
    banks: &[BankId],
    bytes: u64,
) -> ScheduleResult {
    schedule_hops(map, xfer, &ring_step_hops(banks, bytes))
}

/// Hops of one step of the decoder's multi-step parallel partial-sum
/// reduction (Section IV-B2 "Token reduction in decoder blocks"): banks are
/// paired at `stride`, the higher bank of each pair shipping its partial sum
/// to the lower.
pub fn pairwise_reduce_hops(banks: &[BankId], stride: usize, bytes: u64) -> Vec<Hop> {
    let mut hops = Vec::new();
    let mut i = 0;
    while i + stride < banks.len() {
        hops.push(Hop { src: banks[i + stride], dst: banks[i], bytes });
        i += 2 * stride;
    }
    hops
}

/// Cost of a full one-to-all broadcast of `bytes` from one bank to every
/// bank in `banks` (the decoder's `Q_new` distribution): the source drives
/// its group and channel segments once; crossing to other channels/stacks
/// goes up through the stack link and host bus, then fans out down every
/// channel in parallel (broadcast write on each channel bus).
pub fn one_to_all_broadcast(
    map: &ResourceMap,
    xfer: &TransferCostModel,
    src: BankId,
    banks: &[BankId],
    bytes: u64,
) -> ScheduleResult {
    let g = map.geometry();
    let bus = map.bus();
    let channels: std::collections::BTreeSet<u32> =
        banks.iter().map(|&b| g.channel_of(b)).collect();
    let stacks: std::collections::BTreeSet<u32> = banks.iter().map(|&b| g.coord(b).stack).collect();
    let b = bytes as f64;
    // Store-and-forward up the hierarchy, then one parallel fan-out level.
    let mut latency = b / bus.group_gbs + b / bus.channel_gbs;
    if stacks.len() > 1 || !stacks.contains(&g.coord(src).stack) {
        latency += b / bus.stack_gbs + b / bus.host_gbs;
    }
    if channels.len() > 1 {
        latency += b / bus.channel_gbs; // parallel broadcast down the channels
    }
    let bits = (bytes * 8) as f64;
    let mut energy = xfer.bank_write_energy_pj(bytes) // source read ≈ one write's worth
        + bits * xfer.energy.e_io * (1.0 + stacks.len() as f64)
        + bits * xfer.energy.e_post_gsa * channels.len() as f64;
    for &bank in banks {
        if bank != src {
            energy += xfer.bank_write_energy_pj(bytes);
        }
    }
    ScheduleResult {
        latency_ns: latency,
        energy_pj: energy,
        bytes: bytes as f64 * banks.len() as f64,
        slots: 1,
    }
}

/// Cost of replicating one scalar across a row inside every bank (the
/// Softmax reciprocal spread) — delegated to the data buffer when present,
/// otherwise to repeated column writes through the row buffer.
pub fn replicate_in_bank(
    buffer: Option<&DataBufferModel>,
    timing: &transpim_hbm::timing::TimingParams,
    energy: &EnergyParams,
    value_bits: u32,
    copies: u32,
) -> (f64, f64) {
    match buffer {
        Some(b) => (b.replicate_ns(value_bits, copies), b.replicate_pj(value_bits, copies)),
        None => {
            // Without the buffer each copy is an individual column write.
            let writes = f64::from(copies) * f64::from(value_bits.div_ceil(8));
            let ns = timing.t_rcd + writes * timing.t_ccd_l + timing.t_wr + timing.t_rp();
            let pj =
                energy.e_act + f64::from(copies) * f64::from(value_bits) * energy.e_pre_gsa * 2.0;
            (ns, pj)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transpim_hbm::resource::BusParams;

    fn fig9_geometry() -> HbmGeometry {
        HbmGeometry {
            stacks: 1,
            channels_per_stack: 1,
            groups_per_channel: 2,
            banks_per_group: 4,
            ..HbmGeometry::default()
        }
    }

    fn uniform_bus() -> BusParams {
        BusParams {
            channel_gbs: 16.0,
            group_gbs: 16.0,
            ring_link_gbs: 16.0,
            stack_gbs: 16.0,
            host_gbs: 16.0,
        }
    }

    fn xfer(buffered: bool) -> TransferCostModel {
        TransferCostModel::new(fig9_geometry(), EnergyParams::default(), buffered)
    }

    #[test]
    fn figure9_schedule_is_3t_with_buffers() {
        let g = fig9_geometry();
        let map = ResourceMap::new(g, uniform_bus(), true);
        let banks: Vec<BankId> = g.banks().collect();
        let r = ring_step(&map, &xfer(true), &banks, 256);
        assert_eq!(r.slots, 3, "paper's Figure 9 schedule uses 3 slots");
        assert!((r.latency_ns - 3.0 * 16.0).abs() < 1e-9);
        assert_eq!(r.bytes, 8.0 * 256.0);
    }

    #[test]
    fn figure9_schedule_is_8t_without_buffers() {
        let g = fig9_geometry();
        let map = ResourceMap::new(g, uniform_bus(), false);
        let banks: Vec<BankId> = g.banks().collect();
        let r = ring_step(&map, &xfer(false), &banks, 256);
        assert_eq!(r.slots, 8);
        assert!((r.latency_ns - 8.0 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn ring_scales_with_more_groups_at_constant_slots() {
        // "The algorithm can scale to more bank groups with the same time
        // complexity."
        let g = HbmGeometry {
            stacks: 1,
            channels_per_stack: 1,
            groups_per_channel: 8,
            banks_per_group: 4,
            ..HbmGeometry::default()
        };
        let map = ResourceMap::new(g, uniform_bus(), true);
        let x = TransferCostModel::new(g, EnergyParams::default(), true);
        let banks: Vec<BankId> = g.banks().collect();
        let r = ring_step(&map, &x, &banks, 256);
        assert!(r.slots <= 4, "32-bank ring should still need ~3 slots, got {}", r.slots);
    }

    #[test]
    fn empty_and_single_bank_rings_are_free() {
        let g = fig9_geometry();
        let map = ResourceMap::new(g, uniform_bus(), true);
        assert_eq!(ring_step(&map, &xfer(true), &[], 256).latency_ns, 0.0);
        assert_eq!(ring_step(&map, &xfer(true), &[BankId(0)], 256).latency_ns, 0.0);
    }

    #[test]
    fn no_slot_double_books_resources() {
        // Property: re-running the scheduler and verifying by construction —
        // every slot's hops must be pairwise resource-disjoint. We recheck
        // with a direct simulation on a larger ring.
        let g = HbmGeometry {
            stacks: 1,
            channels_per_stack: 2,
            groups_per_channel: 4,
            banks_per_group: 4,
            ..HbmGeometry::default()
        };
        let map = ResourceMap::new(g, uniform_bus(), true);
        let x = TransferCostModel::new(g, EnergyParams::default(), true);
        let banks: Vec<BankId> = g.banks().collect();
        let hops = ring_step_hops(&banks, 512);
        let r = schedule_hops(&map, &x, &hops);
        // Lower bound: per-group links carry (banks_per_group - 1) hops.
        assert!(r.latency_ns >= 3.0 * (512.0 / 16.0) - 1e-9);
        // Upper bound: never worse than full serialization.
        assert!(r.latency_ns <= hops.len() as f64 * (512.0 / 16.0) + 1e-9);
    }

    #[test]
    fn figure9_placements_expose_the_3_slot_schedule() {
        let g = fig9_geometry();
        let map = ResourceMap::new(g, uniform_bus(), true);
        let banks: Vec<BankId> = g.banks().collect();
        let hops = ring_step_hops(&banks, 256);
        let (r, placed) = schedule_hops_placed(&map, &xfer(true), &hops);
        assert_eq!(placed.len(), 8, "every hop must be placed exactly once");
        assert_eq!(placed.iter().map(|p| p.slot).max(), Some(2), "3 slots, 0-indexed");
        for p in &placed {
            assert!(p.dur_ns > 0.0);
            assert!(p.start_ns + p.dur_ns <= r.latency_ns + 1e-9);
        }
        // Slot starts are non-decreasing in slot index.
        let mut by_slot: Vec<_> = placed.to_vec();
        by_slot.sort_by_key(|p| p.slot);
        assert!(by_slot.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn emitted_hop_events_carry_slots_and_nest_in_the_phase() {
        let g = fig9_geometry();
        let map = ResourceMap::new(g, uniform_bus(), true);
        let banks: Vec<BankId> = g.banks().collect();
        let (r, placed) = schedule_hops_placed(&map, &xfer(true), &ring_step_hops(&banks, 256));
        let chrome = transpim_obs::ChromeTraceSink::shared();
        let sink = SinkHandle::from_shared(chrome.clone());
        emit_hop_events(&sink, &map, 1000.0, 1.0, &placed);
        let events = chrome.borrow().sorted_events();
        let spans: Vec<_> = events.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 8);
        for e in &spans {
            assert_eq!(e.cat, "ring");
            assert!(e.ts >= 1.0); // µs, offset by base
            assert!(e.ts + e.dur.unwrap() <= (1000.0 + r.latency_ns) / 1000.0 + 1e-9);
            assert!(e.args.contains_key("slot"));
        }
        // Every source bank also samples its occupancy of the step.
        let counters: Vec<_> = events.iter().filter(|e| e.ph == "C").collect();
        assert_eq!(counters.len(), 8);
        // Disabled sink: emission is a no-op.
        emit_hop_events(&SinkHandle::null(), &map, 0.0, 1.0, &placed);
    }

    #[test]
    fn pairwise_reduction_halves_participants() {
        let banks: Vec<BankId> = (0..8).map(BankId).collect();
        assert_eq!(pairwise_reduce_hops(&banks, 1, 64).len(), 4);
        assert_eq!(pairwise_reduce_hops(&banks, 2, 64).len(), 2);
        assert_eq!(pairwise_reduce_hops(&banks, 4, 64).len(), 1);
        let h = pairwise_reduce_hops(&banks, 4, 64)[0];
        assert_eq!((h.src, h.dst), (BankId(4), BankId(0)));
    }

    #[test]
    fn broadcast_cost_grows_with_span() {
        let g = HbmGeometry::default();
        let map = ResourceMap::new(g, BusParams::default(), true);
        let x = TransferCostModel::new(g, EnergyParams::default(), true);
        let local: Vec<BankId> = (0..4).map(BankId).collect();
        let wide: Vec<BankId> = (0..2048).step_by(32).map(BankId).collect();
        let small = one_to_all_broadcast(&map, &x, BankId(0), &local, 1024);
        let big = one_to_all_broadcast(&map, &x, BankId(0), &wide, 1024);
        assert!(big.latency_ns > small.latency_ns);
        assert!(big.energy_pj > small.energy_pj);
    }

    #[test]
    fn replicate_prefers_buffer() {
        let t = transpim_hbm::timing::TimingParams::default();
        let e = EnergyParams::default();
        let buf = DataBufferModel::new(t, e);
        let (with_ns, _) = replicate_in_bank(Some(&buf), &t, &e, 16, 256);
        let (without_ns, _) = replicate_in_bank(None, &t, &e, 16, 256);
        assert!(
            with_ns < without_ns,
            "buffer replication {with_ns} should beat column writes {without_ns}"
        );
    }
}
