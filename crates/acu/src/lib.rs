//! Near-memory auxiliary computing units (ACUs) and the TransPIM data
//! communication architecture (Section IV of the paper).
//!
//! Each memory bank of TransPIM is extended with:
//!
//! * `P_sub` **ACUs** (one per simultaneously-activated subarray), each with
//!   `P_add` pipelined 256-wide bit-serial adder trees and a 3-stage
//!   pipelined reciprocal divider — they offload vector reduction and the
//!   Softmax normalization from the bit-serial subarrays ([`adder_tree`],
//!   [`divider`]),
//! * a reconfigurable 8×256 b **data buffer** for fine-grained copy and
//!   replication ([`data_buffer`]),
//! * a **ring broadcast unit** with dedicated 256-bit links to its ring
//!   neighbors; [`ring`] implements the slotted hop scheduler that
//!   reproduces the Figure 9 schedule (3 T for a full ring step over two
//!   bank groups, vs 8 T on the unmodified datapath),
//! * an analytic **area/power model** seeded with the paper's Table II
//!   synthesis results ([`area`]).
//!
//! As in the `transpim-pim` crate, the functional models (the adder tree
//! actually sums, the divider actually computes reciprocals) share their
//! operation counts with the timing model, so the simulator's costs are tied
//! to working hardware algorithms.

pub mod adder_tree;
pub mod area;
pub mod data_buffer;
pub mod divider;
pub mod ring;

pub use adder_tree::{AcuParams, AcuReduceModel};
pub use area::AreaModel;
pub use data_buffer::DataBufferModel;
pub use divider::{recip_q16, DividerModel};
pub use ring::{
    emit_hop_events, ring_step, schedule_hops, schedule_hops_placed, Hop, HopPlacement,
    ScheduleResult, TransferCostModel,
};
