//! The ACU's pipelined bit-serial adder trees and the reduction cost model
//! of Section IV-A1.
//!
//! Each ACU receives 256-bit slices from the subarray row buffer — the same
//! bit of 256 different bit-serial values per column access — and feeds them
//! into up to `P_add` 256-wide adder trees built from 255 bit-serial adders.
//! Reducing an `N`-element `b`-bit vector costs
//!
//! ```text
//! rows = b × ceil(N / (256 × P_add))
//! ```
//!
//! row activations; before precharging, the ACU performs `P_add` column
//! accesses in the open row (column accesses are ~20× cheaper than row
//! cycles), which is exactly the Figure 13(a) knob: raising `P_add` divides
//! the activation count.

use serde::{Deserialize, Serialize};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::geometry::HbmGeometry;
use transpim_hbm::timing::TimingParams;

/// ACU design parameters (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcuParams {
    /// ACUs per bank (= simultaneously activated subarrays), Table I: 16.
    pub p_sub: u32,
    /// Pipelined bit-serial adder trees per ACU, Table I: 4.
    pub p_add: u32,
    /// Adder tree input width, Table I: 256.
    pub tree_width: u32,
    /// ACU clock in GHz (500 MHz, matched to `t_CCD = 2 ns`).
    pub clock_ghz: f64,
}

impl Default for AcuParams {
    fn default() -> Self {
        Self { p_sub: 16, p_add: 4, tree_width: 256, clock_ghz: 0.5 }
    }
}

/// Functional bit-serial adder tree: reduces a slice of unsigned values with
/// an explicit balanced tree (the structure the 255 bit-serial adders form).
///
/// # Example
///
/// ```
/// use transpim_acu::adder_tree::tree_reduce;
/// assert_eq!(tree_reduce(&[1, 2, 3, 4, 5]), 15);
/// assert_eq!(tree_reduce(&[]), 0);
/// ```
pub fn tree_reduce(values: &[u64]) -> u128 {
    match values.len() {
        0 => 0,
        1 => u128::from(values[0]),
        n => tree_reduce(&values[..n / 2]) + tree_reduce(&values[n / 2..]),
    }
}

/// Latency/energy model for ACU vector reductions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcuReduceModel {
    geometry: HbmGeometry,
    timing: TimingParams,
    energy: EnergyParams,
    params: AcuParams,
}

impl AcuReduceModel {
    /// Build the model.
    pub fn new(
        geometry: HbmGeometry,
        timing: TimingParams,
        energy: EnergyParams,
        params: AcuParams,
    ) -> Self {
        Self { geometry, timing, energy, params }
    }

    /// The ACU parameters.
    pub fn params(&self) -> AcuParams {
        self.params
    }

    /// Row activations needed to reduce one `vec_len`-element `bits`-wide
    /// vector (the Section IV-A1 formula).
    pub fn row_activations(&self, vec_len: u32, bits: u32) -> u64 {
        let per_row = u64::from(self.params.tree_width) * u64::from(self.params.p_add);
        u64::from(bits) * u64::from(vec_len).div_ceil(per_row.max(1))
    }

    /// Latency of reducing one vector in one ACU, in nanoseconds: the row
    /// activations (each long enough to fit `P_add` column accesses) plus
    /// the adder-tree pipeline drain.
    pub fn vector_latency_ns(&self, vec_len: u32, bits: u32) -> f64 {
        let t = &self.timing;
        let per_activation =
            t.t_rc.max(t.t_rcd + f64::from(self.params.p_add) * t.t_ccd_l + t.t_rp());
        let pipeline_drain = (f64::from(self.params.tree_width.max(2)).log2().ceil()
            + f64::from(bits))
            / self.params.clock_ghz;
        self.row_activations(vec_len, bits) as f64 * per_activation + pipeline_drain
    }

    /// Latency of reducing `vectors_per_bank` vectors of `vec_len`×`bits`
    /// in one bank's `P_sub` ACUs working in parallel.
    pub fn bank_latency_ns(&self, vec_len: u32, bits: u32, vectors_per_bank: u64) -> f64 {
        let rounds = vectors_per_bank.div_ceil(u64::from(self.params.p_sub).max(1));
        rounds as f64 * self.vector_latency_ns(vec_len, bits)
    }

    /// Energy of reducing `total_vectors` vectors system-wide, in pJ: the
    /// mat-row activations plus the Table II per-access ACU energy (one
    /// access per 256-bit chunk per bit-plane). Raising `P_add` trades
    /// activation energy for cheap register accesses — the Figure 13(a)
    /// energy curve ("the proposed design trades excessive row activation
    /// energy by the register energy").
    pub fn energy_pj(&self, vec_len: u32, bits: u32, total_vectors: u64) -> f64 {
        let act_pj = self.energy.e_act * self.geometry.subarray_row_fraction();
        let activations = self.row_activations(vec_len, bits) as f64 * total_vectors as f64;
        let chunks = u64::from(vec_len).div_ceil(u64::from(self.params.tree_width.max(1)))
            * u64::from(bits)
            * total_vectors;
        activations * act_pj + chunks as f64 * self.energy.e_acu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model_with(p_add: u32) -> AcuReduceModel {
        AcuReduceModel::new(
            HbmGeometry::default(),
            TimingParams::default(),
            EnergyParams::default(),
            AcuParams { p_add, ..AcuParams::default() },
        )
    }

    #[test]
    fn row_activation_formula_matches_paper() {
        let m = model_with(4);
        // N = 512, b = 8, P_add = 4: ceil(512/1024) = 1 per bit → 8 rows.
        assert_eq!(m.row_activations(512, 8), 8);
        // N = 4096, b = 16: 16 × ceil(4096/1024) = 64 rows.
        assert_eq!(m.row_activations(4096, 16), 64);
        // Single tree: b × ceil(N/256).
        let m1 = model_with(1);
        assert_eq!(m1.row_activations(512, 8), 16);
    }

    #[test]
    fn p_add_speeds_up_reduction_with_diminishing_returns() {
        // Figure 13(a): latency drops roughly by 1/P_add until the pipeline
        // drain floor.
        let l1 = model_with(1).vector_latency_ns(4096, 16);
        let l4 = model_with(4).vector_latency_ns(4096, 16);
        let l16 = model_with(16).vector_latency_ns(4096, 16);
        assert!(l1 > 3.0 * l4, "P_add=4 should be ~4x faster: {l1} vs {l4}");
        assert!(l4 > l16, "more trees keeps helping");
        assert!(l1 / l16 < 16.0, "but sublinearly");
    }

    #[test]
    fn p_add_reduces_energy() {
        let e1 = model_with(1).energy_pj(4096, 16, 100);
        let e16 = model_with(16).energy_pj(4096, 16, 100);
        assert!(e1 > e16, "activation energy should shrink with P_add: {e1} vs {e16}");
    }

    #[test]
    fn bank_parallelism_divides_by_p_sub() {
        let m = model_with(4);
        let one = m.bank_latency_ns(512, 8, 16); // one round across 16 ACUs
        let two = m.bank_latency_ns(512, 8, 17); // 17 vectors → 2 rounds
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn tree_reduce_empty_and_single() {
        assert_eq!(tree_reduce(&[]), 0);
        assert_eq!(tree_reduce(&[42]), 42);
    }

    proptest! {
        #[test]
        fn tree_reduce_matches_sum(values in proptest::collection::vec(any::<u32>(), 0..500)) {
            let v64: Vec<u64> = values.iter().map(|&x| u64::from(x)).collect();
            let expect: u128 = v64.iter().map(|&x| u128::from(x)).sum();
            prop_assert_eq!(tree_reduce(&v64), expect);
        }
    }
}
