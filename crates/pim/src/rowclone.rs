//! In-DRAM bulk data copy: RowClone fast-parallel mode (FPM) and the
//! row-buffer-mediated copies the data buffer replaces.
//!
//! RowClone FPM copies an entire row between two rows of the *same*
//! subarray in roughly two back-to-back activations — fast, but coarse
//! (whole rows only) and constrained to one subarray. Section IV-B1 of the
//! paper motivates the data buffer with exactly these two defects.

use serde::{Deserialize, Serialize};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::geometry::HbmGeometry;
use transpim_hbm::timing::TimingParams;

/// Cost model for intra-bank copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowCloneModel {
    geometry: HbmGeometry,
    timing: TimingParams,
    energy: EnergyParams,
}

impl RowCloneModel {
    /// Build the model from the memory configuration.
    pub fn new(geometry: HbmGeometry, timing: TimingParams, energy: EnergyParams) -> Self {
        Self { geometry, timing, energy }
    }

    /// Latency of copying `rows` full rows with RowClone FPM
    /// (source and destination in the same subarray).
    pub fn fpm_latency_ns(&self, rows: u64) -> f64 {
        rows as f64 * self.timing.t_rowclone()
    }

    /// Energy of copying `rows` full rows with FPM: two activations per row.
    pub fn fpm_energy_pj(&self, rows: u64) -> f64 {
        rows as f64 * 2.0 * self.energy.e_act
    }

    /// Latency of copying `bytes` through the row buffer and shared bank
    /// port (the pre-TransPIM fallback for cross-subarray copies): read each
    /// DQ-wide beat out of the open row and write it back elsewhere, with a
    /// row cycle per source/destination row pair.
    pub fn buffered_copy_latency_ns(&self, bytes: u64) -> f64 {
        let t = &self.timing;
        let row_bytes = u64::from(self.geometry.row_bytes);
        let rows = bytes.div_ceil(row_bytes.max(1));
        let beats = (bytes * 8).div_ceil(u64::from(self.geometry.dq_bits)) as f64;
        // Each beat is read then written (2 column accesses); each row pair
        // costs an activate/precharge on both ends.
        rows as f64 * 2.0 * t.t_rc + 2.0 * beats * t.t_ccd_l
    }

    /// Energy of the buffered copy: activations plus two column-access
    /// traversals per bit.
    pub fn buffered_copy_energy_pj(&self, bytes: u64) -> f64 {
        let row_bytes = u64::from(self.geometry.row_bytes);
        let rows = bytes.div_ceil(row_bytes.max(1)) as f64;
        rows * 2.0 * self.energy.e_act + 2.0 * self.energy.local_column_access(bytes * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RowCloneModel {
        RowCloneModel::new(HbmGeometry::default(), TimingParams::default(), EnergyParams::default())
    }

    #[test]
    fn fpm_is_two_activations_per_row() {
        let m = model();
        assert!((m.fpm_latency_ns(1) - 74.0).abs() < 1e-9);
        assert!((m.fpm_energy_pj(3) - 6.0 * 909.0).abs() < 1e-9);
    }

    #[test]
    fn fpm_beats_buffered_copy_for_full_rows() {
        let m = model();
        assert!(m.fpm_latency_ns(1) < m.buffered_copy_latency_ns(1024));
    }

    #[test]
    fn buffered_copy_scales_with_bytes() {
        let m = model();
        let one_row = m.buffered_copy_latency_ns(1024);
        let four_rows = m.buffered_copy_latency_ns(4096);
        assert!((four_rows - 4.0 * one_row).abs() < 1e-6);
    }
}
