//! Error-correcting-code model for PIM-resident data.
//!
//! TransPIM keeps operands *inside* commodity-adjacent HBM2, so deployed
//! systems inherit DRAM's soft-error surface. This module prices two
//! protection schemes over 64-bit words:
//!
//! * **Parity** — one check bit per word. In the bit-serial layout this is
//!   one extra bit-plane per 64 data planes: cheap (1/64 storage and
//!   bandwidth overhead), detects any single flip, corrects nothing. A
//!   detected flip forces a bounded re-read of the transfer.
//! * **SECDED** — Hamming(71,64) plus an overall parity bit, the standard
//!   (72,64) DRAM code: 8/64 overhead, corrects any single flip in place
//!   and detects (but cannot correct) double flips.
//!
//! The codec below is a real implementation, not just a cost table: a
//! corrected word is restored *exactly*, which is why ECC composes with the
//! quantizer error budget in `transpim::banksim` without widening it — a
//! corrected run is bit-identical to a fault-free run, and only the
//! latency/energy accounting changes.

use serde::{Deserialize, Serialize};

/// Protection scheme applied to data-buffer traffic and bank rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccScheme {
    /// No protection: any flip silently corrupts data. The simulator is
    /// omniscient about injected faults, so an unprotected flip surfaces
    /// as an uncorrectable fault rather than silent corruption.
    #[default]
    None,
    /// One parity bit-plane per 64 data planes: detect-only.
    Parity,
    /// Hamming(72,64) single-error-correct / double-error-detect.
    Secded,
}

impl EccScheme {
    /// Data bits covered by one code word.
    pub fn data_bits(self) -> u32 {
        64
    }

    /// Check bits stored alongside each code word.
    pub fn check_bits(self) -> u32 {
        match self {
            EccScheme::None => 0,
            EccScheme::Parity => 1,
            EccScheme::Secded => 8,
        }
    }

    /// Storage/bandwidth overhead as a fraction of the protected payload
    /// (check bits ride on every row activation and every transfer).
    pub fn overhead_fraction(self) -> f64 {
        f64::from(self.check_bits()) / f64::from(self.data_bits())
    }

    /// Can the scheme *notice* `flips` bit errors within one word?
    pub fn can_detect(self, flips: u32) -> bool {
        match self {
            EccScheme::None => false,
            EccScheme::Parity => flips == 1,
            EccScheme::Secded => flips <= 2,
        }
    }

    /// Can the scheme *repair* `flips` bit errors within one word?
    pub fn can_correct(self, flips: u32) -> bool {
        match self {
            EccScheme::None | EccScheme::Parity => flips == 0,
            EccScheme::Secded => flips <= 1,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            EccScheme::None => "none",
            EccScheme::Parity => "parity",
            EccScheme::Secded => "secded",
        }
    }
}

/// Even parity over a 64-bit word (the Parity scheme's single check bit).
pub fn parity64(data: u64) -> bool {
    data.count_ones() % 2 == 1
}

/// Outcome of decoding a possibly corrupted SECDED word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecdedResult {
    /// No error.
    Clean,
    /// A single data bit was flipped; the payload carried here is the
    /// repaired word.
    CorrectedData(u64),
    /// A single *check* bit was flipped; the data was already intact.
    CorrectedCheck,
    /// A double error: detected, not correctable.
    DoubleError,
}

/// Hamming-code positions 1..=71 with powers of two reserved for the seven
/// check bits; the 64 remaining positions carry data bits LSB-first.
fn is_check_pos(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// Scatter the 64 data bits into their codeword positions.
fn place_data(data: u64) -> u128 {
    let mut word: u128 = 0;
    let mut bit = 0u32;
    for pos in 1u32..=71 {
        if is_check_pos(pos) {
            continue;
        }
        if (data >> bit) & 1 == 1 {
            word |= 1u128 << pos;
        }
        bit += 1;
    }
    debug_assert_eq!(bit, 64);
    word
}

/// Gather the 64 data bits back out of a codeword.
fn extract_data(word: u128) -> u64 {
    let mut data = 0u64;
    let mut bit = 0u32;
    for pos in 1u32..=71 {
        if is_check_pos(pos) {
            continue;
        }
        if (word >> pos) & 1 == 1 {
            data |= 1u64 << bit;
        }
        bit += 1;
    }
    data
}

/// XOR of the positions of all set bits — zero for a valid codeword.
fn syndrome(word: u128) -> u32 {
    let mut s = 0u32;
    for pos in 1u32..=71 {
        if (word >> pos) & 1 == 1 {
            s ^= pos;
        }
    }
    s
}

/// Encode a 64-bit word into its 8 SECDED check bits: seven Hamming bits in
/// bits 0..=6 (for codeword positions 1,2,4,...,64) and the overall parity
/// of the 71-bit codeword in bit 7.
pub fn secded_encode(data: u64) -> u8 {
    let mut word = place_data(data);
    let s = syndrome(word);
    // Setting check bit 2^i toggles bit i of the syndrome, so writing the
    // data-only syndrome into the check positions zeroes it.
    let mut check = 0u8;
    for i in 0..7u32 {
        if (s >> i) & 1 == 1 {
            word |= 1u128 << (1u32 << i);
            check |= 1 << i;
        }
    }
    debug_assert_eq!(syndrome(word), 0);
    if word.count_ones() % 2 == 1 {
        check |= 1 << 7;
    }
    check
}

/// Decode a possibly corrupted (data, check) pair.
pub fn secded_decode(data: u64, check: u8) -> SecdedResult {
    let mut word = place_data(data);
    for i in 0..7u32 {
        if (check >> i) & 1 == 1 {
            word |= 1u128 << (1u32 << i);
        }
    }
    let s = syndrome(word);
    let stored_parity = (check >> 7) & 1 == 1;
    let parity_mismatch = (word.count_ones() % 2 == 1) != stored_parity;
    match (s, parity_mismatch) {
        (0, false) => SecdedResult::Clean,
        (0, true) => SecdedResult::CorrectedCheck, // the parity bit itself flipped
        (_, false) => SecdedResult::DoubleError,   // even # of flips, non-zero syndrome
        (pos, true) => {
            if pos > 71 {
                return SecdedResult::DoubleError;
            }
            if is_check_pos(pos) {
                return SecdedResult::CorrectedCheck;
            }
            SecdedResult::CorrectedData(extract_data(word ^ (1u128 << pos)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_words_decode_clean() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_0123_4567, 1, 1 << 63] {
            let check = secded_encode(data);
            assert_eq!(secded_decode(data, check), SecdedResult::Clean);
        }
    }

    #[test]
    fn every_single_data_flip_is_corrected_exactly() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let check = secded_encode(data);
        for bit in 0..64 {
            let corrupted = data ^ (1u64 << bit);
            assert_eq!(
                secded_decode(corrupted, check),
                SecdedResult::CorrectedData(data),
                "flip of data bit {bit} must be repaired to the original word"
            );
        }
    }

    #[test]
    fn every_single_check_flip_leaves_data_intact() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let check = secded_encode(data);
        for bit in 0..8 {
            let corrupted = check ^ (1u8 << bit);
            assert_eq!(
                secded_decode(data, corrupted),
                SecdedResult::CorrectedCheck,
                "flip of check bit {bit} must not disturb the data"
            );
        }
    }

    #[test]
    fn double_flips_are_detected_not_miscorrected() {
        let data = 0xFFFF_0000_1234_8765u64;
        let check = secded_encode(data);
        for (a, b) in [(0u32, 1u32), (3, 40), (17, 63), (62, 63)] {
            let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
            assert_eq!(secded_decode(corrupted, check), SecdedResult::DoubleError);
        }
    }

    #[test]
    fn parity_detects_single_flips() {
        let data = 0x00FF_00FF_1111_2222u64;
        let p = parity64(data);
        for bit in [0u32, 13, 63] {
            assert_ne!(parity64(data ^ (1u64 << bit)), p);
        }
    }

    #[test]
    fn scheme_cost_table() {
        assert_eq!(EccScheme::None.check_bits(), 0);
        assert_eq!(EccScheme::Parity.check_bits(), 1);
        assert_eq!(EccScheme::Secded.check_bits(), 8);
        assert!(EccScheme::Secded.can_correct(1));
        assert!(!EccScheme::Secded.can_correct(2));
        assert!(EccScheme::Secded.can_detect(2));
        assert!(EccScheme::Parity.can_detect(1));
        assert!(!EccScheme::Parity.can_correct(1));
        assert!(!EccScheme::None.can_detect(1));
        assert!((EccScheme::Secded.overhead_fraction() - 0.125).abs() < 1e-12);
    }
}
