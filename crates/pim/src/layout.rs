//! Capacity bookkeeping for the column-wise (bit-serial) data layout.
//!
//! A value of `b` bits occupies `b` cells of one bit-column; a subarray of
//! 512×512 cells therefore stores `512 × 512 / b` values. The Figure 8(a)
//! vector-multiplication layout additionally keeps three replicated copies
//! of one operand to parallelize the point-wise products.

use serde::{Deserialize, Serialize};
use transpim_hbm::geometry::HbmGeometry;

/// Bit-serial layout calculator for one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialLayout {
    geometry: HbmGeometry,
}

impl BitSerialLayout {
    /// Build a layout calculator.
    pub fn new(geometry: HbmGeometry) -> Self {
        Self { geometry }
    }

    /// Values of width `bits` that fit in one subarray.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0.
    pub fn values_per_subarray(&self, bits: u32) -> u64 {
        assert!(bits > 0, "bits must be positive");
        let rows_per_subarray =
            u64::from(self.geometry.rows_per_bank) / u64::from(self.geometry.subarrays_per_bank);
        let value_rows = rows_per_subarray / u64::from(bits);
        value_rows * u64::from(self.geometry.subarray_cols)
    }

    /// Values of width `bits` that fit in one bank.
    pub fn values_per_bank(&self, bits: u32) -> u64 {
        self.values_per_subarray(bits) * u64::from(self.geometry.subarrays_per_bank)
    }

    /// Bytes occupied by `values` of width `bits`, including `replicas`
    /// copies kept for row-parallel multiplication (Figure 8(a) keeps 3).
    pub fn footprint_bytes(&self, values: u64, bits: u32, replicas: u32) -> u64 {
        values * u64::from(bits) * u64::from(replicas.max(1)) / 8
    }

    /// Whether `values` of width `bits` (with `replicas` copies) fit in one
    /// bank.
    pub fn fits_in_bank(&self, values: u64, bits: u32, replicas: u32) -> bool {
        self.footprint_bytes(values, bits, replicas) <= self.geometry.bank_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subarray_capacity_8bit() {
        let l = BitSerialLayout::new(HbmGeometry::default());
        // 512 rows / 8 bits = 64 value-rows × 512 columns.
        assert_eq!(l.values_per_subarray(8), 64 * 512);
        assert_eq!(l.values_per_bank(8), 64 * 512 * 64);
    }

    #[test]
    fn footprint_includes_replicas() {
        let l = BitSerialLayout::new(HbmGeometry::default());
        assert_eq!(l.footprint_bytes(1000, 8, 3), 3000);
        assert_eq!(l.footprint_bytes(1000, 8, 0), 1000); // clamps to 1 copy
    }

    #[test]
    fn bank_fits_reasonable_working_set() {
        let l = BitSerialLayout::new(HbmGeometry::default());
        // A 1024×1024 int8 weight matrix with 3 replicas: 3 MiB < 32 MiB.
        assert!(l.fits_in_bank(1024 * 1024, 8, 3));
        // But 16 such matrices with 3 replicas do not fit alongside…
        assert!(!l.fits_in_bank(16 * 1024 * 1024 * 8, 8, 3));
    }

    #[test]
    #[should_panic(expected = "bits must be positive")]
    fn zero_bits_rejected() {
        BitSerialLayout::new(HbmGeometry::default()).values_per_subarray(0);
    }
}
