//! Bit-plane representation of column-wise (bit-serial) data.
//!
//! A [`BitPlanes`] value models a group of DRAM rows holding `lanes` numbers
//! in bit-serial layout: plane `i` is a row whose bit-column `j` stores bit
//! `i` (LSB-first) of lane `j`'s value. A row-parallel PIM primitive (AND,
//! OR, NOT, MAJ3) operates on whole planes at once, exactly as a triple-row
//! activation does in the real hardware.

use serde::{Deserialize, Serialize};

/// One DRAM row's worth of bits across all lanes, packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plane {
    words: Vec<u64>,
    lanes: usize,
}

impl Plane {
    /// All-zero plane over `lanes` bit-columns.
    pub fn zeros(lanes: usize) -> Self {
        Self { words: vec![0; lanes.div_ceil(64)], lanes }
    }

    /// All-one plane over `lanes` bit-columns.
    pub fn ones(lanes: usize) -> Self {
        let mut p = Self::zeros(lanes);
        for w in &mut p.words {
            *w = u64::MAX;
        }
        p.mask_tail();
        p
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bit of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn get(&self, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.words[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Set the bit of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn set(&mut self, lane: usize, v: bool) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, b) = (lane / 64, lane % 64);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.lanes % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    fn zip2(&self, other: &Plane, f: impl Fn(u64, u64) -> u64) -> Plane {
        assert_eq!(self.lanes, other.lanes, "plane lane counts differ");
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect();
        let mut p = Plane { words, lanes: self.lanes };
        p.mask_tail();
        p
    }

    /// Row-parallel AND (one AAP in hardware).
    pub fn and(&self, other: &Plane) -> Plane {
        self.zip2(other, |a, b| a & b)
    }

    /// Row-parallel OR (one AAP in hardware).
    pub fn or(&self, other: &Plane) -> Plane {
        self.zip2(other, |a, b| a | b)
    }

    /// Row-parallel XOR (provided for checking; composed from
    /// AND/OR/NOT/MAJ in the costed ALU).
    pub fn xor(&self, other: &Plane) -> Plane {
        self.zip2(other, |a, b| a ^ b)
    }

    /// Row-parallel NOT via the dual-contact cell (one AAP in hardware).
    pub fn not(&self) -> Plane {
        let words = self.words.iter().map(|&a| !a).collect();
        let mut p = Plane { words, lanes: self.lanes };
        p.mask_tail();
        p
    }

    /// Row-parallel 3-input Boolean majority — the native triple-row
    /// activation primitive of commodity-DRAM PIM (one AAP).
    ///
    /// # Panics
    ///
    /// Panics if the three planes have different lane counts.
    pub fn maj3(&self, b: &Plane, c: &Plane) -> Plane {
        assert!(self.lanes == b.lanes && b.lanes == c.lanes, "plane lane counts differ");
        let words = self
            .words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((&x, &y), &z)| (x & y) | (y & z) | (x & z))
            .collect();
        let mut p = Plane { words, lanes: self.lanes };
        p.mask_tail();
        p
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

/// A vector of `lanes` integers of `bits` width stored bit-serially as
/// `bits` [`Plane`]s (LSB first) — the column-wise data layout of
/// Figure 8(a).
///
/// # Example
///
/// ```
/// use transpim_pim::BitPlanes;
///
/// let v = BitPlanes::from_values(&[3, 5, 250], 8);
/// assert_eq!(v.to_values(), vec![3, 5, 250]);
/// assert_eq!(v.bits(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitPlanes {
    planes: Vec<Plane>,
    lanes: usize,
}

impl BitPlanes {
    /// All-zero value of `bits` planes over `lanes` lanes.
    pub fn zeros(lanes: usize, bits: u32) -> Self {
        Self { planes: (0..bits).map(|_| Plane::zeros(lanes)).collect(), lanes }
    }

    /// Store `values` bit-serially with `bits` planes. Values are truncated
    /// to `bits` (wrapping), matching what the fixed-width layout holds.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn from_values(values: &[u64], bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64, got {bits}");
        let mut bp = Self::zeros(values.len(), bits);
        for (lane, &v) in values.iter().enumerate() {
            for b in 0..bits {
                bp.planes[b as usize].set(lane, (v >> b) & 1 == 1);
            }
        }
        bp
    }

    /// Read the values back as unsigned integers.
    pub fn to_values(&self) -> Vec<u64> {
        (0..self.lanes)
            .map(|lane| {
                self.planes
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (b, p)| acc | (u64::from(p.get(lane)) << b))
            })
            .collect()
    }

    /// Number of lanes (values).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bit width (number of planes).
    pub fn bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// Borrow plane `i` (bit significance `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bits`.
    pub fn plane(&self, i: u32) -> &Plane {
        &self.planes[i as usize]
    }

    /// Replace plane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bits` or lane counts differ.
    pub fn set_plane(&mut self, i: u32, p: Plane) {
        assert_eq!(p.lanes(), self.lanes, "plane lane count differs");
        self.planes[i as usize] = p;
    }

    /// Append a plane at the most-significant end (widening the value).
    ///
    /// # Panics
    ///
    /// Panics if lane counts differ.
    pub fn push_plane(&mut self, p: Plane) {
        assert_eq!(p.lanes(), self.lanes, "plane lane count differs");
        self.planes.push(p);
    }

    /// Logical left shift by `k` bits, widening: the result has
    /// `bits + k` planes (used by shift-and-add multiplication, where the
    /// "shift" is just reading from a different row offset — it costs no
    /// DRAM operations).
    pub fn shifted_up(&self, k: u32) -> BitPlanes {
        let mut planes = Vec::with_capacity(self.planes.len() + k as usize);
        for _ in 0..k {
            planes.push(Plane::zeros(self.lanes));
        }
        planes.extend(self.planes.iter().cloned());
        BitPlanes { planes, lanes: self.lanes }
    }

    /// Logical right shift by `k` bits (drop the `k` least-significant
    /// planes) — fixed-point truncation after a multiply. Like
    /// [`BitPlanes::shifted_up`], this is just a row-offset change in the
    /// column-wise layout and costs no DRAM operations.
    pub fn shifted_down(&self, k: u32) -> BitPlanes {
        let k = (k as usize).min(self.planes.len());
        BitPlanes { planes: self.planes[k..].to_vec(), lanes: self.lanes }
    }

    /// Truncate or zero-extend to exactly `bits` planes.
    pub fn resized(&self, bits: u32) -> BitPlanes {
        let mut planes = self.planes.clone();
        planes.resize(bits as usize, Plane::zeros(self.lanes));
        planes.truncate(bits as usize);
        BitPlanes { planes, lanes: self.lanes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let v = BitPlanes::from_values(&[0, 1, 2, 255, 128], 8);
        assert_eq!(v.to_values(), vec![0, 1, 2, 255, 128]);
    }

    #[test]
    fn from_values_truncates() {
        let v = BitPlanes::from_values(&[256 + 5], 8);
        assert_eq!(v.to_values(), vec![5]);
    }

    #[test]
    fn plane_ops_match_boolean_algebra() {
        let a = BitPlanes::from_values(&[0b1100], 4);
        let b = BitPlanes::from_values(&[0b1010], 4);
        let and: Vec<bool> = (0..4).map(|i| a.plane(i).and(b.plane(i)).get(0)).collect();
        assert_eq!(and, vec![false, false, false, true]);
        let or: Vec<bool> = (0..4).map(|i| a.plane(i).or(b.plane(i)).get(0)).collect();
        assert_eq!(or, vec![false, true, true, true]);
        assert!(a.plane(0).not().get(0));
    }

    #[test]
    fn maj3_truth_table() {
        for bits in 0u8..8 {
            let a = Plane::ones(1);
            let mut x = Plane::zeros(3);
            // three lanes carrying the three inputs in lane 0 of three planes
            let _ = (a, &mut x);
            let inputs = [(bits >> 2) & 1 == 1, (bits >> 1) & 1 == 1, bits & 1 == 1];
            let mk = |v: bool| {
                let mut p = Plane::zeros(1);
                p.set(0, v);
                p
            };
            let m = mk(inputs[0]).maj3(&mk(inputs[1]), &mk(inputs[2]));
            let expected = inputs.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(m.get(0), expected, "inputs {inputs:?}");
        }
    }

    #[test]
    fn not_masks_tail_lanes() {
        let p = Plane::zeros(5);
        assert_eq!(p.not().count_ones(), 5);
    }

    #[test]
    fn shifted_up_multiplies_by_power_of_two() {
        let v = BitPlanes::from_values(&[3, 7], 4);
        let s = v.shifted_up(2);
        assert_eq!(s.bits(), 6);
        assert_eq!(s.to_values(), vec![12, 28]);
    }

    #[test]
    fn shifted_down_divides_by_power_of_two() {
        let v = BitPlanes::from_values(&[12, 29], 8);
        let s = v.shifted_down(2);
        assert_eq!(s.bits(), 6);
        assert_eq!(s.to_values(), vec![3, 7]);
        // Shifting past the width yields an empty (zero) value.
        assert_eq!(v.shifted_down(20).bits(), 0);
    }

    #[test]
    fn resized_extends_and_truncates() {
        let v = BitPlanes::from_values(&[9], 4);
        assert_eq!(v.resized(8).to_values(), vec![9]);
        assert_eq!(v.resized(3).to_values(), vec![1]); // 9 = 0b1001 -> 0b001
    }

    proptest! {
        #[test]
        fn roundtrip_random(values in proptest::collection::vec(0u64..65536, 1..200)) {
            let v = BitPlanes::from_values(&values, 16);
            prop_assert_eq!(v.to_values(), values);
        }

        #[test]
        fn maj3_planewise_matches_per_lane(
            a in proptest::collection::vec(any::<bool>(), 100),
            b in proptest::collection::vec(any::<bool>(), 100),
            c in proptest::collection::vec(any::<bool>(), 100),
        ) {
            let mk = |v: &[bool]| {
                let mut p = Plane::zeros(v.len());
                for (i, &x) in v.iter().enumerate() { p.set(i, x); }
                p
            };
            let m = mk(&a).maj3(&mk(&b), &mk(&c));
            for i in 0..a.len() {
                let expect = [a[i], b[i], c[i]].iter().filter(|&&x| x).count() >= 2;
                prop_assert_eq!(m.get(i), expect);
            }
        }
    }
}
