//! Majority-based bit-serial arithmetic on [`BitPlanes`], with exact AAP
//! accounting.
//!
//! The full adder uses the Boolean-majority identity the paper inherits from
//! Ali et al. ("In-memory low-cost bit-serial addition"):
//!
//! ```text
//! carry_out = MAJ3(a, b, carry_in)
//! sum       = MAJ3(NOT(carry_out), MAJ3(a, b, NOT(carry_in)), carry_in)
//! ```
//!
//! which needs 5 row-level primitives (2 NOT + 3 MAJ3) per bit — each one an
//! activate-activate-precharge (AAP) command sequence in the DRAM. The
//! multiplier is shift-and-add over partial products; the shift itself is
//! free (it is just a different destination row offset in the column-wise
//! layout).

use crate::bitplane::{BitPlanes, Plane};
use serde::{Deserialize, Serialize};

/// Count of in-DRAM command sequences issued by an ALU operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AapTrace {
    /// Triple-row-activation logic primitives (AND/OR/NOT/MAJ3), one AAP each.
    pub aaps: u64,
}

impl AapTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The bit-serial ALU. Stateless apart from the running [`AapTrace`];
/// operations are free functions over bit-planes with exact op counting.
///
/// # Example
///
/// ```
/// use transpim_pim::{BitPlanes, PimAlu};
///
/// let mut alu = PimAlu::new();
/// let a = BitPlanes::from_values(&[100, 200], 8);
/// let b = BitPlanes::from_values(&[27, 99], 8);
/// let sum = alu.add(&a, &b);
/// assert_eq!(sum.to_values(), vec![127, 299]);
/// assert_eq!(alu.trace().aaps, 5 * 8); // 5 AAPs per operand bit
/// ```
#[derive(Debug, Clone, Default)]
pub struct PimAlu {
    trace: AapTrace,
}

impl PimAlu {
    /// New ALU with an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commands issued so far.
    pub fn trace(&self) -> AapTrace {
        self.trace
    }

    /// Reset the command counter.
    pub fn reset_trace(&mut self) {
        self.trace = AapTrace::new();
    }

    fn maj3(&mut self, a: &Plane, b: &Plane, c: &Plane) -> Plane {
        self.trace.aaps += 1;
        a.maj3(b, c)
    }

    fn not(&mut self, a: &Plane) -> Plane {
        self.trace.aaps += 1;
        a.not()
    }

    fn and(&mut self, a: &Plane, b: &Plane) -> Plane {
        self.trace.aaps += 1;
        a.and(b)
    }

    /// Full-adder step: returns `(sum, carry_out)` using 5 AAPs.
    fn full_add(&mut self, a: &Plane, b: &Plane, cin: &Plane) -> (Plane, Plane) {
        let n_cin = self.not(cin);
        let m1 = self.maj3(a, b, &n_cin);
        let cout = self.maj3(a, b, cin);
        let n_cout = self.not(&cout);
        let sum = self.maj3(&n_cout, &m1, cin);
        (sum, cout)
    }

    /// Unsigned bit-serial addition. The result is one bit wider than the
    /// wider operand (no overflow). Operands of different widths are
    /// zero-extended.
    pub fn add(&mut self, a: &BitPlanes, b: &BitPlanes) -> BitPlanes {
        assert_eq!(a.lanes(), b.lanes(), "lane counts differ");
        let bits = a.bits().max(b.bits());
        let (a, b) = (a.resized(bits), b.resized(bits));
        let mut out = BitPlanes::zeros(a.lanes(), 0);
        let mut carry = Plane::zeros(a.lanes()); // reserved all-zero row: free
        for i in 0..bits {
            let (sum, cout) = self.full_add(a.plane(i), b.plane(i), &carry);
            out.push_plane(sum);
            carry = cout;
        }
        out.push_plane(carry);
        out
    }

    /// Unsigned bit-serial addition truncated to the width of the wider
    /// operand (wrapping), as used when accumulating in a fixed-width field.
    pub fn add_wrapping(&mut self, a: &BitPlanes, b: &BitPlanes) -> BitPlanes {
        let bits = a.bits().max(b.bits());
        self.add(a, b).resized(bits)
    }

    /// Unsigned shift-and-add multiplication: the result has
    /// `a.bits() + b.bits()` planes, so it is exact.
    ///
    /// For each multiplier bit `i`, the partial product is the AND of every
    /// plane of `a` with plane `i` of `b` (`a.bits()` AAPs), accumulated at
    /// offset `i`. The accumulation reuses [`PimAlu::add`] on the
    /// overlapping planes only.
    pub fn mul(&mut self, a: &BitPlanes, b: &BitPlanes) -> BitPlanes {
        assert_eq!(a.lanes(), b.lanes(), "lane counts differ");
        let out_bits = a.bits() + b.bits();
        let mut acc = BitPlanes::zeros(a.lanes(), out_bits);
        for i in 0..b.bits() {
            // Partial product: a & b_i, one AAP per plane of a.
            let mut pp = BitPlanes::zeros(a.lanes(), 0);
            for j in 0..a.bits() {
                let p = self.and(a.plane(j), b.plane(i));
                pp.push_plane(p);
            }
            let shifted = pp.shifted_up(i).resized(out_bits);
            acc = self.add(&acc, &shifted).resized(out_bits);
        }
        acc
    }

    /// Two's-complement negation: invert every plane (dual-contact-cell
    /// NOTs) and add one. Costs `bits` NOT AAPs plus an increment add.
    pub fn negate(&mut self, a: &BitPlanes) -> BitPlanes {
        let mut inverted = BitPlanes::zeros(a.lanes(), 0);
        for i in 0..a.bits() {
            let p = self.not(a.plane(i));
            inverted.push_plane(p);
        }
        let one = BitPlanes::from_values(&vec![1; a.lanes()], a.bits());
        self.add(&inverted, &one).resized(a.bits())
    }

    /// Signed (two's complement) addition at the wider operand's width,
    /// wrapping — the ripple-carry adder is representation-agnostic.
    pub fn add_signed(&mut self, a: &BitPlanes, b: &BitPlanes) -> BitPlanes {
        self.add_wrapping(a, b)
    }

    /// Signed multiplication via sign-extension to the full product width:
    /// both operands are sign-extended to `a.bits() + b.bits()` planes and
    /// multiplied with the unsigned shift-and-add array, whose wrapping
    /// truncation at that width yields the correct two's-complement
    /// product. (Sign extension replicates the sign plane — free row
    /// aliasing in the column-wise layout, no extra AAPs.)
    pub fn mul_signed(&mut self, a: &BitPlanes, b: &BitPlanes) -> BitPlanes {
        let out_bits = a.bits() + b.bits();
        let ext = |x: &BitPlanes| {
            let mut e = x.clone();
            let sign = x.plane(x.bits() - 1).clone();
            while e.bits() < out_bits {
                e.push_plane(sign.clone());
            }
            e
        };
        let (ea, eb) = (ext(a), ext(b));
        self.mul(&ea, &eb).resized(out_bits)
    }

    /// Point-wise AND of equal-width operands (one AAP per plane) — used for
    /// masking.
    pub fn and_planes(&mut self, a: &BitPlanes, b: &BitPlanes) -> BitPlanes {
        assert_eq!(a.bits(), b.bits(), "widths differ");
        let mut out = BitPlanes::zeros(a.lanes(), 0);
        for i in 0..a.bits() {
            let p = self.and(a.plane(i), b.plane(i));
            out.push_plane(p);
        }
        out
    }
}

/// Number of AAPs issued by [`PimAlu::add`] on `bits`-wide operands.
/// The cost model uses this closed form; the tests pin it to the ALU.
pub fn add_aaps(bits: u32) -> u64 {
    5 * u64::from(bits)
}

/// Number of AAPs issued by [`PimAlu::mul`] on `a_bits` × `b_bits` operands.
pub fn mul_aaps(a_bits: u32, b_bits: u32) -> u64 {
    // Per multiplier bit: a_bits partial-product ANDs + a full-width add.
    u64::from(b_bits) * (u64::from(a_bits) + add_aaps(a_bits + b_bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_small_exact() {
        let mut alu = PimAlu::new();
        let a = BitPlanes::from_values(&[255, 0, 17], 8);
        let b = BitPlanes::from_values(&[1, 0, 4], 8);
        assert_eq!(alu.add(&a, &b).to_values(), vec![256, 0, 21]);
    }

    #[test]
    fn add_mixed_widths_zero_extends() {
        let mut alu = PimAlu::new();
        let a = BitPlanes::from_values(&[15], 4);
        let b = BitPlanes::from_values(&[240], 8);
        assert_eq!(alu.add(&a, &b).to_values(), vec![255]);
    }

    #[test]
    fn mul_small_exact() {
        let mut alu = PimAlu::new();
        let a = BitPlanes::from_values(&[12, 255, 0], 8);
        let b = BitPlanes::from_values(&[12, 255, 9], 8);
        assert_eq!(alu.mul(&a, &b).to_values(), vec![144, 65025, 0]);
    }

    #[test]
    fn aap_counts_match_closed_forms() {
        let mut alu = PimAlu::new();
        let a = BitPlanes::from_values(&[3], 8);
        let b = BitPlanes::from_values(&[5], 8);
        alu.add(&a, &b);
        assert_eq!(alu.trace().aaps, add_aaps(8));

        alu.reset_trace();
        alu.mul(&a, &b);
        assert_eq!(alu.trace().aaps, mul_aaps(8, 8));

        // 16-bit values as used by the Softmax path.
        let a = BitPlanes::from_values(&[1000], 16);
        let b = BitPlanes::from_values(&[2000], 16);
        alu.reset_trace();
        alu.mul(&a, &b);
        assert_eq!(alu.trace().aaps, mul_aaps(16, 16));
    }

    #[test]
    fn add_wrapping_truncates() {
        let mut alu = PimAlu::new();
        let a = BitPlanes::from_values(&[200], 8);
        let b = BitPlanes::from_values(&[100], 8);
        assert_eq!(alu.add_wrapping(&a, &b).to_values(), vec![44]); // 300 mod 256
    }

    fn encode_i16(v: i16, bits: u32) -> u64 {
        (v as u64) & ((1u64 << bits) - 1)
    }

    fn decode_signed(v: u64, bits: u32) -> i64 {
        let sign = 1u64 << (bits - 1);
        if v & sign != 0 {
            v as i64 - (1i64 << bits)
        } else {
            v as i64
        }
    }

    #[test]
    fn negate_two_complement() {
        let mut alu = PimAlu::new();
        let a = BitPlanes::from_values(&[encode_i16(5, 8), encode_i16(-3, 8), 0], 8);
        let n = alu.negate(&a);
        let vals: Vec<i64> = n.to_values().iter().map(|&v| decode_signed(v, 8)).collect();
        assert_eq!(vals, vec![-5, 3, 0]);
    }

    proptest! {
        #[test]
        fn signed_add_matches_wrapping_i8(a in any::<i8>(), b in any::<i8>()) {
            let mut alu = PimAlu::new();
            let pa = BitPlanes::from_values(&[encode_i16(a as i16, 8)], 8);
            let pb = BitPlanes::from_values(&[encode_i16(b as i16, 8)], 8);
            let s = alu.add_signed(&pa, &pb);
            let got = decode_signed(s.to_values()[0], 8);
            prop_assert_eq!(got, i64::from(a.wrapping_add(b)));
        }

        #[test]
        fn signed_mul_matches_exact_product(a in -128i16..128, b in -128i16..128) {
            let mut alu = PimAlu::new();
            let pa = BitPlanes::from_values(&[encode_i16(a, 8)], 8);
            let pb = BitPlanes::from_values(&[encode_i16(b, 8)], 8);
            let p = alu.mul_signed(&pa, &pb);
            let got = decode_signed(p.to_values()[0], 16);
            prop_assert_eq!(got, i64::from(a) * i64::from(b));
        }
    }

    proptest! {
        #[test]
        fn add_matches_integer_addition(
            a in proptest::collection::vec(0u64..65536, 1..64),
            b in proptest::collection::vec(0u64..65536, 1..64),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut alu = PimAlu::new();
            let pa = BitPlanes::from_values(a, 16);
            let pb = BitPlanes::from_values(b, 16);
            let sum = alu.add(&pa, &pb);
            let expect: Vec<u64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
            prop_assert_eq!(sum.to_values(), expect);
        }

        #[test]
        fn mul_matches_integer_multiplication(
            a in proptest::collection::vec(0u64..256, 1..32),
            b in proptest::collection::vec(0u64..256, 1..32),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let mut alu = PimAlu::new();
            let pa = BitPlanes::from_values(a, 8);
            let pb = BitPlanes::from_values(b, 8);
            let prod = alu.mul(&pa, &pb);
            let expect: Vec<u64> = a.iter().zip(b).map(|(x, y)| x * y).collect();
            prop_assert_eq!(prod.to_values(), expect);
        }

        #[test]
        fn mul_aap_count_matches_closed_form(a_bits in 1u32..12, b_bits in 1u32..12) {
            let mut alu = PimAlu::new();
            let a = BitPlanes::from_values(&[1], a_bits);
            let b = BitPlanes::from_values(&[1], b_bits);
            alu.mul(&a, &b);
            prop_assert_eq!(alu.trace().aaps, mul_aaps(a_bits, b_bits));
        }
    }
}
