//! Latency/energy model for bit-serial row-parallel PIM operations.
//!
//! Latency: every logic primitive (AND/OR/NOT/MAJ3) is one AAP command
//! sequence paced by the row cycle `t_RC`. A batch processes
//! `subarray_cols × P_sub` lanes per bank in lock-step (one activated mat
//! row per simultaneously-activated subarray); larger element counts issue
//! multiple batches back-to-back.
//!
//! Energy: each AAP activates one `subarray_cols`-bit row slice per active
//! subarray, costing the Table I full-row activation energy scaled by the
//! activated row fraction. This reproduces the paper's observation that
//! bit-serial in-situ computing is fast but activation-energy hungry
//! (Section V-B: TransPIM is *not* more energy-efficient than NBP).
//!
//! # AAP counts
//!
//! The functional ALU in [`crate::alu`] demonstrates a conservative
//! gate-level op sequence (5 primitives per full-adder bit). Real
//! majority-based DRAM adders are cheaper: with dual-contact cells the
//! complements fall out of the same activation (Ali et al., the paper's
//! reference \[2\]), leaving ~3 majority activations per bit, and partial
//! products accumulate in carry-save form (two compressor activations per
//! bit) with one final carry-propagate add. The cost model uses those
//! optimized counts:
//!
//! * `add(b)` = `3 b` AAPs,
//! * `mul(a, b)` = `b·a` partial-product ANDs + `2·a·b` carry-save
//!   compressions + `3·(a + b)` final propagate = `3ab + b + 3(a+b)` AAPs,
//! * `exp(b, order)` = `order` fused multiply-adds at width `b`.
//!
//! These constants are the calibration point that reproduces the paper's
//! system-level throughput (≈0.7–1.5 TMAC/s over 8 stacks) inside the 60 W
//! DRAM power budget of Section V-E; see `transpim::calib`.

use serde::{Deserialize, Serialize};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::geometry::HbmGeometry;
use transpim_hbm::timing::TimingParams;

/// Tunable PIM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimCostParams {
    /// Simultaneously activated subarrays per bank (Table I: 16).
    pub p_sub: u32,
    /// Enforce the JEDEC four-activation window (`t_FAW`) on the
    /// subarray-row activation stream. Commodity DRAM limits activations
    /// for power-delivery reasons; PIM designs (including the paper's)
    /// implicitly assume a relaxed window for the low-current mat-row
    /// activations. Enabling this prices the conservative reading.
    pub enforce_faw: bool,
}

impl Default for PimCostParams {
    fn default() -> Self {
        Self { p_sub: 16, enforce_faw: false }
    }
}

/// A row-parallel point-wise PIM operation over a batch of lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimOp {
    /// Point-wise addition of two `bits`-wide vectors.
    Add {
        /// Operand width in bits.
        bits: u32,
    },
    /// Point-wise multiplication `a × b`.
    Mul {
        /// Width of the first operand.
        a_bits: u32,
        /// Width of the second operand.
        b_bits: u32,
    },
    /// Point-wise exponential via `order`-term Taylor expansion evaluated by
    /// Horner's rule: `order` multiplications and additions at `bits` width
    /// (Figure 8(b) step 1).
    ExpTaylor {
        /// Fixed-point width (the paper uses 16 bits for Softmax).
        bits: u32,
        /// Taylor order (the paper uses 5).
        order: u32,
    },
    /// `planes` raw bit-plane operations (masking etc.).
    Bitwise {
        /// Number of plane-level primitives.
        planes: u32,
    },
}

/// Optimized majority-adder cost: 3 AAPs per bit (see module docs).
pub fn add_aaps(bits: u32) -> u64 {
    3 * u64::from(bits)
}

/// Optimized carry-save multiplier cost (see module docs).
pub fn mul_aaps(a_bits: u32, b_bits: u32) -> u64 {
    let (a, b) = (u64::from(a_bits), u64::from(b_bits));
    3 * a * b + b + 3 * (a + b)
}

impl PimOp {
    /// AAP command sequences per lane-batch for this operation.
    pub fn aaps(self) -> u64 {
        match self {
            PimOp::Add { bits } => add_aaps(bits),
            PimOp::Mul { a_bits, b_bits } => mul_aaps(a_bits, b_bits),
            PimOp::ExpTaylor { bits, order } => {
                u64::from(order) * (mul_aaps(bits, bits) + add_aaps(bits))
            }
            PimOp::Bitwise { planes } => u64::from(planes),
        }
    }
}

/// The PIM latency/energy model for a given memory configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimCostModel {
    geometry: HbmGeometry,
    timing: TimingParams,
    energy: EnergyParams,
    params: PimCostParams,
}

impl PimCostModel {
    /// Build a cost model.
    pub fn new(
        geometry: HbmGeometry,
        timing: TimingParams,
        energy: EnergyParams,
        params: PimCostParams,
    ) -> Self {
        Self { geometry, timing, energy, params }
    }

    /// The PIM parameters.
    pub fn params(&self) -> PimCostParams {
        self.params
    }

    /// Lanes processed per bank per batch.
    pub fn lanes_per_bank(&self) -> u64 {
        self.geometry.pim_lanes_per_bank(self.params.p_sub)
    }

    /// Number of lock-step batches needed for `elems_per_bank` lanes.
    pub fn batches(&self, elems_per_bank: u64) -> u64 {
        elems_per_bank.div_ceil(self.lanes_per_bank().max(1))
    }

    /// Latency of one batch of `op`, in nanoseconds. With
    /// [`PimCostParams::enforce_faw`], the AAP stream additionally respects
    /// the four-activation window: each AAP activates `p_sub` subarray rows
    /// in the bank, so the sustainable AAP period becomes
    /// `max(t_RC, p_sub × t_FAW / 4)`.
    pub fn batch_latency_ns(&self, op: PimOp) -> f64 {
        let mut period = self.timing.t_aap();
        if self.params.enforce_faw {
            period = period.max(f64::from(self.params.p_sub) * self.timing.t_faw / 4.0);
        }
        op.aaps() as f64 * period
    }

    /// Latency of `op` over `elems_per_bank` lanes in the busiest bank.
    pub fn latency_ns(&self, op: PimOp, elems_per_bank: u64) -> f64 {
        self.batches(elems_per_bank) as f64 * self.batch_latency_ns(op)
    }

    /// Energy of one row activation of a single subarray mat row, in pJ.
    pub fn subarray_activation_pj(&self) -> f64 {
        self.energy.e_act * self.geometry.subarray_row_fraction()
    }

    /// Energy of `op` over `total_elems` lanes (system-wide), in pJ.
    ///
    /// Each AAP activates one mat row per group of `subarray_cols` lanes.
    pub fn energy_pj(&self, op: PimOp, total_elems: u64) -> f64 {
        let rows = total_elems.div_ceil(u64::from(self.geometry.subarray_cols)) as f64;
        op.aaps() as f64 * rows * self.subarray_activation_pj()
    }

    /// Per-lane energy of `op` in pJ (asymptotic, full rows).
    pub fn energy_per_elem_pj(&self, op: PimOp) -> f64 {
        op.aaps() as f64 * self.subarray_activation_pj() / f64::from(self.geometry.subarray_cols)
    }

    /// Latency of a PIM-only in-situ tree reduction (the baseline the ACU
    /// replaces; Section II-C): reducing `vectors_per_bank` vectors of
    /// `vec_len` `bits`-wide elements by `log2(vec_len)` halving steps, each
    /// step needing a row-buffer-mediated shifted copy of the shrinking
    /// operand plus a point-wise add at growing width.
    pub fn reduce_tree_latency_ns(&self, vec_len: u32, bits: u32, vectors_per_bank: u64) -> f64 {
        if vec_len <= 1 {
            return 0.0;
        }
        let steps = 32 - (vec_len - 1).leading_zeros(); // ceil(log2)
        let lanes = self.lanes_per_bank();
        // Vectors that fit side by side in one batch.
        let vecs_per_batch = (lanes / u64::from(vec_len)).max(1);
        let batches = vectors_per_bank.div_ceil(vecs_per_batch) as f64;
        let mut per_batch = 0.0;
        for s in 0..steps {
            let width = bits + s; // partial sums widen each step
            per_batch +=
                self.shift_copy_ns(width) + self.batch_latency_ns(PimOp::Add { bits: width });
        }
        batches * per_batch
    }

    /// Energy of the PIM-only tree reduction over `total_vectors` vectors.
    pub fn reduce_tree_energy_pj(&self, vec_len: u32, bits: u32, total_vectors: u64) -> f64 {
        if vec_len <= 1 {
            return 0.0;
        }
        let steps = 32 - (vec_len - 1).leading_zeros();
        let mut pj = 0.0;
        for s in 0..steps {
            let width = bits + s;
            let elems = total_vectors * u64::from(vec_len >> (s + 1)).max(1);
            pj += self.energy_pj(PimOp::Add { bits: width }, elems);
            // Shifted copy: one activation + write-back per moved row slice.
            let rows =
                elems.div_ceil(u64::from(self.geometry.subarray_cols)) as f64 * f64::from(width);
            pj += rows
                * (self.subarray_activation_pj()
                    + self.energy.local_column_access(u64::from(self.geometry.dq_bits)));
        }
        pj
    }

    /// Expand one lock-step batch of `op` into its DRAM command trace
    /// (every active subarray issues this stream simultaneously). Replaying
    /// the trace under the Table I timing rules reproduces
    /// [`PimCostModel::batch_latency_ns`] exactly — the cross-check the
    /// tests (and the `trace_equivalence` integration test) rely on.
    pub fn batch_trace(&self, op: PimOp) -> transpim_hbm::command::CommandTrace {
        transpim_hbm::command::pim_batch_trace(op.aaps())
    }

    /// Time to move `rows` row slices through the row buffer with a column
    /// offset (the intra-subarray data reorganization that makes PIM-only
    /// reductions slow): activate, stream the slice through the sense amps,
    /// write back, precharge.
    fn shift_copy_ns(&self, rows: u32) -> f64 {
        let t = &self.timing;
        let cols = f64::from(self.geometry.subarray_cols) / f64::from(self.geometry.dq_bits);
        f64::from(rows) * (t.t_rcd + cols * t.t_ccd_l + t.t_wr + t.t_rp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PimCostModel {
        PimCostModel::new(
            HbmGeometry::default(),
            TimingParams::default(),
            EnergyParams::default(),
            PimCostParams::default(),
        )
    }

    #[test]
    fn lanes_per_bank_matches_table1() {
        assert_eq!(model().lanes_per_bank(), 512 * 16);
    }

    #[test]
    fn aap_counts_match_optimized_closed_forms() {
        assert_eq!(PimOp::Add { bits: 8 }.aaps(), 24);
        assert_eq!(PimOp::Mul { a_bits: 8, b_bits: 8 }.aaps(), 3 * 64 + 8 + 48);
        assert_eq!(
            PimOp::ExpTaylor { bits: 16, order: 5 }.aaps(),
            5 * (mul_aaps(16, 16) + add_aaps(16))
        );
        // The optimized counts must stay below the conservative gate-level
        // ALU sequence they abstract (sanity tie to the functional model).
        assert!(PimOp::Add { bits: 8 }.aaps() <= crate::alu::add_aaps(8));
        assert!(PimOp::Mul { a_bits: 8, b_bits: 8 }.aaps() <= crate::alu::mul_aaps(8, 8));
    }

    #[test]
    fn batching_rounds_up() {
        let m = model();
        assert_eq!(m.batches(1), 1);
        assert_eq!(m.batches(8192), 1);
        assert_eq!(m.batches(8193), 2);
    }

    #[test]
    fn mul8_batch_latency_is_about_11us() {
        let m = model();
        let ns = m.batch_latency_ns(PimOp::Mul { a_bits: 8, b_bits: 8 });
        assert!((ns - 248.0 * 45.0).abs() < 1e-9);
    }

    #[test]
    fn system_throughput_and_power_envelope() {
        // System-level sanity against the paper: 2048 banks of 8192 lanes
        // doing back-to-back 8-bit multiplies should deliver on the order
        // of 1 TMAC/s while dissipating well under the 60 W DRAM budget.
        let m = model();
        let per_bank_rate =
            m.lanes_per_bank() as f64 / m.batch_latency_ns(PimOp::Mul { a_bits: 8, b_bits: 8 });
        let system_rate = per_bank_rate * 2048.0; // MACs per ns = GMAC/s
        assert!(system_rate > 500.0 && system_rate < 5000.0, "system {system_rate} GMAC/s");
        let power_w =
            system_rate * 1e9 * m.energy_per_elem_pj(PimOp::Mul { a_bits: 8, b_bits: 8 }) * 1e-12;
        assert!(power_w < 60.0, "sustained PIM power {power_w} W exceeds budget");
    }

    #[test]
    fn per_mac_energy_is_tens_of_pj() {
        // Sanity against the paper's implied budget: bit-serial 8-bit
        // multiply should cost tens of pJ per element so that ~0.5 TOP/s
        // stays under the 60 W DRAM budget (Section V-E).
        let e = model().energy_per_elem_pj(PimOp::Mul { a_bits: 8, b_bits: 8 });
        assert!(e > 20.0 && e < 200.0, "per-mul energy {e} pJ out of plausible range");
    }

    #[test]
    fn reduce_tree_slower_than_a_few_adds() {
        let m = model();
        let tree = m.reduce_tree_latency_ns(512, 8, 16);
        let add = m.latency_ns(PimOp::Add { bits: 8 }, 16 * 512);
        assert!(tree > 3.0 * add, "tree {tree} should cost several adds {add}");
    }

    #[test]
    fn reduce_tree_zero_for_trivial_vectors() {
        let m = model();
        assert_eq!(m.reduce_tree_latency_ns(1, 8, 100), 0.0);
        assert_eq!(m.reduce_tree_energy_pj(1, 8, 100), 0.0);
    }

    #[test]
    fn command_trace_replay_matches_closed_form() {
        let m = model();
        for op in [
            PimOp::Add { bits: 8 },
            PimOp::Mul { a_bits: 8, b_bits: 8 },
            PimOp::ExpTaylor { bits: 16, order: 5 },
            PimOp::Bitwise { planes: 7 },
        ] {
            let trace = m.batch_trace(op);
            let replayed = trace.replay_ns(&TimingParams::default());
            let closed = m.batch_latency_ns(op);
            assert!(
                (replayed - closed).abs() < 1e-6,
                "{op:?}: trace {replayed} vs formula {closed}"
            );
            assert_eq!(trace.aaps(), op.aaps());
        }
    }

    #[test]
    fn faw_enforcement_slows_wide_activation() {
        // 16 simultaneous subarray activations per AAP vs 4 per 16 ns:
        // the sustainable AAP period rises from 45 ns to 64 ns (1.42x).
        let params = PimCostParams { enforce_faw: true, ..PimCostParams::default() };
        let faw = PimCostModel::new(
            HbmGeometry::default(),
            TimingParams::default(),
            EnergyParams::default(),
            params,
        );
        let free = model();
        let op = PimOp::Mul { a_bits: 8, b_bits: 8 };
        let ratio = faw.batch_latency_ns(op) / free.batch_latency_ns(op);
        assert!((ratio - 64.0 / 45.0).abs() < 1e-9, "ratio {ratio}");
        // With few subarrays the window is not binding.
        let narrow = PimCostModel::new(
            HbmGeometry::default(),
            TimingParams::default(),
            EnergyParams::default(),
            PimCostParams { p_sub: 4, enforce_faw: true },
        );
        assert!((narrow.batch_latency_ns(op) / 248.0 - 45.0).abs() < 1e-9);
    }

    #[test]
    fn latency_scales_linearly_with_batches() {
        let m = model();
        let one = m.latency_ns(PimOp::Add { bits: 8 }, 8192);
        let four = m.latency_ns(PimOp::Add { bits: 8 }, 4 * 8192);
        assert!((four - 4.0 * one).abs() < 1e-9);
    }
}
