//! Bit-serial in-subarray processing-in-memory (PIM) substrate.
//!
//! TransPIM keeps point-wise vector arithmetic *inside* the DRAM subarrays,
//! using bit-serial row-parallel operations in the style of Ambit /
//! ComputeDRAM: data is laid out column-wise (one value per bit-column,
//! one bit per row), and each triple-row activation computes a Boolean
//! majority/AND/OR across entire rows at once (Section IV-A2).
//!
//! This crate provides both halves of that substrate and keeps them welded
//! together:
//!
//! * [`bitplane`] — a functional bit-plane array ([`bitplane::BitPlanes`])
//!   plus the row-level logic primitives (AND/OR/NOT/MAJ3),
//! * [`alu`] — majority-based ripple-carry addition, shift-and-add
//!   multiplication, and the 5th-order Taylor exponential built from those
//!   primitives, each returning an exact count of the AAP
//!   (activate-activate-precharge) command sequences it issued,
//! * [`cost`] — the latency/energy model that turns AAP counts into
//!   nanoseconds and picojoules using the Table I constants,
//! * [`rowclone`] — in-DRAM bulk row copy (RowClone FPM) and the
//!   row-buffer-mediated shifted copy used by PIM-only reductions,
//! * [`layout`] — capacity bookkeeping for the column-wise layout.
//!
//! Because the cost model consumes the *same* AAP counts that the functional
//! ALU produces, the simulator's timing cannot drift away from an actually
//! correct in-memory algorithm — the property tests in [`alu`] prove the op
//! sequences compute real arithmetic.

pub mod alu;
pub mod bitplane;
pub mod cost;
pub mod ecc;
pub mod layout;
pub mod rowclone;

pub use alu::{AapTrace, PimAlu};
pub use bitplane::BitPlanes;
pub use cost::{PimCostModel, PimCostParams, PimOp};
pub use ecc::EccScheme;
