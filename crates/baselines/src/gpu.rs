//! GPU/TPU roofline model.
//!
//! Models one encoder pass as a sequence of matmuls (compute-or-bandwidth
//! bound, with sustained-efficiency factors) plus per-layer framework
//! overhead, and the generative decode loop as per-step work dominated by a
//! fixed per-step overhead — which is what measured TF2 seq2seq decoding on
//! a 2019-class GPU looks like, and what makes the paper's GPU baselines
//! 20–100× slower than TransPIM on summarization/LM workloads.

use serde::{Deserialize, Serialize};
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

/// An analytically-modeled conventional platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformModel {
    /// Platform name.
    pub name: String,
    /// Peak arithmetic throughput (TFLOP/s).
    pub peak_tflops: f64,
    /// Peak memory bandwidth (GB/s).
    pub peak_bw_gbs: f64,
    /// Sustained fraction of peak FLOPs on these matmul shapes.
    pub matmul_efficiency: f64,
    /// Sustained fraction of peak bandwidth on memory-bound ops.
    pub mem_efficiency: f64,
    /// Fixed overhead per encoder-layer invocation (µs).
    pub layer_overhead_us: f64,
    /// Fixed overhead per generative decode step (µs).
    pub decode_step_overhead_us: f64,
    /// Board power under load (W).
    pub power_w: f64,
    /// Bytes per activation element (fp32 in the paper's TF2 stack).
    pub act_bytes: f64,
    /// Whether generation reuses a KV cache. The paper's TF2 baselines
    /// recompute the full prefix every step (the standard TF2 behavior in
    /// 2021), which is a large part of why its GPU numbers on generative
    /// workloads are so slow.
    pub incremental_decode: bool,
}

impl PlatformModel {
    /// RTX 2080 Ti running TF2 + XLA (constants in `transpim::calib::gpu`).
    pub fn rtx_2080_ti() -> Self {
        Self {
            name: "GPU (RTX 2080 Ti)".into(),
            peak_tflops: 13.45,
            peak_bw_gbs: 616.0,
            matmul_efficiency: 0.05,
            mem_efficiency: 0.5,
            layer_overhead_us: 100.0,
            decode_step_overhead_us: 10_000.0,
            power_w: 250.0,
            act_bytes: 4.0,
            incremental_decode: false,
        }
    }

    /// One TPUv3 board (8 cores) running JIT-compiled TensorFlow.
    pub fn tpu_v3() -> Self {
        Self {
            name: "TPUv3".into(),
            peak_tflops: 420.0,
            peak_bw_gbs: 900.0,
            matmul_efficiency: 0.015,
            mem_efficiency: 0.5,
            layer_overhead_us: 80.0,
            decode_step_overhead_us: 8_000.0,
            power_w: 200.0,
            act_bytes: 4.0,
            incremental_decode: false,
        }
    }

    fn sustained_flops(&self) -> f64 {
        self.peak_tflops * 1e12 * self.matmul_efficiency
    }

    fn sustained_bw(&self) -> f64 {
        self.peak_bw_gbs * 1e9 * self.mem_efficiency
    }

    /// Roofline time (s) of a kernel with `flops` arithmetic and `bytes`
    /// memory traffic.
    pub fn kernel_s(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.sustained_flops()).max(bytes / self.sustained_bw())
    }

    /// Time (s) of one encoder layer at sequence length `l`.
    pub fn encoder_layer_s(&self, cfg: &ModelConfig, l: u64) -> f64 {
        let d = cfg.d_model as f64;
        let dff = cfg.d_ff as f64;
        let h = cfg.heads as f64;
        let lf = l as f64;
        // Projections + FFN: compute-bound matmuls; weights stream once.
        let proj_flops = 2.0 * lf * d * d * 4.0 + 2.0 * lf * d * dff * 2.0;
        let proj_bytes = (4.0 * d * d + 2.0 * d * dff) * self.act_bytes;
        // Attention: score/value matmuls plus the memory-bound softmax over
        // the h·L² score matrix (written + read ~3× in a non-fused stack).
        let attn_flops = 2.0 * 2.0 * lf * lf * d;
        let attn_bytes = 3.0 * h * lf * lf * self.act_bytes;
        self.kernel_s(proj_flops, proj_bytes)
            + self.kernel_s(attn_flops, attn_bytes)
            + self.layer_overhead_us * 1e-6
    }

    /// Time (s) of one full-stack decode step at prefix length `t` with
    /// `l_ctx` cross-attention context tokens: per-layer weight-streaming
    /// matvecs plus one per-step framework overhead.
    pub fn decode_step_s(&self, cfg: &ModelConfig, t: u64, l_ctx: u64) -> f64 {
        let d = cfg.d_model as f64;
        let dff = cfg.d_ff as f64;
        let per_layer = if self.incremental_decode {
            // KV-cached step: weight-streaming matvecs over one token.
            let cross = if cfg.cross_attention { 4.0 * d * d } else { 0.0 };
            let weight_bytes = (4.0 * d * d + cross + 2.0 * d * dff) * self.act_bytes;
            let kv_bytes = ((t + l_ctx) as f64) * d * 2.0 * self.act_bytes;
            let flops = 2.0 * (weight_bytes / self.act_bytes) + 4.0 * (t + l_ctx) as f64 * d;
            self.kernel_s(flops, weight_bytes + kv_bytes)
        } else {
            // TF2-style step: recompute the whole prefix (t tokens of
            // self-attention plus cross-attention over the full context).
            let tf = t as f64;
            let proj_flops = 2.0 * tf * d * d * 4.0 + 2.0 * tf * d * dff * 2.0;
            let cross_flops = if cfg.cross_attention {
                2.0 * tf * d * d * 2.0 + 4.0 * tf * l_ctx as f64 * d
            } else {
                0.0
            };
            let attn_flops = 4.0 * tf * tf * d;
            let h = cfg.heads as f64;
            let attn_bytes = 3.0 * h * tf * (tf + l_ctx as f64) * self.act_bytes;
            self.kernel_s(proj_flops + cross_flops + attn_flops, attn_bytes)
        };
        cfg.decoder_layers as f64 * per_layer + self.decode_step_overhead_us * 1e-6
    }

    /// End-to-end batch time (s) for a workload.
    pub fn batch_time_s(&self, w: &Workload) -> f64 {
        let cfg = &w.model;
        let enc_layers =
            if cfg.encoder_layers > 0 { cfg.encoder_layers } else { cfg.decoder_layers };
        // Sequences in a batch run back-to-back at this model granularity
        // (the big matmuls already saturate the device at batch 1 for long
        // sequences; for short ones the layer overhead amortizes).
        let batch_eff = 1.0 + 0.25 * (w.batch as f64 - 1.0); // sub-linear batching
        let mut t = enc_layers as f64 * self.encoder_layer_s(cfg, w.seq_len as u64) * batch_eff;
        if cfg.decoder_layers > 0 && w.decode_len > 0 {
            let ctx = if cfg.cross_attention { w.seq_len as u64 } else { 0 };
            for step in 0..w.decode_len as u64 {
                let prefix =
                    if cfg.cross_attention { step + 1 } else { w.seq_len as u64 + step + 1 };
                t += self.decode_step_s(cfg, prefix, ctx) * w.batch as f64;
            }
        }
        t
    }

    /// Energy (J) of a batch.
    pub fn batch_energy_j(&self, w: &Workload) -> f64 {
        self.batch_time_s(w) * self.power_w
    }

    /// Achieved throughput (GOP/s) on a workload.
    pub fn throughput_gops(&self, w: &Workload) -> f64 {
        w.total_ops() as f64 * 1e-9 / self.batch_time_s(w)
    }

    /// Energy efficiency (GOP/J).
    pub fn gop_per_joule(&self, w: &Workload) -> f64 {
        w.total_ops() as f64 * 1e-9 / self.batch_energy_j(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_sequences_take_much_longer() {
        let gpu = PlatformModel::rtx_2080_ti();
        let short = gpu.batch_time_s(&Workload::synthetic_roberta(128));
        let long = gpu.batch_time_s(&Workload::synthetic_roberta(4096));
        assert!(long > 20.0 * short, "short {short}, long {long}");
    }

    #[test]
    fn generation_is_a_large_share_of_summarization_time() {
        let gpu = PlatformModel::rtx_2080_ti();
        let with = gpu.batch_time_s(&Workload::pubmed());
        let mut enc_only = Workload::pubmed();
        enc_only.decode_len = 0;
        let without = gpu.batch_time_s(&enc_only);
        assert!(
            with > 1.2 * without,
            "decoding should cost a large share: with {with}, without {without}"
        );
    }

    #[test]
    fn pubmed_lands_in_measured_tf2_range() {
        // A Pegasus-large 4K summarization on a 2080 Ti with TF2 measured
        // in the tens of seconds per sequence (the paper's GPU baseline is
        // ~80× slower than TransPIM's sub-second run).
        let gpu = PlatformModel::rtx_2080_ti();
        let s = gpu.batch_time_s(&Workload::pubmed());
        assert!(s > 2.0 && s < 120.0, "PubMed GPU time {s} s");
    }

    #[test]
    fn tpu_beats_gpu_but_modestly() {
        // Paper: TPU speedups over GPU are ~2.5× on average.
        let gpu = PlatformModel::rtx_2080_ti();
        let tpu = PlatformModel::tpu_v3();
        let w = Workload::triviaqa();
        let ratio = gpu.batch_time_s(&w) / tpu.batch_time_s(&w);
        assert!(ratio > 1.0 && ratio < 10.0, "TPU/GPU ratio {ratio}");
    }

    #[test]
    fn kernel_roofline_picks_the_max() {
        let gpu = PlatformModel::rtx_2080_ti();
        // Compute-bound: enormous flops, no bytes.
        let c = gpu.kernel_s(1e12, 0.0);
        // Memory-bound: no flops, lots of bytes.
        let m = gpu.kernel_s(0.0, 1e12);
        assert!(c > 0.0 && m > 0.0);
        assert!((gpu.kernel_s(1e12, 1e12) - c.max(m)).abs() < 1e-12);
    }
}
