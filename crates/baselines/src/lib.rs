//! Conventional-platform baselines for the TransPIM evaluation
//! (Section V-A2): an analytic GPU/TPU roofline model and the published
//! ASIC comparator figures.
//!
//! These stand in for the paper's measured RTX 2080 Ti / TPUv3 runs (see
//! the substitution table in DESIGN.md). The calibration constants live in
//! [`gpu::PlatformModel`]'s constructors and are documented where defined.

pub mod asic;
pub mod gpu;

pub use asic::AsicSpec;
pub use gpu::PlatformModel;
