//! ASIC comparator figures (Section V-B "Comparison to ASIC").
//!
//! The paper compares TransPIM against two attention accelerators using
//! their published peak throughputs and areas; we encode the same
//! constants, plus SpAtten's reported 35× GPU speedup on GPT-2 generation
//! that the paper contrasts with its own 83.9×/114.9×.

use serde::{Deserialize, Serialize};

/// Published figures for one comparator ASIC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsicSpec {
    /// Design name.
    pub name: String,
    /// Peak throughput in GOP/s.
    pub peak_gops: f64,
    /// Logic area in mm² (as quoted by the paper, excluding memory).
    pub area_mm2: f64,
    /// Reported end-to-end GPU speedup on generative GPT-2, if published.
    pub reported_gpt2_speedup: Option<f64>,
}

impl AsicSpec {
    /// A³ (HPCA'20): 221 GOP/s peak, 2.08 mm².
    pub fn a3() -> Self {
        Self { name: "A3".into(), peak_gops: 221.0, area_mm2: 2.08, reported_gpt2_speedup: None }
    }

    /// SpAtten (HPCA'21), the 1/8-scale variant the paper quotes:
    /// 360 GOP/s peak, 1.55 mm², 35× GPU speedup on GPT-2 generation.
    pub fn spatten_eighth() -> Self {
        Self {
            name: "SpAtten-1/8".into(),
            peak_gops: 360.0,
            area_mm2: 1.55,
            reported_gpt2_speedup: Some(35.0),
        }
    }

    /// Both comparators in the paper's order.
    pub fn paper_comparators() -> Vec<AsicSpec> {
        vec![Self::a3(), Self::spatten_eighth()]
    }

    /// Throughput ratio of an achieved `gops` figure over this ASIC's peak
    /// (the paper reports TransPIM at 2.0–3.3× the ASIC peaks).
    pub fn throughput_ratio(&self, gops: f64) -> f64 {
        gops / self.peak_gops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants() {
        let a3 = AsicSpec::a3();
        assert_eq!(a3.peak_gops, 221.0);
        let sp = AsicSpec::spatten_eighth();
        assert_eq!(sp.reported_gpt2_speedup, Some(35.0));
        assert_eq!(AsicSpec::paper_comparators().len(), 2);
    }

    #[test]
    fn paper_claimed_ratios_hold_at_734_gops() {
        // The paper's 734 GOP/s average is 3.3× A³ and 2.0× SpAtten.
        assert!((AsicSpec::a3().throughput_ratio(734.0) - 3.32).abs() < 0.1);
        assert!((AsicSpec::spatten_eighth().throughput_ratio(734.0) - 2.04).abs() < 0.1);
    }
}
