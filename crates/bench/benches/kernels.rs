//! Criterion micro-benchmarks of the simulator's hot kernels: the
//! functional bit-plane ALU, the ACU adder tree and divider, the ring-hop
//! scheduler, and the matrix kernel the functional co-simulation runs on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transpim_acu::adder_tree::tree_reduce;
use transpim_acu::divider::recip_q16;
use transpim_acu::ring::{ring_step, TransferCostModel};
use transpim_hbm::energy::EnergyParams;
use transpim_hbm::geometry::{BankId, HbmGeometry};
use transpim_hbm::resource::{BusParams, ResourceMap};
use transpim_pim::{BitPlanes, PimAlu};
use transpim_transformer::matrix::Matrix;

fn bench_bitplane_alu(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitplane_alu");
    for lanes in [512usize, 8192] {
        let a = BitPlanes::from_values(&vec![173u64; lanes], 8);
        let b = BitPlanes::from_values(&vec![91u64; lanes], 8);
        g.bench_with_input(BenchmarkId::new("add8", lanes), &lanes, |bench, _| {
            bench.iter(|| {
                let mut alu = PimAlu::new();
                black_box(alu.add(black_box(&a), black_box(&b)))
            })
        });
        g.bench_with_input(BenchmarkId::new("mul8", lanes), &lanes, |bench, _| {
            bench.iter(|| {
                let mut alu = PimAlu::new();
                black_box(alu.mul(black_box(&a), black_box(&b)))
            })
        });
    }
    g.finish();
}

fn bench_acu(c: &mut Criterion) {
    let mut g = c.benchmark_group("acu");
    let values: Vec<u64> = (0..4096).map(|i| (i * 2654435761u64) >> 40).collect();
    g.bench_function("tree_reduce_4096", |b| b.iter(|| black_box(tree_reduce(black_box(&values)))));
    g.bench_function("recip_q16", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for x in 1..256i64 {
                acc ^= recip_q16(black_box(x << 16));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_ring_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_scheduler");
    for banks in [32u32, 256, 2048] {
        let geom = HbmGeometry::default();
        let map = ResourceMap::new(geom, BusParams::default(), true);
        let xfer = TransferCostModel::new(geom, EnergyParams::default(), true);
        let ids: Vec<BankId> = (0..banks).map(BankId).collect();
        g.bench_with_input(BenchmarkId::new("ring_step", banks), &banks, |b, _| {
            b.iter(|| black_box(ring_step(&map, &xfer, black_box(&ids), 2048)))
        });
    }
    g.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix");
    let a = Matrix::from_fn(64, 64, |r, cc| ((r * 64 + cc) as f32 * 0.01).sin());
    let b = Matrix::from_fn(64, 64, |r, cc| ((r + cc) as f32 * 0.02).cos());
    g.bench_function("matmul_64", |bench| {
        bench.iter(|| black_box(black_box(&a).matmul(black_box(&b))))
    });
    g.bench_function("matmul_transb_64", |bench| {
        bench.iter(|| black_box(black_box(&a).matmul_transb(black_box(&b))))
    });
    g.finish();
}

criterion_group!(benches, bench_bitplane_alu, bench_acu, bench_ring_scheduler, bench_matrix);
criterion_main!(benches);
