//! Criterion benchmarks of the decoder fast path: compile + price of a
//! GPT-style decode at growing generation lengths, compressed (the
//! `Step::Repeat` program the compiler now emits) versus unrolled (the
//! explicit step sequence it used to emit). The gap between the two
//! groups is the tentpole win: compressed cost is flat in `decode_len`
//! while unrolled cost grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim_dataflow::token_flow;
use transpim_transformer::workload::Workload;

const DECODE_LENS: [usize; 3] = [256, 1024, 4096];

fn gpt(decode_len: usize) -> Workload {
    let mut w = Workload::lm();
    w.decode_len = decode_len;
    w
}

fn bench_decode_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_compile");
    for decode in DECODE_LENS {
        let w = gpt(decode);
        g.bench_with_input(BenchmarkId::new("compressed", decode), &w, |b, w| {
            b.iter(|| black_box(token_flow::compile(black_box(w), 2048)))
        });
        g.bench_with_input(BenchmarkId::new("unrolled", decode), &w, |b, w| {
            b.iter(|| black_box(token_flow::compile(black_box(w), 2048).unroll()))
        });
    }
    g.finish();
}

fn bench_decode_price(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_price");
    g.sample_size(10);
    for decode in DECODE_LENS {
        let prog = token_flow::compile(&gpt(decode), 2048);
        let unrolled = prog.unroll();
        g.bench_with_input(BenchmarkId::new("compressed", decode), &prog, |b, p| {
            b.iter(|| {
                let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
                black_box(ex.run(black_box(p)))
            })
        });
        g.bench_with_input(BenchmarkId::new("unrolled", decode), &unrolled, |b, p| {
            b.iter(|| {
                let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
                black_box(ex.run(black_box(p)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decode_compile, bench_decode_price);
criterion_main!(benches);
