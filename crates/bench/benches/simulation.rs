//! Criterion benchmarks of the end-to-end simulation pipeline: dataflow
//! compilation and execution-engine pricing — the operations every figure
//! binary runs dozens of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim::report::DataflowKind;
use transpim_dataflow::{layer_flow, token_flow};
use transpim_transformer::workload::Workload;

fn small_workload() -> Workload {
    let mut w = Workload::triviaqa();
    w.model.encoder_layers = 4;
    w
}

fn decoder_workload() -> Workload {
    let mut w = Workload::pubmed();
    w.model.encoder_layers = 2;
    w.model.decoder_layers = 2;
    w.decode_len = 16;
    w.seq_len = 1024;
    w
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    let w = small_workload();
    g.bench_function("token_flow_encoder", |b| {
        b.iter(|| black_box(token_flow::compile(black_box(&w), 2048)))
    });
    g.bench_function("layer_flow_encoder", |b| {
        b.iter(|| black_box(layer_flow::compile(black_box(&w), 2048)))
    });
    let wd = decoder_workload();
    g.bench_function("token_flow_decoder", |b| {
        b.iter(|| black_box(token_flow::compile(black_box(&wd), 2048)))
    });
    g.finish();
}

fn bench_execute(c: &mut Criterion) {
    let mut g = c.benchmark_group("execute");
    let w = small_workload();
    let prog = token_flow::compile(&w, 2048);
    for kind in [ArchKind::TransPim, ArchKind::OriginalPim, ArchKind::Nbp] {
        g.bench_with_input(BenchmarkId::new("token_program", kind.label()), &kind, |b, &k| {
            b.iter(|| {
                let mut ex = Executor::new(ArchConfig::new(k));
                black_box(ex.run(black_box(&prog)))
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let w = decoder_workload();
    g.bench_function("simulate_decoder_workload", |b| {
        let acc = Accelerator::new(ArchConfig::new(ArchKind::TransPim));
        b.iter(|| black_box(acc.simulate(black_box(&w), DataflowKind::Token)))
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_execute, bench_end_to_end);
criterion_main!(benches);
