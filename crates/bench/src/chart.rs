//! Minimal ASCII chart rendering for the figure binaries: horizontal bars
//! (Figure 10-style comparisons) and stacked category bars (Figure 11-style
//! breakdowns).

/// Render a horizontal bar chart. Values are scaled so the largest bar
/// spans `width` cells; each line is `label | ███··· value`.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let cells = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
        out.push_str(&format!(
            "  {label:<label_w$} |{}{} {value:.2}\n",
            "#".repeat(cells),
            " ".repeat(width.saturating_sub(cells)),
        ));
    }
    out
}

/// Render stacked 100%-bars from per-row category fractions. `categories`
/// supplies one glyph per category; fractions are normalized per row.
pub fn stacked_chart(
    title: &str,
    categories: &[(&str, char)],
    rows: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("  [");
    for (i, (name, glyph)) in categories.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push(*glyph);
        out.push_str(" = ");
        out.push_str(name);
    }
    out.push_str("]\n");
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, fracs) in rows {
        let total: f64 = fracs.iter().sum();
        let mut bar = String::new();
        let mut used = 0usize;
        for (i, frac) in fracs.iter().enumerate() {
            let share = if total > 0.0 { frac / total } else { 0.0 };
            let mut cells = (share * width as f64).round() as usize;
            if i == fracs.len() - 1 {
                cells = width.saturating_sub(used);
            }
            let glyph = categories.get(i).map_or('?', |(_, g)| *g);
            bar.extend(std::iter::repeat_n(glyph, cells.min(width - used)));
            used = (used + cells).min(width);
        }
        out.push_str(&format!("  {label:<label_w$} |{bar}|\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let rows = vec![("a".to_string(), 10.0), ("bb".to_string(), 5.0)];
        let s = bar_chart("t", &rows, 20);
        assert!(s.contains(&"#".repeat(20)), "longest bar fills the width:\n{s}");
        assert!(s.contains(&"#".repeat(10)), "half-value bar is half as long:\n{s}");
        assert!(s.contains("bb |"));
    }

    #[test]
    fn bar_chart_handles_zeroes() {
        let rows = vec![("z".to_string(), 0.0)];
        let s = bar_chart("t", &rows, 10);
        assert!(s.contains("z |"));
        assert!(!s.contains('#'));
    }

    #[test]
    fn stacked_chart_fills_exactly() {
        let cats = [("move", 'm'), ("compute", 'c')];
        let rows = vec![("sys".to_string(), vec![0.25, 0.75])];
        let s = stacked_chart("t", &cats, &rows, 40);
        let bar: String = s.lines().nth(1).unwrap().chars().collect();
        let m = bar.chars().filter(|&c| c == 'm').count();
        let c = bar.chars().filter(|&c| c == 'c').count();
        assert_eq!(m + c, 40, "bar must fill the width: {bar}");
        assert_eq!(m, 10);
    }

    #[test]
    fn stacked_chart_degenerate_rows() {
        let cats = [("a", 'a')];
        let rows = vec![("x".to_string(), vec![0.0])];
        let s = stacked_chart("t", &cats, &rows, 10);
        assert!(s.contains("x "), "{s}");
    }
}
