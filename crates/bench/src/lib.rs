//! Shared harness for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index), printing the same rows/series the
//! paper reports and writing a JSON dump alongside for EXPERIMENTS.md.

pub mod chart;

use std::path::Path;
use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::{DataflowKind, SimReport};
use transpim_transformer::workload::Workload;

/// Simulate one `dataflow`-`arch` system on `workload` with `stacks` HBM
/// stacks.
pub fn run_system(
    kind: ArchKind,
    dataflow: DataflowKind,
    workload: &Workload,
    stacks: u32,
) -> SimReport {
    let arch = ArchConfig::new(kind).with_stacks(stacks);
    Accelerator::new(arch).simulate(workload, dataflow)
}

/// All eight memory-based systems of Figure 10, in the paper's order.
pub fn all_systems() -> Vec<(DataflowKind, ArchKind)> {
    let mut v = Vec::new();
    for kind in ArchKind::ALL {
        for df in DataflowKind::ALL {
            v.push((df, kind));
        }
    }
    v
}

/// Write a serializable value as pretty JSON next to the binaries.
///
/// # Panics
///
/// Panics on I/O or serialization failure (these binaries are harness
/// tools; failing loudly is correct).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, json).expect("write results file");
    eprintln!("[results written to {}]", path.display());
}

/// Pretty horizontal rule for table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
