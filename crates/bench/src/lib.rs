//! Shared harness for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index), printing the same rows/series the
//! paper reports and writing a JSON dump alongside for EXPERIMENTS.md.
//!
//! Observability: every binary that routes its simulations through
//! [`ObsSession`] accepts `--trace <PATH>` (Chrome-tracing timeline) and
//! `--metrics <PATH>` (flat JSON/CSV aggregates) without any per-binary
//! flag handling. Diagnostics that are not table output go through
//! [`note`]; set `TRANSPIM_BENCH_QUIET=1` to silence them in scripts.

pub mod chart;

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::{DataflowKind, SimReport};
use transpim::{ChromeTraceSink, FanoutSink, MetricsSink, SinkHandle};
use transpim_transformer::workload::Workload;

/// Simulate one `dataflow`-`arch` system on `workload` with `stacks` HBM
/// stacks.
pub fn run_system(
    kind: ArchKind,
    dataflow: DataflowKind,
    workload: &Workload,
    stacks: u32,
) -> SimReport {
    run_system_observed(kind, dataflow, workload, stacks, SinkHandle::null())
}

/// [`run_system`] with an observability sink attached to the execution.
/// A [`SinkHandle::null`] sink makes this identical to [`run_system`].
pub fn run_system_observed(
    kind: ArchKind,
    dataflow: DataflowKind,
    workload: &Workload,
    stacks: u32,
    sink: SinkHandle,
) -> SimReport {
    let arch = ArchConfig::new(kind).with_stacks(stacks);
    Accelerator::new(arch).simulate_with_sink(workload, dataflow, sink)
}

/// All eight memory-based systems of Figure 10, in the paper's order.
pub fn all_systems() -> Vec<(DataflowKind, ArchKind)> {
    let mut v = Vec::new();
    for kind in ArchKind::ALL {
        for df in DataflowKind::ALL {
            v.push((df, kind));
        }
    }
    v
}

/// Print a harness diagnostic to stderr, bracketed so it is visually
/// distinct from table output. Every non-table diagnostic of the bench
/// binaries goes through here — set `TRANSPIM_BENCH_QUIET=1` to silence
/// them all (e.g. when piping a binary's stdout *and* stderr to a file).
pub fn note(msg: impl AsRef<str>) {
    if std::env::var_os("TRANSPIM_BENCH_QUIET").is_none() {
        eprintln!("[{}]", msg.as_ref());
    }
}

/// Write a serializable value as pretty JSON next to the binaries.
///
/// # Panics
///
/// Panics on I/O or serialization failure (these binaries are harness
/// tools; failing loudly is correct).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, json).expect("write results file");
    note(format!("results written to {}", path.display()));
}

/// Pretty horizontal rule for table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Observability options shared by the bench binaries.
///
/// [`ObsSession::extract`] pulls `--trace <PATH>` and `--metrics <PATH>`
/// out of an argument vector; [`ObsSession::sink`] hands the attached
/// sinks to each simulation; [`ObsSession::finish`] writes the collected
/// artifacts. With neither flag present every call is a no-op on a null
/// sink.
#[derive(Debug, Default)]
pub struct ObsSession {
    trace: Option<(String, Rc<RefCell<ChromeTraceSink>>)>,
    metrics: Option<(String, Rc<RefCell<MetricsSink>>)>,
}

impl ObsSession {
    /// Remove `--trace <PATH>` / `--metrics <PATH>` from `args` and build
    /// the corresponding session. Unrelated arguments are left in place
    /// for the binary's own parser.
    pub fn extract(args: &mut Vec<String>) -> Result<Self, String> {
        let mut session = Self::default();
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) if i + 1 < args.len() => {
                    args.remove(i);
                    Ok(Some(args.remove(i)))
                }
                Some(_) => Err(format!("{flag} requires a value")),
            }
        };
        if let Some(path) = take("--trace")? {
            session.trace = Some((path, ChromeTraceSink::shared()));
        }
        if let Some(path) = take("--metrics")? {
            session.metrics = Some((path, MetricsSink::shared()));
        }
        Ok(session)
    }

    /// The sink handle to attach to a simulation — null when no
    /// observability output was requested.
    pub fn sink(&self) -> SinkHandle {
        let mut handles: Vec<SinkHandle> = Vec::new();
        if let Some((_, c)) = &self.trace {
            handles.push(SinkHandle::from_shared(c.clone()));
        }
        if let Some((_, m)) = &self.metrics {
            handles.push(SinkHandle::from_shared(m.clone()));
        }
        match handles.len() {
            0 => SinkHandle::null(),
            1 => handles.pop().expect("one handle"),
            _ => SinkHandle::new(FanoutSink::new(handles)),
        }
    }

    /// Record a scalar alongside the span/counter aggregates (no-op
    /// without `--metrics`).
    pub fn push_metric(&self, key: impl Into<String>, value: f64) {
        if let Some((_, m)) = &self.metrics {
            m.borrow_mut().push_metric(key, value);
        }
    }

    /// Write the requested artifacts.
    ///
    /// # Panics
    ///
    /// Panics on I/O or serialization failure, like [`write_json`].
    pub fn finish(&self) {
        if let Some((path, c)) = &self.trace {
            c.borrow().write_to(path).expect("write trace file");
            note(format!("trace written to {path} — open in chrome://tracing or Perfetto"));
        }
        if let Some((path, m)) = &self.metrics {
            m.borrow().write_to(path).expect("write metrics file");
            note(format!("metrics written to {path}"));
        }
    }
}
