//! Shared harness for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index), printing the same rows/series the
//! paper reports and writing a JSON dump alongside for EXPERIMENTS.md.
//!
//! Observability: every binary that routes its simulations through
//! [`ObsSession`] accepts `--trace <PATH>` (Chrome-tracing timeline) and
//! `--metrics <PATH>` (flat JSON/CSV aggregates) without any per-binary
//! flag handling. Diagnostics that are not table output go through
//! [`note`]; set `TRANSPIM_BENCH_QUIET=1` to silence them in scripts.

pub mod chart;
pub mod fuzz;

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim::report::{DataflowKind, SimReport};
use transpim::{ChromeTraceSink, FanoutSink, MetricsSink, SinkHandle};
use transpim_transformer::workload::Workload;

/// Simulate one `dataflow`-`arch` system on `workload` with `stacks` HBM
/// stacks.
pub fn run_system(
    kind: ArchKind,
    dataflow: DataflowKind,
    workload: &Workload,
    stacks: u32,
) -> SimReport {
    run_system_observed(kind, dataflow, workload, stacks, SinkHandle::null())
}

/// [`run_system`] with an observability sink attached to the execution.
/// A [`SinkHandle::null`] sink makes this identical to [`run_system`].
pub fn run_system_observed(
    kind: ArchKind,
    dataflow: DataflowKind,
    workload: &Workload,
    stacks: u32,
    sink: SinkHandle,
) -> SimReport {
    let arch = ArchConfig::new(kind).with_stacks(stacks);
    Accelerator::new(arch).simulate_with_sink(workload, dataflow, sink)
}

/// One cell of an evaluation grid: a full architecture configuration, a
/// dataflow, and a workload. Cells are independent simulations, which is
/// what makes the grid embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Architecture to simulate (carries stack count, ACU knobs, …).
    pub arch: ArchConfig,
    /// Dataflow mapping.
    pub dataflow: DataflowKind,
    /// Workload to run.
    pub workload: Workload,
}

impl GridCell {
    /// Cell for one of the eight named systems, like [`run_system`].
    pub fn system(
        kind: ArchKind,
        dataflow: DataflowKind,
        workload: &Workload,
        stacks: u32,
    ) -> Self {
        Self::custom(ArchConfig::new(kind).with_stacks(stacks), dataflow, workload)
    }

    /// Cell with an explicit [`ArchConfig`] (DSE sweeps over ACU knobs).
    pub fn custom(arch: ArchConfig, dataflow: DataflowKind, workload: &Workload) -> Self {
        Self { arch, dataflow, workload: workload.clone() }
    }
}

/// Result of one grid cell: the report plus the cell's private
/// observability sinks (present only when requested from [`run_grid`]).
#[derive(Debug)]
pub struct CellOutput {
    /// The simulation report.
    pub report: SimReport,
    /// Per-cell trace, when tracing was requested.
    pub trace: Option<ChromeTraceSink>,
    /// Per-cell metrics, when metrics were requested.
    pub metrics: Option<MetricsSink>,
}

/// Simulate every cell of `cells` on up to `jobs` pool workers and return
/// the outputs **in submission order** — output is independent of `jobs`.
///
/// Scheduling: cells sharing an `(arch, dataflow)` pair form one batch
/// (one pool job) so a single [`Executor`]'s ring/broadcast/tree schedule
/// caches amortize across the batch — e.g. across the sequence lengths of
/// a sweep. Executor reuse is skipped when observability is requested,
/// because the executor collapses repeated per-hop trace detail and reuse
/// would change trace *verbosity* (never priced results) between runs;
/// with sinks on, every cell gets a fresh executor and private sinks, so
/// merging them in submission order reproduces a serial run's stream.
pub fn run_grid(
    jobs: usize,
    want_trace: bool,
    want_metrics: bool,
    cells: Vec<GridCell>,
) -> Vec<CellOutput> {
    let n = cells.len();
    // Batch cells by (arch, dataflow), preserving submission order within
    // each batch and across batch creation (grids are small; linear scan).
    let mut batches: Vec<Vec<(usize, GridCell)>> = Vec::new();
    for (index, cell) in cells.into_iter().enumerate() {
        match batches.iter_mut().find(|batch| {
            let first = &batch[0].1;
            first.arch == cell.arch && first.dataflow == cell.dataflow
        }) {
            Some(batch) => batch.push((index, cell)),
            None => batches.push(vec![(index, cell)]),
        }
    }

    let reuse_executor = !(want_trace || want_metrics);
    let pool_jobs: Vec<_> = batches
        .into_iter()
        .map(|batch| {
            move || {
                let mut exec: Option<Executor> = None;
                batch
                    .into_iter()
                    .map(|(index, cell)| {
                        let acc = Accelerator::new(cell.arch.clone());
                        let output = if reuse_executor {
                            let exec = exec.get_or_insert_with(|| Executor::new(cell.arch.clone()));
                            let report = acc.simulate_on(
                                exec,
                                &cell.workload,
                                cell.dataflow,
                                SinkHandle::null(),
                            );
                            CellOutput { report, trace: None, metrics: None }
                        } else {
                            // Sinks live and die inside this worker thread:
                            // the Rc handles never cross threads, and the
                            // owned sinks travel back with the result.
                            let trace = want_trace.then(ChromeTraceSink::shared);
                            let metrics = want_metrics.then(MetricsSink::shared);
                            let mut handles: Vec<SinkHandle> = Vec::new();
                            if let Some(t) = &trace {
                                handles.push(SinkHandle::from_shared(t.clone()));
                            }
                            if let Some(m) = &metrics {
                                handles.push(SinkHandle::from_shared(m.clone()));
                            }
                            let sink = match handles.len() {
                                0 => SinkHandle::null(),
                                1 => handles.pop().expect("one handle"),
                                _ => SinkHandle::new(FanoutSink::new(handles)),
                            };
                            let report =
                                acc.simulate_with_sink(&cell.workload, cell.dataflow, sink);
                            let unwrap_own = |rc: Rc<RefCell<ChromeTraceSink>>| {
                                Rc::try_unwrap(rc)
                                    .expect("simulation dropped its sink handle")
                                    .into_inner()
                            };
                            let unwrap_own_m = |rc: Rc<RefCell<MetricsSink>>| {
                                Rc::try_unwrap(rc)
                                    .expect("simulation dropped its sink handle")
                                    .into_inner()
                            };
                            CellOutput {
                                report,
                                trace: trace.map(unwrap_own),
                                metrics: metrics.map(unwrap_own_m),
                            }
                        };
                        (index, output)
                    })
                    .collect::<Vec<_>>()
            }
        })
        .collect();

    let finished = transpim_par::run(jobs, pool_jobs);
    let mut out: Vec<Option<CellOutput>> = (0..n).map(|_| None).collect();
    for batch in finished {
        for (index, cell_output) in batch {
            out[index] = Some(cell_output);
        }
    }
    out.into_iter().map(|o| o.expect("every grid cell ran")).collect()
}

/// Remove `--jobs N` from `args` and return the worker count — defaulting
/// to [`transpim_par::max_threads`] (`TRANSPIM_THREADS` or the machine's
/// parallelism) when the flag is absent.
pub fn jobs_from_args(args: &mut Vec<String>) -> Result<usize, String> {
    match args.iter().position(|a| a == "--jobs") {
        None => Ok(transpim_par::max_threads()),
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            let value = args.remove(i);
            match value.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("--jobs needs a positive integer, got '{value}'")),
            }
        }
        Some(_) => Err("--jobs requires a value".into()),
    }
}

/// All eight memory-based systems of Figure 10, in the paper's order.
pub fn all_systems() -> Vec<(DataflowKind, ArchKind)> {
    let mut v = Vec::new();
    for kind in ArchKind::ALL {
        for df in DataflowKind::ALL {
            v.push((df, kind));
        }
    }
    v
}

/// Print a harness diagnostic to stderr, bracketed so it is visually
/// distinct from table output. Every non-table diagnostic of the bench
/// binaries goes through here — set `TRANSPIM_BENCH_QUIET=1` to silence
/// them all (e.g. when piping a binary's stdout *and* stderr to a file).
pub fn note(msg: impl AsRef<str>) {
    if std::env::var_os("TRANSPIM_BENCH_QUIET").is_none() {
        eprintln!("[{}]", msg.as_ref());
    }
}

/// Write a serializable value as pretty JSON next to the binaries.
///
/// # Panics
///
/// Panics on I/O or serialization failure (these binaries are harness
/// tools; failing loudly is correct).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, json).expect("write results file");
    note(format!("results written to {}", path.display()));
}

/// Pretty horizontal rule for table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Observability options shared by the bench binaries.
///
/// [`ObsSession::extract`] pulls `--trace <PATH>` and `--metrics <PATH>`
/// out of an argument vector; [`ObsSession::sink`] hands the attached
/// sinks to each simulation; [`ObsSession::finish`] writes the collected
/// artifacts. With neither flag present every call is a no-op on a null
/// sink.
#[derive(Debug, Default)]
pub struct ObsSession {
    trace: Option<(String, Rc<RefCell<ChromeTraceSink>>)>,
    metrics: Option<(String, Rc<RefCell<MetricsSink>>)>,
}

impl ObsSession {
    /// Remove `--trace <PATH>` / `--metrics <PATH>` from `args` and build
    /// the corresponding session. Unrelated arguments are left in place
    /// for the binary's own parser.
    pub fn extract(args: &mut Vec<String>) -> Result<Self, String> {
        let mut session = Self::default();
        let mut take = |flag: &str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) if i + 1 < args.len() => {
                    args.remove(i);
                    Ok(Some(args.remove(i)))
                }
                Some(_) => Err(format!("{flag} requires a value")),
            }
        };
        if let Some(path) = take("--trace")? {
            session.trace = Some((path, ChromeTraceSink::shared()));
        }
        if let Some(path) = take("--metrics")? {
            session.metrics = Some((path, MetricsSink::shared()));
        }
        Ok(session)
    }

    /// The sink handle to attach to a simulation — null when no
    /// observability output was requested.
    pub fn sink(&self) -> SinkHandle {
        let mut handles: Vec<SinkHandle> = Vec::new();
        if let Some((_, c)) = &self.trace {
            handles.push(SinkHandle::from_shared(c.clone()));
        }
        if let Some((_, m)) = &self.metrics {
            handles.push(SinkHandle::from_shared(m.clone()));
        }
        match handles.len() {
            0 => SinkHandle::null(),
            1 => handles.pop().expect("one handle"),
            _ => SinkHandle::new(FanoutSink::new(handles)),
        }
    }

    /// Whether `--trace` was requested.
    pub fn wants_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether `--metrics` was requested.
    pub fn wants_metrics(&self) -> bool {
        self.metrics.is_some()
    }

    /// Run `cells` on the pool ([`run_grid`]) and fold each cell's private
    /// sinks into this session **in submission order**, so the artifacts
    /// [`ObsSession::finish`] writes are byte-identical to a serial run
    /// over the same grid, at any `jobs` count. Returns the reports in
    /// submission order.
    pub fn run_grid(&self, jobs: usize, cells: Vec<GridCell>) -> Vec<SimReport> {
        let outputs = run_grid(jobs, self.wants_trace(), self.wants_metrics(), cells);
        let mut reports = Vec::with_capacity(outputs.len());
        for output in outputs {
            if let (Some((_, shared)), Some(cell_trace)) = (&self.trace, output.trace) {
                shared.borrow_mut().absorb(cell_trace);
            }
            if let (Some((_, shared)), Some(cell_metrics)) = (&self.metrics, output.metrics) {
                shared.borrow_mut().merge(cell_metrics);
            }
            reports.push(output.report);
        }
        reports
    }

    /// Record a scalar alongside the span/counter aggregates (no-op
    /// without `--metrics`).
    pub fn push_metric(&self, key: impl Into<String>, value: f64) {
        if let Some((_, m)) = &self.metrics {
            m.borrow_mut().push_metric(key, value);
        }
    }

    /// Write the requested artifacts.
    ///
    /// # Panics
    ///
    /// Panics on I/O or serialization failure, like [`write_json`].
    pub fn finish(&self) {
        if let Some((path, c)) = &self.trace {
            c.borrow().write_to(path).expect("write trace file");
            note(format!("trace written to {path} — open in chrome://tracing or Perfetto"));
        }
        if let Some((path, m)) = &self.metrics {
            m.borrow().write_to(path).expect("write metrics file");
            note(format!("metrics written to {path}"));
        }
    }
}
