//! Ablation: Taylor order of the hardware Softmax.
//!
//! Section IV-A2 approximates the exponent with a 5th-order Taylor series.
//! This ablation measures both sides of that choice: numerical error
//! against exact softmax (on realistic attention-score distributions) and
//! the PIM cost of the exponent (each extra order is one more fused
//! multiply-add at Softmax width).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use transpim_hbm::config::HbmConfig;
use transpim_pim::cost::{PimCostModel, PimCostParams, PimOp};
use transpim_transformer::matrix::Matrix;
use transpim_transformer::softmax::{softmax_exact, softmax_taylor};

#[derive(Serialize)]
struct Row {
    order: u32,
    max_abs_error: f32,
    mean_abs_error: f32,
    aaps: u64,
    batch_latency_us: f64,
}

fn main() {
    println!("Ablation: Taylor order of the hardware Softmax");
    let mut rng = StdRng::seed_from_u64(2022);
    // Realistic post-scaling attention scores: zero-mean, ~unit scale.
    let scores = Matrix::from_fn(64, 256, |_, _| rng.gen_range(-2.0f32..2.0));
    let exact = softmax_exact(&scores);

    let hbm = HbmConfig::default();
    let cost = PimCostModel::new(hbm.geometry, hbm.timing, hbm.energy, PimCostParams::default());

    let mut rows = Vec::new();
    println!(
        "{:>7} {:>14} {:>14} {:>10} {:>14}",
        "order", "max |err|", "mean |err|", "AAPs", "batch latency"
    );
    for order in [2u32, 3, 4, 5, 6, 8] {
        let approx = softmax_taylor(&scores, order);
        let max_err = exact.max_abs_diff(&approx);
        let mean_err = {
            let n = (exact.rows() * exact.cols()) as f32;
            exact.as_slice().iter().zip(approx.as_slice()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / n
        };
        let op = PimOp::ExpTaylor { bits: 16, order };
        let aaps = op.aaps();
        let us = cost.batch_latency_ns(op) * 1e-3;
        println!("{order:>7} {max_err:>14.5} {mean_err:>14.6} {aaps:>10} {us:>11.1} us");
        rows.push(Row {
            order,
            max_abs_error: max_err,
            mean_abs_error: mean_err,
            aaps,
            batch_latency_us: us,
        });
    }

    println!(
        "\nThe paper's order-5 sits at the knee: error well under int16 resolution on\n\
         O(1)-scaled scores, while each further order adds a full 16-bit multiply-add\n\
         batch (~{} AAPs) to every Softmax invocation.",
        PimOp::ExpTaylor { bits: 16, order: 1 }.aaps()
    );
    write_json_rows(&rows);
}

fn write_json_rows(rows: &[Row]) {
    transpim_bench::write_json("ablation_softmax", &rows);
}
