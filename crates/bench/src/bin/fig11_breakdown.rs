//! Figure 11: performance breakdown.
//!
//! (a) Per-system operation breakdown (data movement / non-reduction
//!     arithmetic / reduction / other) and the Section V-C utilization
//!     numbers (paper: Token-TransPIM 45.8%, Layer-TransPIM 30.8%,
//!     Token-OriginalPIM 47.7%, Token-NBP 89.5%).
//! (b) Layer-wise breakdown for Pegasus summarization at 4 K (PubMed) and
//!     a synthetic 32 K sequence, normalized to Token-TransPIM.

use serde::Serialize;
use transpim::report::DataflowKind;
use transpim_bench::{all_systems, jobs_from_args, run_grid, write_json, GridCell, ObsSession};
use transpim_hbm::stats::Category;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct SystemRow {
    workload: String,
    system: String,
    movement: f64,
    arithmetic: f64,
    reduction: f64,
    other: f64,
    utilization: f64,
    latency_ms: f64,
}

#[derive(Serialize)]
struct LayerRow {
    workload: String,
    system: String,
    scope: String,
    movement_ms: f64,
    compute_ms: f64,
    total_norm: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fail = |e: String| -> ! {
        eprintln!("error: {e}\nusage: fig11_breakdown [--jobs N] [--trace t.json] [--metrics m.json|m.csv]");
        std::process::exit(2);
    };
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| fail(e));
    let obs = ObsSession::extract(&mut args).unwrap_or_else(|e| fail(e));
    let mut rows = Vec::new();
    println!("Figure 11(a): operation breakdown per system");
    let workloads_a = [Workload::imdb(), Workload::pubmed(), Workload::lm()];
    let cells_a: Vec<GridCell> = workloads_a
        .iter()
        .flat_map(|w| all_systems().into_iter().map(|(df, kind)| GridCell::system(kind, df, w, 8)))
        .collect();
    let mut reports_a = obs.run_grid(jobs, cells_a).into_iter();
    for w in &workloads_a {
        transpim_bench::rule(96);
        for _ in all_systems() {
            let r = reports_a.next().expect("one report per grid cell");
            let row = SystemRow {
                workload: w.name.clone(),
                system: r.system.clone(),
                movement: r.fraction(Category::DataMovement),
                arithmetic: r.fraction(Category::Arithmetic),
                reduction: r.fraction(Category::Reduction),
                other: r.fraction(Category::Other),
                utilization: r.utilization(),
                latency_ms: r.latency_ms(),
            };
            println!(
                "{:<10} {:<22} move {:>5.1}%  arith {:>5.1}%  red {:>5.1}%  other {:>5.1}%  util {:>5.1}%  ({:>10.2} ms)",
                row.workload,
                row.system,
                100.0 * row.movement,
                100.0 * row.arithmetic,
                100.0 * row.reduction,
                100.0 * row.other,
                100.0 * row.utilization,
                row.latency_ms
            );
            rows.push(row);
        }
    }

    // Stacked bars of the IMDB breakdown (Figure 11(a) visual).
    let cats = [("movement", 'm'), ("arith", 'a'), ("reduce", 'r'), ("other", 'o')];
    let bars: Vec<(String, Vec<f64>)> = rows
        .iter()
        .filter(|r| r.workload == "IMDB")
        .map(|r| (r.system.clone(), vec![r.movement, r.arithmetic, r.reduction, r.other]))
        .collect();
    print!("{}", transpim_bench::chart::stacked_chart("\nIMDB breakdown:", &cats, &bars, 60));

    // Headline ratios (Section V-C): reduction-time and movement-time gaps.
    let pick = |sys: &str, wl: &str| {
        rows.iter().find(|r| r.system == sys && r.workload == wl).expect("system row")
    };
    for wl in ["IMDB", "PubMed"] {
        let tt = pick("Token-TransPIM", wl);
        let tp = pick("Token-OriginalPIM", wl);
        let tn = pick("Token-NBP", wl);
        let red = |r: &SystemRow| r.reduction * r.latency_ms;
        let mov = |r: &SystemRow| r.movement * r.latency_ms;
        println!(
            "{wl}: reduction time vs PIM-only {:.1}x, vs NBP {:.1}x; movement vs PIM-only {:.1}x",
            red(tp) / red(tt).max(1e-12),
            red(tn) / red(tt).max(1e-12),
            mov(tp) / mov(tt).max(1e-12),
        );
    }

    println!();
    println!("Figure 11(b): layer-wise breakdown (normalized to Token-TransPIM total)");
    let mut layer_rows = Vec::new();
    // Part (b): one base cell plus the eight systems, per workload.
    let workloads_b = [Workload::pubmed(), Workload::synthetic_pegasus(32 * 1024)];
    let cells_b: Vec<GridCell> = workloads_b
        .iter()
        .flat_map(|w| {
            std::iter::once(GridCell::system(
                transpim::arch::ArchKind::TransPim,
                DataflowKind::Token,
                w,
                8,
            ))
            .chain(all_systems().into_iter().map(|(df, kind)| GridCell::system(kind, df, w, 8)))
        })
        .collect();
    let mut reports_b = run_grid(jobs, false, false, cells_b).into_iter().map(|o| o.report);
    for w in &workloads_b {
        let base = reports_b.next().expect("base report");
        let base_total = base.stats.latency_ns;
        transpim_bench::rule(96);
        for _ in all_systems() {
            let r = reports_b.next().expect("one report per grid cell");
            for (scope, s) in r.scoped.iter() {
                let row = LayerRow {
                    workload: w.name.clone(),
                    system: r.system.clone(),
                    scope: scope.to_owned(),
                    movement_ms: s.time_ns[Category::DataMovement.index()] * 1e-6,
                    compute_ms: (s.time_ns[Category::Arithmetic.index()]
                        + s.time_ns[Category::Reduction.index()])
                        * 1e-6,
                    total_norm: s.latency_ns / base_total,
                };
                if row.total_norm > 0.001 {
                    println!(
                        "{:<14} {:<22} {:<12} move {:>9.2} ms  compute {:>9.2} ms  ({:>6.3} of Token-TransPIM)",
                        row.workload, row.system, row.scope, row.movement_ms, row.compute_ms, row.total_norm
                    );
                }
                layer_rows.push(row);
            }
        }
    }

    write_json("fig11_breakdown", &rows);
    write_json("fig11_layerwise", &layer_rows);
    obs.finish();
}
