//! `decode_scaling` — wall-clock measurement of the decoder fast path.
//!
//! Times compile + price of the GPT decode workload at growing generation
//! lengths, twice per length: through the loop-compressed program the
//! compiler emits (`Step::Repeat` decode loop) and through its explicit
//! unrolled expansion (the shape the simulator used to walk). Verifies the
//! two price bitwise-identically, prints a table, and writes the
//! measurements to `results/BENCH_decode.json`.
//!
//! ```bash
//! cargo run --release -p transpim-bench --bin decode_scaling
//! cargo run --release -p transpim-bench --bin decode_scaling -- --reps 9
//! ```
//!
//! Run in release: debug builds re-verify every compressed repeat against
//! an unrolled re-pricing (the equivalence contract), which deliberately
//! erases the asymptotic win being measured here.

use std::time::Instant;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim_bench::{note, rule, write_json};
use transpim_dataflow::token_flow;
use transpim_transformer::workload::Workload;

const DECODE_LENS: [usize; 3] = [256, 1024, 4096];
const BANKS: u32 = 2048;

#[derive(serde::Serialize)]
struct Row {
    decode_len: usize,
    compressed_steps: usize,
    unrolled_steps: u64,
    compressed_ms: f64,
    unrolled_ms: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct Doc {
    benchmark: String,
    reps: usize,
    rows: Vec<Row>,
    speedup_at_4096: f64,
}

/// Best-of-`reps` wall-clock milliseconds of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok()).filter(|&r| r >= 1).unwrap_or_else(
                    || {
                        note("error: --reps needs a positive integer");
                        std::process::exit(2);
                    },
                );
            }
            other => {
                note(format!("error: unknown option '{other}'"));
                eprintln!("usage: decode_scaling [--reps N]");
                std::process::exit(2);
            }
        }
    }
    if cfg!(debug_assertions) {
        note("warning: debug build — compressed pricing re-verifies against unrolled, timings are meaningless");
    }

    let arch = ArchConfig::new(ArchKind::TransPim);
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14} {:>9}",
        "decode_len", "steps(comp)", "steps(unroll)", "comp ms", "unroll ms", "speedup"
    );
    rule(80);

    let mut rows = Vec::new();
    for decode in DECODE_LENS {
        let mut w = Workload::lm();
        w.decode_len = decode;

        // Sanity first, timing after: the two encodings must price the
        // same statistics before their wall clocks are worth comparing.
        let prog = token_flow::compile(&w, BANKS);
        let unrolled = prog.unroll();
        let (stats_c, _) = Executor::new(arch.clone()).run(&prog);
        let (stats_u, _) = Executor::new(arch.clone()).run(&unrolled);
        assert_eq!(stats_c, stats_u, "decode={decode}: compressed pricing diverged");

        let compressed_ms = time_ms(reps, || {
            let p = token_flow::compile(&w, BANKS);
            let mut ex = Executor::new(arch.clone());
            std::hint::black_box(ex.run(&p));
        });
        let unrolled_ms = time_ms(reps, || {
            let p = token_flow::compile(&w, BANKS).unroll();
            let mut ex = Executor::new(arch.clone());
            std::hint::black_box(ex.run(&p));
        });

        let row = Row {
            decode_len: decode,
            compressed_steps: prog.len(),
            unrolled_steps: prog.unrolled_len(),
            compressed_ms,
            unrolled_ms,
            speedup: unrolled_ms / compressed_ms,
        };
        println!(
            "{:>10} {:>14} {:>14} {:>14.3} {:>14.3} {:>8.1}x",
            row.decode_len,
            row.compressed_steps,
            row.unrolled_steps,
            row.compressed_ms,
            row.unrolled_ms,
            row.speedup
        );
        rows.push(row);
    }

    let speedup_at_4096 = rows.last().map_or(0.0, |r| r.speedup);
    let doc = Doc {
        benchmark: format!(
            "GPT decode compile+price, compressed vs unrolled, decode_len in {DECODE_LENS:?} (best of {reps})"
        ),
        reps,
        rows,
        speedup_at_4096,
    };
    write_json("BENCH_decode", &doc);
}
