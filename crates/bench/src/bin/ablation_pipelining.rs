//! Ablation: ring/compute pipelining.
//!
//! Section III-B2 interleaves "ring broadcast and compute steps"; the
//! simulator's default barrier model prices each round as transfer +
//! compute. This ablation prices the pipelined schedule
//! (`max(transfer, compute)` per round) and shows how much of the ring
//! traffic the attention blocks can hide at each sequence length.

use serde::Serialize;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim_bench::{jobs_from_args, run_grid, write_json, GridCell};
use transpim_hbm::stats::Category;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    seq_len: usize,
    barrier_ms: f64,
    pipelined_ms: f64,
    gain: f64,
    movement_hidden_frac: f64,
}

fn main() {
    println!("Ablation: ring/compute pipelining (Pegasus encoder, Token-TransPIM)");
    println!(
        "{:>8} {:>12} {:>12} {:>8} {:>14}",
        "L", "barrier", "pipelined", "gain", "movement hidden"
    );
    let lengths = [512usize, 2048, 8192, 32768];
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: ablation_pipelining [--jobs N]");
        std::process::exit(2);
    });
    let cells: Vec<GridCell> = lengths
        .iter()
        .flat_map(|&l| {
            let mut w = Workload::synthetic_pegasus(l);
            w.decode_len = 0;
            [
                GridCell::custom(ArchConfig::new(ArchKind::TransPim), DataflowKind::Token, &w),
                GridCell::custom(
                    ArchConfig::new(ArchKind::TransPim).with_pipelined_ring(true),
                    DataflowKind::Token,
                    &w,
                ),
            ]
        })
        .collect();
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);
    let mut rows = Vec::new();
    for l in lengths {
        let barrier = reports.next().expect("barrier report");
        let pipelined = reports.next().expect("pipelined report");
        let mb = barrier.stats.time_ns[Category::DataMovement.index()];
        let mp = pipelined.stats.time_ns[Category::DataMovement.index()];
        let row = Row {
            seq_len: l,
            barrier_ms: barrier.latency_ms(),
            pipelined_ms: pipelined.latency_ms(),
            gain: barrier.latency_ms() / pipelined.latency_ms(),
            movement_hidden_frac: if mb > 0.0 { 1.0 - mp / mb } else { 0.0 },
        };
        println!(
            "{:>8} {:>9.1} ms {:>9.1} ms {:>7.3}x {:>13.1}%",
            l,
            row.barrier_ms,
            row.pipelined_ms,
            row.gain,
            100.0 * row.movement_hidden_frac
        );
        rows.push(row);
    }
    println!(
        "\nThe attention blocks are compute-heavy enough to hide most of the ring\n\
         traffic; the end-to-end gain is bounded by the movement share itself."
    );
    write_json("ablation_pipelining", &rows);
}
