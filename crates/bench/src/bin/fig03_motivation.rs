//! Figure 3: the motivation experiment (Section II-C).
//!
//! (a) Latency breakdown of a layer-based PIM-only HBM system running
//!     RoBERTa text classification at several sequence lengths — the paper
//!     profiles ~60% of time in data movement and 23–32% in reductions.
//! (b) Bytes loaded per layer kind under the layer-based dataflow — the
//!     attention/softmax loads grow quadratically with L.

use serde::Serialize;
use transpim::arch::ArchKind;
use transpim::report::DataflowKind;
use transpim_bench::{run_system, write_json};
use transpim_dataflow::ir::Precision;
use transpim_dataflow::layer_flow;
use transpim_hbm::stats::Category;
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct BreakdownRow {
    seq_len: usize,
    data_movement: f64,
    arithmetic: f64,
    reduction: f64,
    other: f64,
}

#[derive(Serialize)]
struct LoadRow {
    seq_len: usize,
    fc_bytes: u64,
    attention_bytes: u64,
    softmax_bytes: u64,
    ffn_bytes: u64,
}

fn main() {
    let lengths = [128usize, 512, 1024, 2048];

    println!("Figure 3(a): Layer-OriginalPIM latency breakdown, RoBERTa classification");
    println!(
        "{:>8} {:>14} {:>12} {:>11} {:>8}",
        "L", "movement", "arithmetic", "reduction", "other"
    );
    let mut breakdown = Vec::new();
    for &l in &lengths {
        let mut w = Workload::synthetic_roberta(l);
        w.batch = (2048 / l).max(1); // fill the banks as the paper does
        let r = run_system(ArchKind::OriginalPim, DataflowKind::Layer, &w, 8);
        let row = BreakdownRow {
            seq_len: l,
            data_movement: r.fraction(Category::DataMovement),
            arithmetic: r.fraction(Category::Arithmetic),
            reduction: r.fraction(Category::Reduction),
            other: r.fraction(Category::Other),
        };
        println!(
            "{:>8} {:>13.1}% {:>11.1}% {:>10.1}% {:>7.1}%",
            l,
            100.0 * row.data_movement,
            100.0 * row.arithmetic,
            100.0 * row.reduction,
            100.0 * row.other
        );
        breakdown.push(row);
    }

    println!();
    println!("Figure 3(b): loaded data per encoder layer (MB), layer-based dataflow");
    println!("{:>8} {:>10} {:>12} {:>10} {:>10}", "L", "FC", "attention", "softmax", "FFN");
    let cfg = ModelConfig::roberta_base();
    let p = Precision::default();
    let mut loads = Vec::new();
    for &l in &lengths {
        let parts = layer_flow::encoder_layer_loaded_bytes(&cfg, l as u64, 2048, p);
        let get = |k: &str| parts.iter().find(|(n, _)| *n == k).map(|(_, v)| *v).unwrap_or(0);
        let row = LoadRow {
            seq_len: l,
            fc_bytes: get("fc"),
            attention_bytes: get("attention"),
            softmax_bytes: get("softmax"),
            ffn_bytes: get("ffn"),
        };
        println!(
            "{:>8} {:>10.2} {:>12.2} {:>10.2} {:>10.2}",
            l,
            row.fc_bytes as f64 / 1e6,
            row.attention_bytes as f64 / 1e6,
            row.softmax_bytes as f64 / 1e6,
            row.ffn_bytes as f64 / 1e6
        );
        loads.push(row);
    }

    write_json("fig03_breakdown", &breakdown);
    write_json("fig03_loaded_data", &loads);
}
