//! Ablation: the four-activation window (`t_FAW`).
//!
//! Commodity DRAM caps row activations at four per `t_FAW` per channel for
//! power-delivery reasons. Activation-heavy bit-serial PIM implicitly
//! assumes a relaxed window for its low-current 512-bit mat-row
//! activations (the paper never mentions `t_FAW`). This ablation prices
//! the conservative reading — enforcing the JEDEC window on the AAP
//! stream — and quantifies the activation-rate assumption hidden in every
//! in-DRAM-compute proposal built on Table I-class timing.

use serde::Serialize;
use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim_bench::write_json;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    p_sub: u32,
    relaxed_ms: f64,
    enforced_ms: f64,
    slowdown: f64,
}

fn main() {
    println!("Ablation: enforcing the JEDEC four-activation window on PIM (TriviaQA)");
    println!("{:>8} {:>12} {:>12} {:>10}", "P_sub", "relaxed", "tFAW", "slowdown");
    let w = Workload::triviaqa();
    let mut rows = Vec::new();
    for p_sub in [4u32, 8, 16, 32] {
        let relaxed = {
            let arch = ArchConfig::new(ArchKind::TransPim).with_acu(p_sub, 4);
            Accelerator::new(arch).simulate(&w, DataflowKind::Token).latency_ms()
        };
        let enforced = {
            let mut arch = ArchConfig::new(ArchKind::TransPim).with_acu(p_sub, 4);
            arch.pim.enforce_faw = true;
            Accelerator::new(arch).simulate(&w, DataflowKind::Token).latency_ms()
        };
        let row =
            Row { p_sub, relaxed_ms: relaxed, enforced_ms: enforced, slowdown: enforced / relaxed };
        println!(
            "{:>8} {:>9.1} ms {:>9.1} ms {:>9.2}x",
            p_sub, row.relaxed_ms, row.enforced_ms, row.slowdown
        );
        rows.push(row);
    }
    println!(
        "\nThe window is not binding below P_sub = {} (4 activations per 16 ns covers\n\
         a 45 ns row cycle); wider activation fans pay linearly. The paper's P_sub = 16\n\
         point costs ~1.4x under the conservative reading.",
        45 * 4 / 16
    );
    write_json("ablation_tfaw", &rows);
}
