//! Ablation: the four-activation window (`t_FAW`).
//!
//! Commodity DRAM caps row activations at four per `t_FAW` per channel for
//! power-delivery reasons. Activation-heavy bit-serial PIM implicitly
//! assumes a relaxed window for its low-current 512-bit mat-row
//! activations (the paper never mentions `t_FAW`). This ablation prices
//! the conservative reading — enforcing the JEDEC window on the AAP
//! stream — and quantifies the activation-rate assumption hidden in every
//! in-DRAM-compute proposal built on Table I-class timing.

use serde::Serialize;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim_bench::{jobs_from_args, run_grid, write_json, GridCell};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    p_sub: u32,
    relaxed_ms: f64,
    enforced_ms: f64,
    slowdown: f64,
}

fn main() {
    println!("Ablation: enforcing the JEDEC four-activation window on PIM (TriviaQA)");
    println!("{:>8} {:>12} {:>12} {:>10}", "P_sub", "relaxed", "tFAW", "slowdown");
    let w = Workload::triviaqa();
    let p_subs = [4u32, 8, 16, 32];
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: ablation_tfaw [--jobs N]");
        std::process::exit(2);
    });
    let cells: Vec<GridCell> = p_subs
        .iter()
        .flat_map(|&p_sub| {
            let relaxed = ArchConfig::new(ArchKind::TransPim).with_acu(p_sub, 4);
            let mut enforced = ArchConfig::new(ArchKind::TransPim).with_acu(p_sub, 4);
            enforced.pim.enforce_faw = true;
            [
                GridCell::custom(relaxed, DataflowKind::Token, &w),
                GridCell::custom(enforced, DataflowKind::Token, &w),
            ]
        })
        .collect();
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);
    let mut rows = Vec::new();
    for p_sub in p_subs {
        let relaxed = reports.next().expect("relaxed report").latency_ms();
        let enforced = reports.next().expect("enforced report").latency_ms();
        let row =
            Row { p_sub, relaxed_ms: relaxed, enforced_ms: enforced, slowdown: enforced / relaxed };
        println!(
            "{:>8} {:>9.1} ms {:>9.1} ms {:>9.2}x",
            p_sub, row.relaxed_ms, row.enforced_ms, row.slowdown
        );
        rows.push(row);
    }
    println!(
        "\nThe window is not binding below P_sub = {} (4 activations per 16 ns covers\n\
         a 45 ns row cycle); wider activation fans pay linearly. The paper's P_sub = 16\n\
         point costs ~1.4x under the conservative reading.",
        45 * 4 / 16
    );
    write_json("ablation_tfaw", &rows);
}
