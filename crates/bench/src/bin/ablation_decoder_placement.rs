//! Ablation: decoder token placement (Section III-C).
//!
//! The paper places each generated token's K/V rows in "the bank with the
//! minimum number of tokens to balance computation". This ablation
//! quantifies the claim by simulating the same generative workload under
//! the balanced policy and the naive keep-in-FC-bank policy, where one
//! bank's attention work grows linearly with the generated prefix.

use serde::Serialize;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim_bench::write_json;
use transpim_dataflow::ir::Precision;
use transpim_dataflow::sharding::Sharding;
use transpim_dataflow::token_flow::{compile_full, DecoderPlacement};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    decode_len: usize,
    balanced_ms: f64,
    last_bank_ms: f64,
    balancing_gain: f64,
}

fn main() {
    println!("Ablation: decoder K/V placement (Pegasus @1K context, Token-TransPIM)");
    println!("{:>10} {:>14} {:>14} {:>8}", "decode", "balanced", "last-bank", "gain");
    let mut rows = Vec::new();
    for decode_len in [64usize, 256, 1024] {
        let mut w = Workload::pubmed();
        w.seq_len = 1024;
        w.decode_len = decode_len;
        let sharding = Sharding::new(2048, 1, w.seq_len as u32);
        let run = |placement: DecoderPlacement| {
            let prog = compile_full(&w, &sharding, Precision::default(), placement);
            let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
            ex.run(&prog).0.latency_ns * 1e-6
        };
        let balanced = run(DecoderPlacement::Balanced);
        let last = run(DecoderPlacement::LastBank);
        let row = Row {
            decode_len,
            balanced_ms: balanced,
            last_bank_ms: last,
            balancing_gain: last / balanced,
        };
        println!(
            "{:>10} {:>11.1} ms {:>11.1} ms {:>7.2}x",
            decode_len, balanced, last, row.balancing_gain
        );
        rows.push(row);
    }
    println!(
        "\nBalanced placement keeps the busiest bank's attention work at\n\
         ceil(t/N) generated tokens; without it the gain of distributing the\n\
         context evaporates as generation proceeds."
    );
    write_json("ablation_decoder_placement", &rows);
}
