//! Ablation: arithmetic precision.
//!
//! The paper fixes 8-bit FC/FFN and 16-bit Softmax (Section V-B, citing
//! GOBO). Bit-serial PIM cost scales super-linearly with width (multiply is
//! ~O(b²)), so precision is a first-order design lever — this ablation
//! quantifies it, including a hypothetical 4-bit mode and a conservative
//! full-16-bit mode.

use serde::Serialize;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim_bench::write_json;
use transpim_dataflow::ir::Precision;
use transpim_dataflow::sharding::Sharding;
use transpim_dataflow::token_flow;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    act_bits: u32,
    softmax_bits: u32,
    latency_ms: f64,
    energy_j: f64,
    speedup_vs_8bit: f64,
}

fn main() {
    println!("Ablation: precision of the bit-serial datapath (TriviaQA, Token-TransPIM)");
    let w = Workload::triviaqa();
    let sharding = Sharding::new(2048, w.batch as u32, w.seq_len as u32);

    let run = |act_bits: u32, softmax_bits: u32| {
        let p = Precision { act_bits, acc_bits: 2 * act_bits, softmax_bits, taylor_order: 5 };
        let prog = token_flow::compile_with(&w, &sharding, p);
        let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
        let (stats, _) = ex.run(&prog);
        (stats.latency_ns * 1e-6, stats.total_energy_j())
    };

    let (base_ms, _) = run(8, 16);
    let mut rows = Vec::new();
    println!(
        "{:>10} {:>14} {:>12} {:>10} {:>10}",
        "act bits", "softmax bits", "latency", "energy", "speedup"
    );
    for (a, s) in [(4u32, 8u32), (8, 8), (8, 16), (16, 16)] {
        let (ms, j) = run(a, s);
        let row = Row {
            act_bits: a,
            softmax_bits: s,
            latency_ms: ms,
            energy_j: j,
            speedup_vs_8bit: base_ms / ms,
        };
        println!("{:>10} {:>14} {:>9.1} ms {:>8.2} J {:>9.2}x", a, s, ms, j, row.speedup_vs_8bit);
        rows.push(row);
    }
    println!(
        "\nbit-serial multiply is ~O(b²): halving the width roughly quadruples the\n\
         arithmetic rate, which is why the paper's 8-bit choice matters so much."
    );
    write_json("ablation_precision", &rows);
}
