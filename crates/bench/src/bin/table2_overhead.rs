//! Table II: area and power overhead of the TransPIM hardware, from the
//! analytic model seeded with the paper's synthesis results.

use serde::Serialize;
use transpim_acu::area::{table2, AreaModel};
use transpim_bench::write_json;

#[derive(Serialize)]
struct Overhead {
    p_sub: u32,
    p_add: u32,
    overhead_mm2: f64,
    overhead_percent: f64,
    unit_power_mw_per_bank: f64,
    adder_tree_share: f64,
}

fn main() {
    println!("Table II: overhead breakdown of TransPIM");
    transpim_bench::rule(64);
    println!("{:<16} {:>12} {:>10}", "unit/bank", "area (um^2)", "power (mW)");
    for (name, area, power) in [
        ("adder tree", table2::ADDER_TREE_UM2, table2::ADDER_TREE_MW),
        ("divider", table2::DIVIDER_UM2, table2::DIVIDER_MW),
        ("data buffer", table2::DATA_BUFFER_UM2, table2::DATA_BUFFER_MW),
        ("ring broadcast", table2::RING_BROADCAST_UM2, table2::RING_BROADCAST_MW),
        ("others", table2::OTHERS_UM2, table2::OTHERS_MW),
    ] {
        println!("{name:<16} {area:>12.1} {power:>10.1}");
    }
    transpim_bench::rule(64);

    let mut rows = Vec::new();
    for (p_sub, p_add) in [(16u32, 4u32), (8, 4), (64, 4), (16, 1), (16, 16)] {
        let m = AreaModel::new(p_sub, p_add);
        let row = Overhead {
            p_sub,
            p_add,
            overhead_mm2: m.overhead_mm2(),
            overhead_percent: 100.0 * m.overhead_fraction(),
            unit_power_mw_per_bank: m.unit_power_mw(),
            adder_tree_share: m.adder_tree_share(),
        };
        println!(
            "P_sub={:<3} P_add={:<3} overhead {:>6.2} mm^2 ({:>5.2}% of {:.2} mm^2 8GB HBM2), adder-tree share {:>4.1}%",
            p_sub,
            p_add,
            row.overhead_mm2,
            row.overhead_percent,
            table2::HBM_8GB_MM2,
            100.0 * row.adder_tree_share
        );
        rows.push(row);
    }

    let reference = AreaModel::new(16, 4);
    println!(
        "\nreference design point: {:.2} mm^2 = {:.1}% overhead (paper: 2.15 mm^2, 4.0%), within the 25% density threshold: {}",
        reference.overhead_mm2(),
        100.0 * reference.overhead_fraction(),
        reference.within_density_threshold()
    );
    write_json("table2_overhead", &rows);
}
