//! Figure 14: power consumption of TransPIM vs sequence length, for
//! RoBERTa and Pegasus (encoder side), batch 1.
//!
//! The paper reports Pegasus dissipating ~2% more than RoBERTa at equal
//! length, ~4 W growth from L = 128 to 4096, and everything below the 60 W
//! conventional-DRAM budget. Our physics-first energy model lands higher
//! in absolute terms (see EXPERIMENTS.md) but reproduces the trends.

use serde::Serialize;
use transpim::arch::ArchKind;
use transpim::report::DataflowKind;
use transpim_bench::{jobs_from_args, run_grid, write_json, GridCell};
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    model: String,
    seq_len: usize,
    power_w: f64,
    latency_ms: f64,
    active_bank_fraction: f64,
}

const LENGTHS: [usize; 6] = [128, 256, 512, 1024, 2048, 4096];
const MODELS: [&str; 2] = ["roberta", "pegasus"];

fn workload(model: &str, l: usize) -> Workload {
    let mut w = Workload::synthetic_roberta(l);
    if model == "pegasus" {
        w.model = ModelConfig::pegasus_large();
        w.model.decoder_layers = 0; // encoder-side power like RoBERTa
        w.name = format!("pegasus-{l}");
    }
    w
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: fig14_power [--jobs N]");
        std::process::exit(2);
    });
    println!("Figure 14: TransPIM power vs sequence length (batch 1, encoder)");
    println!("{:>8} {:>14} {:>14}", "L", "RoBERTa (W)", "Pegasus (W)");
    let cells: Vec<GridCell> = LENGTHS
        .iter()
        .flat_map(|&l| {
            MODELS.iter().map(move |model| {
                GridCell::system(ArchKind::TransPim, DataflowKind::Token, &workload(model, l), 8)
            })
        })
        .collect();
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);
    let mut rows = Vec::new();
    for l in LENGTHS {
        let mut line = format!("{l:>8}");
        for model in MODELS {
            let r = reports.next().expect("one report per grid cell");
            let power = r.average_power_w();
            line.push_str(&format!(" {power:>14.1}"));
            rows.push(Row {
                model: model.into(),
                seq_len: l,
                power_w: power,
                latency_ms: r.latency_ms(),
                active_bank_fraction: (l as f64 / 2048.0).min(1.0),
            });
        }
        println!("{line}");
    }

    let max = rows.iter().map(|r| r.power_w).fold(0.0, f64::max);
    println!("\nmax power {max:.1} W (paper budget: 60 W; paper measured ~24-28 W)");
    write_json("fig14_power", &rows);
}
