//! Figure 12: average bandwidth usage (bytes read/written ÷ latency).
//!
//! The paper reports layer-based systems consuming far more bandwidth than
//! token-based ones (Layer-TransPIM up to ~1699 GB/s vs Token-TransPIM
//! ~762 GB/s against the 2 TB/s aggregate), and the TransPIM buffers
//! *raising* a given dataflow's bandwidth usage because latency drops.

use serde::Serialize;
use transpim_bench::{all_systems, jobs_from_args, run_grid, write_json, GridCell};
use transpim_hbm::config::HbmConfig;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    workload: String,
    system: String,
    bandwidth_gbs: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: fig12_bandwidth [--jobs N]");
        std::process::exit(2);
    });
    let aggregate = HbmConfig::default().aggregated_bandwidth_gbs();
    println!("Figure 12: average bandwidth usage (aggregate available: {aggregate:.0} GB/s)");
    let suite = Workload::paper_suite();
    let cells: Vec<GridCell> = suite
        .iter()
        .flat_map(|w| all_systems().into_iter().map(|(df, kind)| GridCell::system(kind, df, w, 8)))
        .collect();
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);
    let mut rows = Vec::new();
    for w in suite {
        transpim_bench::rule(64);
        for _ in all_systems() {
            let r = reports.next().expect("one report per grid cell");
            let row = Row {
                workload: w.name.clone(),
                system: r.system.clone(),
                bandwidth_gbs: r.average_bandwidth_gbs(),
            };
            println!("{:<10} {:<22} {:>9.1} GB/s", row.workload, row.system, row.bandwidth_gbs);
            rows.push(row);
        }
    }

    // Shape check echoed for EXPERIMENTS.md: layer > token on each arch.
    let max_for = |sys: &str| {
        rows.iter().filter(|r| r.system == sys).map(|r| r.bandwidth_gbs).fold(0.0, f64::max)
    };
    println!(
        "\npeak usage: Layer-TransPIM {:.0} GB/s vs Token-TransPIM {:.0} GB/s (paper: 1699 vs 762)",
        max_for("Layer-TransPIM"),
        max_for("Token-TransPIM")
    );
    write_json("fig12_bandwidth", &rows);
}
