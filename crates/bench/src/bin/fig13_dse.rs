//! Figure 13: design-space exploration of the ACU on BERT.
//!
//! (a) Adder-tree parallelism `P_add` 1→16: reduction latency drops up to
//!     10.8× and reduction energy up to 5.7× in the paper.
//! (b) ACUs per bank `P_sub`: execution time vs area overhead; the paper
//!     picks `P_sub = 8–16` because `P_sub = 64` costs 15.8% area for 5.4×.

use serde::Serialize;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::report::DataflowKind;
use transpim_acu::adder_tree::{AcuParams, AcuReduceModel};
use transpim_acu::area::AreaModel;
use transpim_bench::{jobs_from_args, run_grid, write_json, GridCell};
use transpim_hbm::config::HbmConfig;
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct PaddRow {
    p_add: u32,
    reduce_latency_ns: f64,
    reduce_energy_pj: f64,
    latency_vs_p1: f64,
    energy_vs_p1: f64,
    workload_latency_ms: f64,
}

#[derive(Serialize)]
struct PsubRow {
    p_sub: u32,
    workload_latency_ms: f64,
    speedup_vs_p1: f64,
    area_overhead_percent: f64,
}

fn bert_workload() -> Workload {
    // BERT at a 4 K context: the P_add knob only bites when the reduced
    // vectors exceed 256·P_add elements, i.e. on long Softmax rows.
    let mut w = Workload::synthetic_roberta(4096);
    w.name = "BERT-4096".into();
    w.model = transpim_transformer::model::ModelConfig::bert_base();
    w
}

const P_ADD_SWEEP: [u32; 5] = [1, 2, 4, 8, 16];
const P_SUB_SWEEP: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: fig13_dse [--jobs N]");
        std::process::exit(2);
    });
    let hbm = HbmConfig::default();
    let w = bert_workload();

    // Every end-to-end simulation of both sweeps, fanned out to the pool:
    // the P_add cells, the P_sub = 1 baseline, then the P_sub cells.
    let mut cells: Vec<GridCell> = Vec::new();
    for p_add in P_ADD_SWEEP {
        let arch = ArchConfig::new(ArchKind::TransPim).with_acu(16, p_add);
        cells.push(GridCell::custom(arch, DataflowKind::Token, &w));
    }
    cells.push(GridCell::custom(
        ArchConfig::new(ArchKind::TransPim).with_acu(1, 4),
        DataflowKind::Token,
        &w,
    ));
    for p_sub in P_SUB_SWEEP {
        let arch = ArchConfig::new(ArchKind::TransPim).with_acu(p_sub, 4);
        cells.push(GridCell::custom(arch, DataflowKind::Token, &w));
    }
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);

    println!("Figure 13(a): adder-tree parallelism P_add (BERT, 4096-long Softmax reductions)");
    let base = AcuReduceModel::new(
        hbm.geometry,
        hbm.timing,
        hbm.energy,
        AcuParams { p_add: 1, ..AcuParams::default() },
    );
    let (l1, e1) = (base.vector_latency_ns(4096, 16), base.energy_pj(4096, 16, 1));
    let mut padd_rows = Vec::new();
    for p_add in P_ADD_SWEEP {
        let m = AcuReduceModel::new(
            hbm.geometry,
            hbm.timing,
            hbm.energy,
            AcuParams { p_add, ..AcuParams::default() },
        );
        let lat = m.vector_latency_ns(4096, 16);
        let pj = m.energy_pj(4096, 16, 1);
        let report = reports.next().expect("one report per P_add cell");
        let row = PaddRow {
            p_add,
            reduce_latency_ns: lat,
            reduce_energy_pj: pj,
            latency_vs_p1: l1 / lat,
            energy_vs_p1: e1 / pj,
            workload_latency_ms: report.latency_ms(),
        };
        println!(
            "  P_add={:<3} reduce {:>8.1} ns ({:>5.2}x vs 1)   energy {:>8.1} pJ ({:>5.2}x)   end-to-end {:>9.2} ms",
            p_add, lat, row.latency_vs_p1, pj, row.energy_vs_p1, row.workload_latency_ms
        );
        padd_rows.push(row);
    }

    println!();
    println!("Figure 13(b): ACUs per bank P_sub vs execution time and area");
    let mut psub_rows = Vec::new();
    let base_lat = reports.next().expect("P_sub baseline report").latency_ms();
    for p_sub in P_SUB_SWEEP {
        let report = reports.next().expect("one report per P_sub cell");
        let area = AreaModel::new(p_sub, 4);
        let row = PsubRow {
            p_sub,
            workload_latency_ms: report.latency_ms(),
            speedup_vs_p1: base_lat / report.latency_ms(),
            area_overhead_percent: 100.0 * area.overhead_fraction(),
        };
        println!(
            "  P_sub={:<3} latency {:>9.2} ms  speedup {:>5.2}x vs P_sub=1  area overhead {:>5.2}%",
            p_sub, row.workload_latency_ms, row.speedup_vs_p1, row.area_overhead_percent
        );
        psub_rows.push(row);
    }

    write_json("fig13a_padd", &padd_rows);
    write_json("fig13b_psub", &psub_rows);
}
