//! Figure 10: performance and energy efficiency of every system on every
//! workload, normalized to the GPU baseline.
//!
//! Paper headline numbers this regenerates (shape, not absolutes):
//! Token-TransPIM is 22.1–114.9× faster than GPU, 8.7–57.4× faster than
//! TPU, 3.7× faster than Token-OriginalPIM, 9.1× faster than Token-NBP,
//! and 138.1–666.6× more energy-efficient than GPU.

use serde::Serialize;
use transpim_baselines::gpu::PlatformModel;
use transpim_bench::{all_systems, jobs_from_args, run_grid, write_json, GridCell};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    workload: String,
    system: String,
    latency_ms: f64,
    speedup_vs_gpu: f64,
    gops: f64,
    gop_per_joule: f64,
    energy_eff_vs_gpu: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: fig10_performance [--jobs N]");
        std::process::exit(2);
    });
    let gpu = PlatformModel::rtx_2080_ti();
    let tpu = PlatformModel::tpu_v3();
    let mut rows: Vec<Row> = Vec::new();

    // Fan the whole workload × system grid out to the pool up front;
    // reports come back in submission order, so the per-workload sections
    // below print exactly as the serial loop did.
    let suite = Workload::paper_suite();
    let cells: Vec<GridCell> = suite
        .iter()
        .flat_map(|w| all_systems().into_iter().map(|(df, kind)| GridCell::system(kind, df, w, 8)))
        .collect();
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);

    println!("Figure 10: performance and energy efficiency (normalized to GPU)");
    for w in suite {
        let gpu_s = gpu.batch_time_s(&w);
        let gpu_eff = gpu.gop_per_joule(&w);
        let tpu_s = tpu.batch_time_s(&w);
        transpim_bench::rule(100);
        println!(
            "{:<10} GPU {:>10.1} ms (1.00x, {:>7.2} GOP/J)   TPU {:>10.1} ms ({:.2}x)",
            w.name,
            gpu_s * 1e3,
            gpu_eff,
            tpu_s * 1e3,
            gpu_s / tpu_s
        );
        rows.push(Row {
            workload: w.name.clone(),
            system: "GPU".into(),
            latency_ms: gpu_s * 1e3,
            speedup_vs_gpu: 1.0,
            gops: gpu.throughput_gops(&w),
            gop_per_joule: gpu_eff,
            energy_eff_vs_gpu: 1.0,
        });
        rows.push(Row {
            workload: w.name.clone(),
            system: "TPU".into(),
            latency_ms: tpu_s * 1e3,
            speedup_vs_gpu: gpu_s / tpu_s,
            gops: tpu.throughput_gops(&w),
            gop_per_joule: tpu.gop_per_joule(&w),
            energy_eff_vs_gpu: tpu.gop_per_joule(&w) / gpu_eff,
        });

        for _ in all_systems() {
            let r = reports.next().expect("one report per grid cell");
            let speedup = gpu_s / (r.latency_ms() * 1e-3);
            let eff = r.gop_per_joule() / gpu_eff;
            println!(
                "  {:<22} {:>10.2} ms   {:>7.1}x speedup   {:>8.1} GOP/s   {:>7.1}x GOP/J",
                r.system,
                r.latency_ms(),
                speedup,
                r.throughput_gops(),
                eff
            );
            rows.push(Row {
                workload: w.name.clone(),
                system: r.system.clone(),
                latency_ms: r.latency_ms(),
                speedup_vs_gpu: speedup,
                gops: r.throughput_gops(),
                gop_per_joule: r.gop_per_joule(),
                energy_eff_vs_gpu: eff,
            });
        }

        // Bar chart of the speedups for this workload.
        let bars: Vec<(String, f64)> = rows
            .iter()
            .filter(|r| r.workload == w.name && r.system != "GPU")
            .map(|r| (r.system.clone(), r.speedup_vs_gpu))
            .collect();
        print!("{}", transpim_bench::chart::bar_chart("  speedup vs GPU:", &bars, 48));

        // Headline ratios for this workload.
        let find = |sys: &str| {
            rows.iter()
                .filter(|r| r.workload == w.name && r.system == sys)
                .map(|r| r.latency_ms)
                .next()
                .unwrap_or(f64::NAN)
        };
        let tt = find("Token-TransPIM");
        println!(
            "  ratios: vs Token-OriginalPIM {:.2}x | vs Token-NBP {:.2}x | vs Layer-OriginalPIM {:.2}x | token/layer on TransPIM {:.2}x",
            find("Token-OriginalPIM") / tt,
            find("Token-NBP") / tt,
            find("Layer-OriginalPIM") / tt,
            find("Layer-TransPIM") / tt,
        );
    }
    write_json("fig10_performance", &rows);
}
