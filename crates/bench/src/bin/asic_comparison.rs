//! Section V-B "Comparison to ASIC": TransPIM's achieved throughput and
//! area against the published A³ and SpAtten figures.

use serde::Serialize;
use transpim::arch::ArchKind;
use transpim::report::DataflowKind;
use transpim_acu::area::AreaModel;
use transpim_baselines::asic::AsicSpec;
use transpim_bench::{run_system, write_json};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    workload: String,
    transpim_gops: f64,
    vs_a3: f64,
    vs_spatten: f64,
}

fn main() {
    println!("ASIC comparison (Section V-B)");
    let a3 = AsicSpec::a3();
    let sp = AsicSpec::spatten_eighth();
    println!(
        "comparators: {} {:.0} GOP/s {:.2} mm^2 | {} {:.0} GOP/s {:.2} mm^2",
        a3.name, a3.peak_gops, a3.area_mm2, sp.name, sp.peak_gops, sp.area_mm2
    );
    let area = AreaModel::new(16, 4);
    println!(
        "TransPIM added logic: {:.2} mm^2 per 8GB stack (paper: 2.15; A3 2.08, SpAtten-1/8 1.55)",
        area.overhead_mm2()
    );
    transpim_bench::rule(76);

    let mut rows = Vec::new();
    let mut sum = 0.0;
    for w in Workload::paper_suite() {
        let r = run_system(ArchKind::TransPim, DataflowKind::Token, &w, 8);
        let gops = r.throughput_gops();
        sum += gops;
        let row = Row {
            workload: w.name.clone(),
            transpim_gops: gops,
            vs_a3: a3.throughput_ratio(gops),
            vs_spatten: sp.throughput_ratio(gops),
        };
        println!(
            "{:<10} {:>9.1} GOP/s   {:>5.2}x A3 peak   {:>5.2}x SpAtten peak",
            row.workload, row.transpim_gops, row.vs_a3, row.vs_spatten
        );
        rows.push(row);
    }
    let avg = sum / rows.len() as f64;
    println!(
        "\naverage {:.0} GOP/s = {:.2}x A3, {:.2}x SpAtten (paper: 734 GOP/s = 3.3x, 2.0x)",
        avg,
        a3.throughput_ratio(avg),
        sp.throughput_ratio(avg)
    );
    if let Some(s) = sp.reported_gpt2_speedup {
        println!("SpAtten's reported GPT-2 generative speedup over GPU: {s}x (paper contrasts its 83.9x/114.9x)");
    }
    write_json("asic_comparison", &rows);
}
