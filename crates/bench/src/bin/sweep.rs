//! `sweep` — grid runner over (sequence length × stacks × architecture ×
//! dataflow), emitting a CSV for downstream plotting. The general-purpose
//! companion to the fixed figure binaries.
//!
//! ```bash
//! cargo run --release -p transpim-bench --bin sweep > sweep.csv
//! cargo run --release -p transpim-bench --bin sweep -- --model roberta \
//!     --lengths 128,512,2048 --stacks 1,8 > sweep.csv
//! # Aggregated observability metrics for the whole grid:
//! cargo run --release -p transpim-bench --bin sweep -- --metrics sweep-metrics.csv
//! ```

use transpim::arch::ArchKind;
use transpim::report::DataflowKind;
use transpim_bench::{jobs_from_args, note, GridCell, ObsSession};
use transpim_transformer::workload::Workload;

struct Grid {
    model: String,
    lengths: Vec<usize>,
    stacks: Vec<u32>,
}

fn parse(args: &[String]) -> Result<Grid, String> {
    let mut g =
        Grid { model: "pegasus".into(), lengths: vec![512, 2048, 8192], stacks: vec![1, 8] };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().cloned().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--model" => g.model = value()?,
            "--lengths" => {
                g.lengths = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad length: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--stacks" => {
                g.stacks = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("bad stacks: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if g.lengths.is_empty() || g.stacks.is_empty() {
        return Err("empty sweep".into());
    }
    Ok(g)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: sweep [--model roberta|pegasus] [--lengths a,b,c] [--stacks a,b] \
                 [--jobs N] [--trace t.json] [--metrics m.json|m.csv]";
    let fail = |e: String| -> ! {
        note(format!("error: {e}"));
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| fail(e));
    let obs = ObsSession::extract(&mut args).unwrap_or_else(|e| fail(e));
    let grid = parse(&args).unwrap_or_else(|e| fail(e));

    // Build the whole grid up front, then fan the cells out to the pool;
    // results come back in submission order, so the CSV below is
    // byte-identical at any --jobs count.
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for &l in &grid.lengths {
        let workload = match grid.model.as_str() {
            "roberta" => Workload::synthetic_roberta(l),
            _ => {
                let mut w = Workload::synthetic_pegasus(l);
                w.decode_len = 0;
                w
            }
        };
        for &stacks in &grid.stacks {
            for kind in ArchKind::ALL {
                for df in DataflowKind::ALL {
                    cells.push(GridCell::system(kind, df, &workload, stacks));
                    labels.push((l, stacks, df, kind));
                }
            }
        }
    }
    let reports = obs.run_grid(jobs, cells);

    println!("model,seq_len,stacks,dataflow,arch,latency_ms,gops,gop_per_joule,power_w,bandwidth_gbs,utilization,movement_frac");
    for ((l, stacks, df, kind), r) in labels.into_iter().zip(&reports) {
        println!(
            "{},{},{},{},{},{:.3},{:.1},{:.2},{:.2},{:.1},{:.4},{:.4}",
            grid.model,
            l,
            stacks,
            df,
            kind,
            r.latency_ms(),
            r.throughput_gops(),
            r.gop_per_joule(),
            r.average_power_w(),
            r.average_bandwidth_gbs(),
            r.utilization(),
            r.fraction(transpim_hbm::stats::Category::DataMovement),
        );
    }
    obs.finish();
}
