//! Ablation: the ring-broadcast schedule (Figure 9 generalized).
//!
//! Sweeps ring size and bank-group organization and reports the scheduler's
//! slot count against the two bounds the paper discusses: the per-group
//! serialization floor (`banks_per_group − 1` intra-group hops share one
//! link) and full shared-bus serialization (`N` hops). Also prices the
//! decoder's pairwise reduction tree across ring sizes.

use serde::Serialize;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::exec::Executor;
use transpim_bench::write_json;
use transpim_dataflow::ir::BankRange;

#[derive(Serialize)]
struct RingRow {
    banks: u32,
    buffered_slots: u32,
    buffered_ns: f64,
    unbuffered_slots: u32,
    unbuffered_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct TreeRow {
    banks: u32,
    latency_ns: f64,
    per_level_ns: f64,
}

fn main() {
    println!("Ablation: ring-broadcast scheduling (2 KB per hop)");
    println!(
        "{:>8} {:>16} {:>18} {:>10}",
        "banks", "buffered (slots)", "unbuffered (slots)", "gain"
    );
    let bytes = 2048u64;
    let mut ring_rows = Vec::new();
    for banks in [8u32, 32, 128, 512, 2048] {
        let range = BankRange::new(0, banks);
        let mut buf = Executor::new(ArchConfig::new(ArchKind::TransPim));
        let mut nb = Executor::new(ArchConfig::new(ArchKind::TransPimNb));
        let b = buf.ring_step_cost(range, bytes);
        let n = nb.ring_step_cost(range, bytes);
        let row = RingRow {
            banks,
            buffered_slots: b.slots,
            buffered_ns: b.latency_ns,
            unbuffered_slots: n.slots,
            unbuffered_ns: n.latency_ns,
            speedup: n.latency_ns / b.latency_ns,
        };
        println!(
            "{:>8} {:>9.0} ns ({:>2}) {:>11.0} ns ({:>3}) {:>9.1}x",
            banks,
            row.buffered_ns,
            row.buffered_slots,
            row.unbuffered_ns,
            row.unbuffered_slots,
            row.speedup
        );
        // The paper's Figure 9 example: 8 banks in 2 groups take 3 slots
        // buffered and 8 unbuffered.
        if banks == 8 {
            assert_eq!(row.buffered_slots, 3, "Figure 9 buffered schedule");
            assert_eq!(row.unbuffered_slots, 8, "Figure 9 unbuffered schedule");
        }
        ring_rows.push(row);
    }

    println!("\nDecoder partial-sum reduction tree (2 KB partial sums):");
    println!("{:>8} {:>14} {:>14}", "banks", "tree latency", "per level");
    let mut tree_rows = Vec::new();
    for banks in [8u32, 64, 512, 2048] {
        let range = BankRange::new(0, banks);
        let mut ex = Executor::new(ArchConfig::new(ArchKind::TransPim));
        let r = ex.reduce_tree_cost(range, bytes);
        let levels = 32 - banks.leading_zeros();
        let row = TreeRow {
            banks,
            latency_ns: r.latency_ns,
            per_level_ns: r.latency_ns / f64::from(levels.max(1)),
        };
        println!("{:>8} {:>11.0} ns {:>11.0} ns", banks, row.latency_ns, row.per_level_ns);
        tree_rows.push(row);
    }
    println!(
        "\nBuffered ring steps stay near the per-group floor as rings grow (the\n\
         Figure 9 schedule scales \"with the same time complexity\"); without the\n\
         broadcast units every hop serializes on the shared channel buses."
    );
    write_json("ablation_ring", &ring_rows);
    write_json("ablation_tree", &tree_rows);
}
