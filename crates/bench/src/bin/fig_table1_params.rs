//! Table I: architectural parameters of TransPIM — printed from the live
//! configuration defaults and cross-checked against the paper's values.

use transpim::arch::{ArchConfig, ArchKind};

fn main() {
    let a = ArchConfig::new(ArchKind::TransPim);
    let g = &a.hbm.geometry;
    let t = &a.hbm.timing;
    let e = &a.hbm.energy;

    println!("Table I: architectural parameters for TransPIM");
    transpim_bench::rule(72);
    println!("HBM organization");
    println!("  channels/die = {}", g.channels_per_stack);
    println!("  banks/channel = {}", g.banks_per_channel());
    println!("  banks/group = {}", g.banks_per_group);
    println!("  rows = {}k", g.rows_per_bank / 1024);
    println!("  row size = {} B", g.row_bytes);
    println!("  subarray = {0}x{0}", g.subarray_cols);
    println!("  DQ = {}", g.dq_bits);
    println!("  stacks = {}  (capacity {} GiB)", g.stacks, g.capacity_bytes() >> 30);
    println!("HBM timing (ns)");
    println!(
        "  tRC={} tRCD={} tRAS={} tCL={} tRRD={} tWR={} tCCDS={} tCCDL={}",
        t.t_rc, t.t_rcd, t.t_ras, t.t_cl, t.t_rrd, t.t_wr, t.t_ccd_s, t.t_ccd_l
    );
    println!("HBM energy (pJ)");
    println!(
        "  eACT={} ePreGSA={} ePostGSA={} eI/O={}",
        e.e_act, e.e_pre_gsa, e.e_post_gsa, e.e_io
    );
    println!("ACU");
    println!(
        "  clock = {} MHz, P_sub = {} ACUs/bank, P_add = {} trees/ACU, tree width = {}",
        a.acu.clock_ghz * 1000.0,
        a.acu.p_sub,
        a.acu.p_add,
        a.acu.tree_width
    );
    println!("Buffer");
    println!("  data buffer 8 x 256 b, ring broadcast width 256 b");

    // Cross-checks against the published table.
    assert_eq!(g.banks_per_channel(), 32);
    assert_eq!(g.row_bytes, 1024);
    assert_eq!(t.t_rc, 45.0);
    assert_eq!(e.e_act, 909.0);
    assert_eq!(a.acu.p_sub, 16);
    assert_eq!(a.acu.p_add, 4);
    println!("\nall values match the paper's Table I");
}
