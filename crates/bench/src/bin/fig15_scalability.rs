//! Figure 15: scalability of TransPIM with the number of HBM stacks,
//! across sequence lengths.
//!
//! The paper shows near-linear speedup for long sequences (which saturate
//! the compute) and flat curves for short ones (which cannot fill the
//! extra banks).

use serde::Serialize;
use transpim::arch::ArchKind;
use transpim::report::DataflowKind;
use transpim_bench::{run_system, write_json};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    seq_len: usize,
    stacks: u32,
    latency_ms: f64,
    speedup_vs_1_stack: f64,
}

fn main() {
    println!("Figure 15: speedup vs number of HBM stacks (Pegasus encoder)");
    println!("{:>8} {:>8} {:>8} {:>8} {:>8}", "L", "1", "2", "4", "8");
    let mut rows = Vec::new();
    for l in [512usize, 2048, 8192, 32768] {
        let mut w = Workload::synthetic_pegasus(l);
        w.decode_len = 0; // the scalability claim is about the parallel pass
        let base = run_system(ArchKind::TransPim, DataflowKind::Token, &w, 1).latency_ms();
        let mut line = format!("{l:>8}");
        for stacks in [1u32, 2, 4, 8] {
            let r = run_system(ArchKind::TransPim, DataflowKind::Token, &w, stacks);
            let speedup = base / r.latency_ms();
            line.push_str(&format!(" {speedup:>7.2}x"));
            rows.push(Row {
                seq_len: l,
                stacks,
                latency_ms: r.latency_ms(),
                speedup_vs_1_stack: speedup,
            });
        }
        println!("{line}");
    }

    // Shape checks echoed for EXPERIMENTS.md.
    let speedup = |l: usize, s: u32| {
        rows.iter()
            .find(|r| r.seq_len == l && r.stacks == s)
            .map(|r| r.speedup_vs_1_stack)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\n8-stack speedup: L=512 {:.2}x (short: saturates) vs L=32768 {:.2}x (long: near-linear)",
        speedup(512, 8),
        speedup(32768, 8)
    );
    write_json("fig15_scalability", &rows);
}
