//! Figure 15: scalability of TransPIM with the number of HBM stacks,
//! across sequence lengths.
//!
//! The paper shows near-linear speedup for long sequences (which saturate
//! the compute) and flat curves for short ones (which cannot fill the
//! extra banks).

use serde::Serialize;
use transpim::arch::ArchKind;
use transpim::report::DataflowKind;
use transpim_bench::{jobs_from_args, run_grid, write_json, GridCell};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    seq_len: usize,
    stacks: u32,
    latency_ms: f64,
    speedup_vs_1_stack: f64,
}

const LENGTHS: [usize; 4] = [512, 2048, 8192, 32768];
const STACKS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: fig15_scalability [--jobs N]");
        std::process::exit(2);
    });
    println!("Figure 15: speedup vs number of HBM stacks (Pegasus encoder)");
    println!("{:>8} {:>8} {:>8} {:>8} {:>8}", "L", "1", "2", "4", "8");
    let cells: Vec<GridCell> = LENGTHS
        .iter()
        .flat_map(|&l| {
            let mut w = Workload::synthetic_pegasus(l);
            w.decode_len = 0; // the scalability claim is about the parallel pass
            STACKS
                .iter()
                .map(move |&stacks| {
                    GridCell::system(ArchKind::TransPim, DataflowKind::Token, &w, stacks)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let mut reports = run_grid(jobs, false, false, cells).into_iter().map(|o| o.report);
    let mut rows = Vec::new();
    for l in LENGTHS {
        let mut base = f64::NAN;
        let mut line = format!("{l:>8}");
        for stacks in STACKS {
            let r = reports.next().expect("one report per grid cell");
            if stacks == 1 {
                base = r.latency_ms();
            }
            let speedup = base / r.latency_ms();
            line.push_str(&format!(" {speedup:>7.2}x"));
            rows.push(Row {
                seq_len: l,
                stacks,
                latency_ms: r.latency_ms(),
                speedup_vs_1_stack: speedup,
            });
        }
        println!("{line}");
    }

    // Shape checks echoed for EXPERIMENTS.md.
    let speedup = |l: usize, s: u32| {
        rows.iter()
            .find(|r| r.seq_len == l && r.stacks == s)
            .map(|r| r.speedup_vs_1_stack)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\n8-stack speedup: L=512 {:.2}x (short: saturates) vs L=32768 {:.2}x (long: near-linear)",
        speedup(512, 8),
        speedup(32768, 8)
    );
    write_json("fig15_scalability", &rows);
}
