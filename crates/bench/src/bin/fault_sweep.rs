//! Fault sweep: throughput of Token-TransPIM under graceful degradation
//! as banks fail and ring links die.
//!
//! Two sweeps on one workload:
//!
//! * **failed banks** — tokens re-shard over the surviving pool, so
//!   throughput should decay roughly in proportion to the banks lost
//!   (the token dataflow has no single point of failure);
//! * **dead ring links** — broadcast traffic in the affected bank groups
//!   falls back to the shared channel bus (Figure 9's 8T path instead of
//!   3T), so a handful of dead links costs far less than losing the ring
//!   entirely.
//!
//! The injection seed is pinned via `TRANSPIM_FAULT_SEED` (default
//! 20220402) so reruns are byte-identical.

use serde::Serialize;
use transpim::accelerator::Accelerator;
use transpim::arch::{ArchConfig, ArchKind};
use transpim::fault::{Fault, FaultScenario};
use transpim::report::DataflowKind;
use transpim_bench::chart::bar_chart;
use transpim_bench::{jobs_from_args, note, write_json};
use transpim_transformer::workload::Workload;

#[derive(Serialize)]
struct Row {
    sweep: &'static str,
    amount: u32,
    latency_ms: f64,
    throughput_gops: f64,
    relative_throughput: f64,
    overhead_latency_ms: f64,
    injected: u64,
    corrected: u64,
}

const FAILED_BANKS: [u32; 5] = [0, 64, 256, 512, 1024];
const DEAD_LINKS: [u32; 5] = [0, 8, 32, 128, 256];

fn seed() -> u64 {
    std::env::var("TRANSPIM_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(20220402)
}

/// Fail `n` banks spread evenly across the system (worst case for token
/// sharding is irrelevant — any `n` banks shrink the pool identically —
/// but spreading keeps the scenario realistic).
fn failed_bank_scenario(n: u32, total: u32) -> FaultScenario {
    let mut s = FaultScenario::empty(seed());
    let stride = (total / n.max(1)).max(1);
    s.faults = (0..n).map(|i| Fault::FailedBank { bank: (i * stride) % total }).collect();
    s
}

fn dead_link_scenario(n: u32) -> FaultScenario {
    let mut s = FaultScenario::empty(seed());
    s.faults = (0..n).map(|g| Fault::DeadLink { group: g }).collect();
    s
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from_args(&mut args).unwrap_or_else(|e| {
        eprintln!("error: {e}\nusage: fault_sweep [--jobs N]");
        std::process::exit(2);
    });
    if let Some(unknown) = args.first() {
        eprintln!("error: unknown option '{unknown}'\nusage: fault_sweep [--jobs N]");
        std::process::exit(2);
    }

    // A long sequence (8 tokens/bank when healthy) so the re-sharded pool
    // shrinks smoothly — short sequences quantize to whole tokens per bank
    // and hide small losses behind one ceil() step.
    let mut w = Workload::synthetic_pegasus(16384);
    w.decode_len = 0;
    w.model.encoder_layers = 2; // keep the sweep snappy; shape is layer-independent
    let arch = ArchConfig::new(ArchKind::TransPim);
    let total_banks = arch.hbm.geometry.total_banks();
    note(format!("fault sweep: Token-TransPIM on {} (seed {})", w.name, seed()));

    let cells: Vec<(&'static str, u32, FaultScenario)> = FAILED_BANKS
        .iter()
        .map(|&n| ("failed-banks", n, failed_bank_scenario(n, total_banks)))
        .chain(DEAD_LINKS.iter().map(|&n| ("dead-links", n, dead_link_scenario(n))))
        .collect();

    let pool_jobs: Vec<_> = cells
        .into_iter()
        .map(|(sweep, amount, scenario)| {
            let arch = arch.clone();
            let w = w.clone();
            move || {
                let acc = Accelerator::new(arch);
                let r =
                    acc.simulate_degraded(&w, DataflowKind::Token, &scenario).unwrap_or_else(|e| {
                        eprintln!("error: {sweep} x{amount}: {e}");
                        std::process::exit(1);
                    });
                let f = r.faults.clone().unwrap_or_default();
                Row {
                    sweep,
                    amount,
                    latency_ms: r.latency_ms(),
                    throughput_gops: r.throughput_gops(),
                    relative_throughput: f64::NAN, // filled against the 0-fault cell below
                    overhead_latency_ms: f.overhead_latency_ns * 1e-6,
                    injected: f.injected,
                    corrected: f.corrected,
                }
            }
        })
        .collect();
    let mut rows = transpim_par::run(jobs, pool_jobs);

    for sweep in ["failed-banks", "dead-links"] {
        let base = rows
            .iter()
            .find(|r| r.sweep == sweep && r.amount == 0)
            .map(|r| r.throughput_gops)
            .unwrap_or(f64::NAN);
        let mut bars = Vec::new();
        for r in rows.iter_mut().filter(|r| r.sweep == sweep) {
            r.relative_throughput = r.throughput_gops / base;
            bars.push((format!("{} {}", sweep, r.amount), r.throughput_gops));
        }
        println!("{}", bar_chart(&format!("throughput (GOP/s) vs {sweep}"), &bars, 48));
    }

    // Shape checks echoed for EXPERIMENTS.md: losing half the banks costs
    // about half the throughput; a few dead links cost only the affected
    // groups' 8T fallback.
    let rel = |sweep: &str, amount: u32| {
        rows.iter()
            .find(|r| r.sweep == sweep && r.amount == amount)
            .map(|r| r.relative_throughput)
            .unwrap_or(f64::NAN)
    };
    println!(
        "1024/2048 failed banks -> {:.2}x throughput; 256/512 dead links -> {:.2}x",
        rel("failed-banks", 1024),
        rel("dead-links", 256)
    );
    write_json("BENCH_fault", &rows);
}
