//! Deterministic input builders for the differential fuzz harness
//! (`tests/differential_fuzz.rs`).
//!
//! Property strategies generate plain integers; the functions here map them
//! onto valid domain values — arbitrary affine [`Step`]s with shape-correct
//! [`StepDelta`]s, tiny but structurally complete [`Workload`]s, and
//! architecture picks — so the strategies stay simple and every generated
//! input is well-formed by construction. Everything is a pure function of
//! its arguments: the same generated integers always denote the same
//! domain value, which keeps shrunk counterexamples meaningful.

use transpim::arch::{ArchConfig, ArchKind};
use transpim_dataflow::ir::{BankRange, Step, StepDelta};
use transpim_transformer::model::ModelConfig;
use transpim_transformer::workload::Workload;

/// Number of step kinds [`affine_step`] can build: every [`Step`] variant
/// with size fields (all but `Scope` and `Repeat`, which the harness
/// exercises separately).
pub const AFFINE_STEP_KINDS: u8 = 15;

/// Build one sized step from generated integers. `kind` selects the
/// variant (mod [`AFFINE_STEP_KINDS`]); `sizes` feed the iteration-varying
/// work fields and `structural` the invariant ones (widths, bank ranges,
/// parallelism), reduced to ranges the closed-form total accounting cannot
/// overflow at fuzz scale (sizes < 2²⁰, counts ≤ 64).
pub fn affine_step(kind: u8, sizes: [u64; 3], structural: [u32; 2]) -> Step {
    let s = [sizes[0] % (1 << 20), sizes[1] % (1 << 20), sizes[2] % (1 << 20)];
    let bits = 1 + structural[0] % 16;
    let bits2 = 1 + structural[1] % 16;
    let banks = 1 + structural[1] % 64;
    let range = BankRange::new(structural[0] % 32, 2 + structural[1] % 15);
    let parallel = 1 + structural[0] % 4;
    match kind % AFFINE_STEP_KINDS {
        0 => Step::PointwiseMul {
            elems_per_bank: s[0],
            total_elems: s[1],
            a_bits: bits,
            b_bits: bits2,
        },
        1 => Step::PointwiseAdd { elems_per_bank: s[0], total_elems: s[1], bits },
        2 => Step::Exp {
            elems_per_bank: s[0],
            total_elems: s[1],
            bits,
            order: 1 + structural[1] % 6,
        },
        3 => Step::Reduce {
            vec_len: (s[0] % (1 << 16)) as u32,
            bits,
            vectors_per_bank: s[1],
            total_vectors: s[2],
        },
        4 => Step::Recip { per_bank: s[0], total: s[1] },
        5 => Step::Replicate {
            value_bits: bits,
            copies: (s[0] % (1 << 10)) as u32,
            count_per_bank: s[1],
            total_count: s[2],
        },
        6 => Step::HostBroadcast { bytes: s[0], banks },
        7 => Step::HostScatter { total_bytes: s[0] },
        8 => Step::RingBroadcast {
            banks: range,
            bytes_per_hop: s[0],
            repeat: s[1] % (1 << 10),
            parallel,
        },
        9 => Step::OneToAll { src: range.start, banks: range, bytes: s[0], parallel },
        10 => Step::PairwiseReduceTree { banks: range, bytes: s[0], bits, elems: s[1], parallel },
        11 => Step::BroadcastDup { bytes: s[0], banks },
        12 => Step::IntraBankCopy { bytes_per_bank: s[0], total_bytes: s[1] },
        13 => Step::ShuffleAll { total_bytes: s[0] },
        _ => Step::MemTouch { bytes_per_bank: s[0], total_bytes: s[1] },
    }
}

/// A per-iteration delta shaped like `step`'s varying-field list, with
/// increments small enough (< 2¹⁰) that a fuzz-scale repeat never
/// overflows the bilinear ring term.
pub fn delta_for(step: &Step, raw: [u64; 3]) -> StepDelta {
    let shape = step.varying();
    let mut d = StepDelta::zeros(shape.len);
    for (slot, r) in d.d.iter_mut().zip(raw).take(shape.len as usize) {
        *slot = r % (1 << 10);
    }
    d
}

/// A structurally complete workload small enough to compile and price in
/// well under a millisecond, from generated shape integers. Decoding is
/// only requested when there are decoder layers; cross-attention is wired
/// whenever both stacks exist.
#[allow(clippy::too_many_arguments)]
pub fn small_workload(
    enc_layers: usize,
    dec_layers: usize,
    heads: usize,
    dh: usize,
    d_ff: usize,
    seq: usize,
    decode: usize,
    batch: usize,
) -> Workload {
    assert!(enc_layers + dec_layers > 0, "model needs at least one layer");
    assert!(heads > 0 && dh > 0 && d_ff > 0 && seq > 0 && batch > 0, "empty workload dimension");
    let model = ModelConfig {
        name: format!("fuzz-e{enc_layers}d{dec_layers}h{heads}x{dh}"),
        encoder_layers: enc_layers,
        decoder_layers: dec_layers,
        d_model: heads * dh,
        heads,
        d_ff,
        cross_attention: enc_layers > 0 && dec_layers > 0,
    };
    Workload {
        name: format!("fuzz-L{seq}g{decode}b{batch}"),
        model,
        seq_len: seq,
        decode_len: if dec_layers > 0 { decode } else { 0 },
        batch,
    }
}

/// One of the four modeled architectures, by index (mod 4).
pub fn arch_for(idx: u8) -> ArchConfig {
    let kind = match idx % 4 {
        0 => ArchKind::TransPim,
        1 => ArchKind::TransPimNb,
        2 => ArchKind::OriginalPim,
        _ => ArchKind::Nbp,
    };
    ArchConfig::new(kind)
}
